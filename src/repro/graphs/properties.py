"""Structural graph properties used by experiments and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "connected_components",
    "is_connected",
    "degree_statistics",
    "DegreeStatistics",
    "graph_summary",
    "is_bipartite",
]


def connected_components(graph: Graph) -> List[Set[int]]:
    """Return the connected components as a list of vertex sets.

    Uses an iterative union-find over the edge list, so it handles graphs with
    hundreds of thousands of edges without recursion-depth issues.
    """
    parent = np.arange(graph.n_vertices, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    for u, v in graph.edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv

    components: dict[int, Set[int]] = {}
    for v in range(graph.n_vertices):
        components.setdefault(find(v), set()).add(v)
    return list(components.values())


def is_connected(graph: Graph) -> bool:
    """True if the graph has exactly one connected component (and >= 1 vertex)."""
    if graph.n_vertices == 0:
        return False
    return len(connected_components(graph)) == 1


def is_bipartite(graph: Graph) -> bool:
    """True if the graph is bipartite (2-colourable).

    For bipartite graphs the maximum cut equals the total edge weight, which
    several integration tests exploit.
    """
    color = -np.ones(graph.n_vertices, dtype=np.int64)
    adjacency = [[] for _ in range(graph.n_vertices)]
    for u, v in graph.edges:
        adjacency[int(u)].append(int(v))
        adjacency[int(v)].append(int(u))
    for start in range(graph.n_vertices):
        if color[start] != -1:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if color[neighbor] == -1:
                    color[neighbor] = 1 - color[node]
                    stack.append(neighbor)
                elif color[neighbor] == color[node]:
                    return False
    return True


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary statistics of a graph's (weighted) degree sequence."""

    minimum: float
    maximum: float
    mean: float
    std: float
    n_isolated: int


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute degree summary statistics (all zeros for an empty graph)."""
    degrees = graph.degrees()
    if degrees.size == 0:
        return DegreeStatistics(0.0, 0.0, 0.0, 0.0, 0)
    return DegreeStatistics(
        minimum=float(degrees.min()),
        maximum=float(degrees.max()),
        mean=float(degrees.mean()),
        std=float(degrees.std()),
        n_isolated=int(np.count_nonzero(degrees == 0)),
    )


def graph_summary(graph: Graph) -> dict:
    """Return a dictionary summary suitable for experiment reports."""
    stats = degree_statistics(graph)
    return {
        "name": graph.name,
        "n_vertices": graph.n_vertices,
        "n_edges": graph.n_edges,
        "density": graph.density(),
        "total_weight": graph.total_weight,
        "degree_min": stats.minimum,
        "degree_max": stats.maximum,
        "degree_mean": stats.mean,
        "n_isolated": stats.n_isolated,
        "connected": is_connected(graph),
    }
