"""Graph substrate: representations, generators, IO, and the empirical-graph registry.

The circuits and algorithms in this library consume :class:`repro.graphs.Graph`
objects, which expose the matrices the paper's two circuits need:

* the adjacency matrix ``A`` (dense and sparse),
* the degree matrix ``D`` and its inverse square root,
* the normalized adjacency ``D^{-1/2} A D^{-1/2}``,
* the Trevisan matrix ``I + D^{-1/2} A D^{-1/2}``,
* the combinatorial Laplacian ``D - A``.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
    complete_bipartite,
    grid_graph,
    hamming_graph,
    johnson_graph,
    barabasi_albert,
    watts_strogatz,
    configuration_model,
    planted_partition,
    random_regular,
)
from repro.graphs.io import (
    read_edge_list,
    write_edge_list,
    read_matrix_market,
    write_matrix_market,
)
from repro.graphs.repository import (
    EmpiricalGraphSpec,
    EMPIRICAL_GRAPHS,
    load_empirical_graph,
    list_empirical_graphs,
)
from repro.graphs.properties import (
    degree_statistics,
    connected_components,
    is_connected,
    graph_summary,
)

__all__ = [
    "Graph",
    "erdos_renyi",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_bipartite",
    "grid_graph",
    "hamming_graph",
    "johnson_graph",
    "barabasi_albert",
    "watts_strogatz",
    "configuration_model",
    "planted_partition",
    "random_regular",
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "EmpiricalGraphSpec",
    "EMPIRICAL_GRAPHS",
    "load_empirical_graph",
    "list_empirical_graphs",
    "degree_statistics",
    "connected_components",
    "is_connected",
    "graph_summary",
]
