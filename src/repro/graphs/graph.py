"""The :class:`Graph` class: an immutable, undirected, weighted simple graph.

The class stores edges in a canonical (sorted endpoint) COO-like form and
lazily materialises the derived matrices the MAXCUT algorithms need.  Dense
matrices are cached because the graphs in the paper's evaluation are small
(n <= 700); sparse CSR forms are also available for the spectral code paths
recommended by the HPC guides (``scipy.sparse.linalg.eigsh`` instead of dense
eigendecomposition when n grows).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import ValidationError, check_finite

__all__ = ["Graph"]


class Graph:
    """Undirected weighted graph with vertices ``0 .. n-1``.

    Parameters
    ----------
    n_vertices:
        Number of vertices.  Isolated vertices are allowed.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, weight)`` tuples.  Self-loops are
        rejected; duplicate edges have their weights summed.
    name:
        Optional human-readable identifier (used in experiment reports).

    Notes
    -----
    The graph is immutable after construction.  All derived matrices are
    cached on first access.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_weights",
        "name",
        "_adjacency",
        "_adjacency_sparse",
        "_normalized_sparse",
        "_degrees",
        "_fingerprint",
    )

    def __init__(
        self,
        n_vertices: int,
        edges: Iterable[Sequence[float]] = (),
        name: str = "graph",
    ) -> None:
        n_vertices = int(n_vertices)
        if n_vertices < 0:
            raise ValidationError(f"n_vertices must be non-negative, got {n_vertices}")
        self._n = n_vertices
        self.name = str(name)

        edge_map: dict[Tuple[int, int], float] = {}
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                w = 1.0
            elif len(edge) == 3:
                u, v, w = edge  # type: ignore[misc]
            else:
                raise ValidationError(
                    f"edges must be (u, v) or (u, v, weight) tuples, got {edge!r}"
                )
            u, v, w = int(u), int(v), float(w)
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValidationError(
                    f"edge ({u}, {v}) out of range for n_vertices={n_vertices}"
                )
            if u == v:
                raise ValidationError(f"self-loop ({u}, {u}) is not allowed")
            if not np.isfinite(w):
                raise ValidationError(f"edge ({u}, {v}) has non-finite weight {w}")
            key = (u, v) if u < v else (v, u)
            edge_map[key] = edge_map.get(key, 0.0) + w

        if edge_map:
            pairs = np.array(sorted(edge_map.keys()), dtype=np.int64)
            weights = np.array([edge_map[tuple(p)] for p in pairs], dtype=np.float64)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)

        self._edges = pairs
        self._weights = weights
        self._adjacency: Optional[np.ndarray] = None
        self._adjacency_sparse: Optional[sp.csr_matrix] = None
        self._normalized_sparse: Optional[sp.csr_matrix] = None
        self._degrees: Optional[np.ndarray] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency: np.ndarray, name: str = "graph") -> "Graph":
        """Build a graph from a symmetric adjacency matrix.

        Entries on the diagonal are ignored; the strict upper triangle defines
        the edge set.  Asymmetric matrices are rejected.
        """
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise ValidationError(
                f"adjacency must be square, got shape {adjacency.shape}"
            )
        check_finite(adjacency, "adjacency")
        if adjacency.size and not np.allclose(adjacency, adjacency.T):
            raise ValidationError("adjacency must be symmetric")
        n = adjacency.shape[0]
        iu, ju = np.nonzero(np.triu(adjacency, k=1))
        weights = adjacency[iu, ju]
        edges = [(int(u), int(v), float(w)) for u, v, w in zip(iu, ju, weights)]
        return cls(n, edges, name=name)

    @classmethod
    def from_edge_arrays(
        cls,
        n_vertices: int,
        u: np.ndarray,
        v: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> "Graph":
        """Vectorised constructor from parallel endpoint arrays.

        Produces exactly the canonical form of ``Graph(n, edges)`` — endpoints
        sorted within each edge, edges sorted lexicographically, duplicate
        edges summed — without the per-edge Python loop, so million-edge
        graphs build in milliseconds.  Because the canonical arrays are
        identical, :meth:`fingerprint` of a graph built here equals that of
        the same graph built through ``__init__``.

        Parameters
        ----------
        u, v:
            Integer endpoint arrays of equal length (one edge per position).
        weights:
            Optional float weights aligned with ``u``/``v`` (default all 1.0).
        """
        n_vertices = int(n_vertices)
        if n_vertices < 0:
            raise ValidationError(f"n_vertices must be non-negative, got {n_vertices}")
        u = np.asarray(u, dtype=np.int64).ravel()
        v = np.asarray(v, dtype=np.int64).ravel()
        if u.shape != v.shape:
            raise ValidationError(
                f"endpoint arrays must have equal length, got {u.shape[0]} and {v.shape[0]}"
            )
        if weights is None:
            w = np.ones(u.shape[0], dtype=np.float64)
        else:
            w = np.asarray(weights, dtype=np.float64).ravel()
            if w.shape != u.shape:
                raise ValidationError(
                    f"weights must align with endpoints, got {w.shape[0]} "
                    f"weights for {u.shape[0]} edges"
                )
        if u.size:
            if int(u.min()) < 0 or int(v.min()) < 0 or \
                    int(u.max()) >= n_vertices or int(v.max()) >= n_vertices:
                raise ValidationError(
                    f"edge endpoints out of range for n_vertices={n_vertices}"
                )
            if np.any(u == v):
                bad = int(u[np.argmax(u == v)])
                raise ValidationError(f"self-loop ({bad}, {bad}) is not allowed")
            if not np.all(np.isfinite(w)):
                raise ValidationError("edge weights must be finite")
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            keys = lo * np.int64(n_vertices) + hi
            unique_keys, inverse = np.unique(keys, return_inverse=True)
            summed = np.zeros(unique_keys.shape[0], dtype=np.float64)
            np.add.at(summed, inverse, w)
            pairs = np.empty((unique_keys.shape[0], 2), dtype=np.int64)
            pairs[:, 0] = unique_keys // n_vertices
            pairs[:, 1] = unique_keys % n_vertices
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
            summed = np.empty(0, dtype=np.float64)

        graph = cls.__new__(cls)
        graph._n = n_vertices
        graph.name = str(name)
        graph._edges = pairs
        graph._weights = summed
        graph._adjacency = None
        graph._adjacency_sparse = None
        graph._normalized_sparse = None
        graph._degrees = None
        graph._fingerprint = None
        return graph

    @classmethod
    def from_networkx(cls, nx_graph, name: Optional[str] = None) -> "Graph":
        """Build a graph from a :class:`networkx.Graph` (nodes are relabelled 0..n-1)."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        for u, v, data in nx_graph.edges(data=True):
            if u == v:
                continue
            edges.append((index[u], index[v], float(data.get("weight", 1.0))))
        return cls(len(nodes), edges, name=name or getattr(nx_graph, "name", "graph") or "graph")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of (undirected) edges."""
        return int(self._edges.shape[0])

    @property
    def edges(self) -> np.ndarray:
        """``(m, 2)`` array of edge endpoints with ``u < v`` in each row."""
        return self._edges.copy()

    @property
    def edge_weights(self) -> np.ndarray:
        """``(m,)`` array of edge weights aligned with :attr:`edges`."""
        return self._weights.copy()

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights (the maximum conceivable cut value)."""
        return float(self._weights.sum())

    @property
    def is_weighted(self) -> bool:
        """True if any edge weight differs from 1."""
        return bool(self._weights.size) and not np.allclose(self._weights, 1.0)

    def fingerprint(self) -> str:
        """Stable content hash of the graph structure (cached).

        SHA-256 over the vertex count and the canonical (sorted, deduplicated)
        edge/weight arrays — everything that determines solver behaviour, and
        nothing that does not (the ``name`` is excluded).  Two graphs with
        equal structure hash identically across processes and sessions, which
        is what makes the hash usable as a content address
        (:mod:`repro.serve.cache`): a served request for a previously seen
        graph can reuse its compiled circuit regardless of who built it.
        """
        if self._fingerprint is None:
            import hashlib

            digest = hashlib.sha256()
            digest.update(str(self._n).encode("ascii"))
            digest.update(b"|")
            digest.update(np.ascontiguousarray(self._edges).tobytes())
            digest.update(b"|")
            digest.update(np.ascontiguousarray(self._weights).tobytes())
            self._fingerprint = digest.hexdigest()[:32]
        return self._fingerprint

    def density(self) -> float:
        """Edge density ``m / (n choose 2)`` (0 for graphs with < 2 vertices)."""
        if self._n < 2:
            return 0.0
        return 2.0 * self.n_edges / (self._n * (self._n - 1))

    def has_edge(self, u: int, v: int) -> bool:
        """Return True if edge ``{u, v}`` is present."""
        if u == v:
            return False
        key = (min(u, v), max(u, v))
        if self.n_edges == 0:
            return False
        idx = np.searchsorted(
            self._edges[:, 0] * self._n + self._edges[:, 1],
            key[0] * self._n + key[1],
        )
        if idx >= self.n_edges:
            return False
        return bool(tuple(self._edges[idx]) == key)

    # ------------------------------------------------------------------
    # Derived matrices
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Dense symmetric adjacency matrix ``A`` (cached, returned as a copy view)."""
        if self._adjacency is None:
            A = np.zeros((self._n, self._n), dtype=np.float64)
            if self.n_edges:
                u, v = self._edges[:, 0], self._edges[:, 1]
                A[u, v] = self._weights
                A[v, u] = self._weights
            self._adjacency = A
        return self._adjacency

    def adjacency_sparse(self) -> sp.csr_matrix:
        """Sparse CSR adjacency matrix (cached)."""
        if self._adjacency_sparse is None:
            if self.n_edges:
                u, v = self._edges[:, 0], self._edges[:, 1]
                rows = np.concatenate([u, v])
                cols = np.concatenate([v, u])
                data = np.concatenate([self._weights, self._weights])
            else:
                rows = cols = np.empty(0, dtype=np.int64)
                data = np.empty(0, dtype=np.float64)
            self._adjacency_sparse = sp.csr_matrix(
                (data, (rows, cols)), shape=(self._n, self._n)
            )
        return self._adjacency_sparse

    def to_csr(self, normalized: bool = False) -> sp.csr_matrix:
        """Cached CSR adjacency, plain or degree-normalised.

        The canonical entry point for sparse consumers (the engine's sparse
        weight backend, :mod:`repro.spectral`): repeated calls return the same
        cached matrix instead of rebuilding COO data or re-multiplying by
        ``D^{-1/2}`` per call.  Callers must not mutate the returned matrix.
        """
        if normalized:
            return self.normalized_adjacency_sparse()
        return self.adjacency_sparse()

    def degrees(self) -> np.ndarray:
        """Weighted degree vector ``d_i = sum_j A_ij`` (cached)."""
        if self._degrees is None:
            d = np.zeros(self._n, dtype=np.float64)
            if self.n_edges:
                np.add.at(d, self._edges[:, 0], self._weights)
                np.add.at(d, self._edges[:, 1], self._weights)
            self._degrees = d
        return self._degrees

    def degree_matrix(self) -> np.ndarray:
        """Dense diagonal degree matrix ``D``."""
        return np.diag(self.degrees())

    def inverse_sqrt_degrees(self) -> np.ndarray:
        """Vector ``d_i^{-1/2}`` with zeros for isolated (degree-0) vertices.

        Isolated vertices contribute no edges to any cut, so treating their
        normalized-adjacency row/column as zero is the standard convention and
        keeps the Trevisan matrix finite.
        """
        d = self.degrees()
        inv_sqrt = np.zeros_like(d)
        positive = d > 0
        inv_sqrt[positive] = 1.0 / np.sqrt(d[positive])
        return inv_sqrt

    def normalized_adjacency(self) -> np.ndarray:
        """Dense normalized adjacency ``N = D^{-1/2} A D^{-1/2}``."""
        inv_sqrt = self.inverse_sqrt_degrees()
        A = self.adjacency()
        return (inv_sqrt[:, None] * A) * inv_sqrt[None, :]

    def normalized_adjacency_sparse(self) -> sp.csr_matrix:
        """Sparse normalized adjacency for large-graph eigensolves (cached).

        The returned matrix is shared with every other caller — treat it as
        read-only; mutate a ``.copy()`` instead.
        """
        if self._normalized_sparse is None:
            inv_sqrt = self.inverse_sqrt_degrees()
            D = sp.diags(inv_sqrt)
            self._normalized_sparse = (D @ self.adjacency_sparse() @ D).tocsr()
        return self._normalized_sparse

    def trevisan_matrix(self) -> np.ndarray:
        """Dense Trevisan matrix ``I + D^{-1/2} A D^{-1/2}`` (paper §IV.B)."""
        return np.eye(self._n) + self.normalized_adjacency()

    def laplacian(self) -> np.ndarray:
        """Dense combinatorial Laplacian ``L = D - A``."""
        return self.degree_matrix() - self.adjacency()

    def normalized_laplacian(self) -> np.ndarray:
        """Dense normalized Laplacian ``I - D^{-1/2} A D^{-1/2}``."""
        return np.eye(self._n) - self.normalized_adjacency()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Sequence[int], name: Optional[str] = None) -> "Graph":
        """Return the induced subgraph on *vertices* (relabelled 0..k-1)."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self._n):
            raise ValidationError("subgraph vertices out of range")
        if np.unique(vertices).size != vertices.size:
            raise ValidationError("subgraph vertices must be distinct")
        index = -np.ones(self._n, dtype=np.int64)
        index[vertices] = np.arange(vertices.size)
        edges = []
        for (u, v), w in zip(self._edges, self._weights):
            if index[u] >= 0 and index[v] >= 0:
                edges.append((int(index[u]), int(index[v]), float(w)))
        return Graph(vertices.size, edges, name=name or f"{self.name}-sub")

    def largest_connected_component(self) -> "Graph":
        """Return the induced subgraph on the largest connected component."""
        from repro.graphs.properties import connected_components

        components = connected_components(self)
        largest = max(components, key=len)
        return self.subgraph(sorted(largest), name=f"{self.name}-lcc")

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` (for interop and tests)."""
        import networkx as nx

        g = nx.Graph(name=self.name)
        g.add_nodes_from(range(self._n))
        for (u, v), w in zip(self._edges, self._weights):
            g.add_edge(int(u), int(v), weight=float(w))
        return g

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"Graph(name={self.name!r}, n_vertices={self._n}, "
            f"n_edges={self.n_edges}, weighted={self.is_weighted})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._edges, other._edges)
            and np.allclose(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash((self._n, self._edges.tobytes(), self._weights.tobytes()))
