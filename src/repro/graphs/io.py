"""Graph file IO.

The Network Repository distributes graphs as MatrixMarket (``.mtx``) files or
whitespace-separated edge lists, so both formats are supported for reading and
writing.  Only the undirected-graph subset of each format is implemented; the
parsers are intentionally strict and raise :class:`ValidationError` on
malformed input rather than guessing.
"""

from __future__ import annotations

import os
from typing import List, Tuple, Union

from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_matrix_market",
    "write_matrix_market",
    "graph_to_dict",
    "graph_from_dict",
]

PathLike = Union[str, os.PathLike]


def _parse_edge_tokens(tokens: List[str], line_number: int) -> Tuple[int, int, float]:
    if len(tokens) not in (2, 3):
        raise ValidationError(
            f"line {line_number}: expected 'u v [weight]', got {tokens!r}"
        )
    try:
        u, v = int(tokens[0]), int(tokens[1])
        w = float(tokens[2]) if len(tokens) == 3 else 1.0
    except ValueError as exc:
        raise ValidationError(f"line {line_number}: could not parse {tokens!r}") from exc
    return u, v, w


def read_edge_list(
    path: PathLike,
    one_indexed: bool = False,
    comment_chars: str = "#%",
    name: str | None = None,
) -> Graph:
    """Read an undirected graph from a whitespace-separated edge list.

    Parameters
    ----------
    path:
        File containing ``u v [weight]`` per line.
    one_indexed:
        If True, vertex labels start at 1 (Network Repository convention) and
        are shifted down by one.
    comment_chars:
        Lines starting with any of these characters are skipped.
    """
    edges: list[tuple[int, int, float]] = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in comment_chars:
                continue
            u, v, w = _parse_edge_tokens(line.split(), line_number)
            if one_indexed:
                u, v = u - 1, v - 1
            if u < 0 or v < 0:
                raise ValidationError(
                    f"line {line_number}: negative vertex index (check one_indexed)"
                )
            if u == v:
                continue  # drop self-loops, as the Network Repository loaders do
            max_vertex = max(max_vertex, u, v)
            edges.append((u, v, w))
    graph_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return Graph(max_vertex + 1, edges, name=graph_name)


def write_edge_list(graph: Graph, path: PathLike, one_indexed: bool = False) -> None:
    """Write *graph* as a ``u v weight`` edge list."""
    offset = 1 if one_indexed else 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# {graph.name}: {graph.n_vertices} vertices, {graph.n_edges} edges\n")
        for (u, v), w in zip(graph.edges, graph.edge_weights):
            handle.write(f"{u + offset} {v + offset} {w:g}\n")


def read_matrix_market(path: PathLike, name: str | None = None) -> Graph:
    """Read an undirected graph from a MatrixMarket coordinate file.

    Supports the ``matrix coordinate (real|integer|pattern) symmetric`` and
    ``general`` qualifiers.  General matrices must be structurally symmetric.
    """
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValidationError("not a MatrixMarket file (missing %%MatrixMarket header)")
        parts = header.strip().split()
        if len(parts) < 5 or parts[1] != "matrix" or parts[2] != "coordinate":
            raise ValidationError(f"unsupported MatrixMarket header: {header.strip()!r}")
        field, symmetry = parts[3], parts[4]
        if field not in ("real", "integer", "pattern"):
            raise ValidationError(f"unsupported MatrixMarket field type: {field!r}")
        if symmetry not in ("symmetric", "general"):
            raise ValidationError(f"unsupported MatrixMarket symmetry: {symmetry!r}")

        # Skip comments, read size line.
        size_line = None
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            size_line = line
            break
        if size_line is None:
            raise ValidationError("MatrixMarket file has no size line")
        size_tokens = size_line.split()
        if len(size_tokens) != 3:
            raise ValidationError(f"malformed size line: {size_line!r}")
        n_rows, n_cols, _n_entries = (int(t) for t in size_tokens)
        if n_rows != n_cols:
            raise ValidationError(
                f"adjacency matrix must be square, got {n_rows}x{n_cols}"
            )

        entries: dict[tuple[int, int], float] = {}
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("%"):
                continue
            tokens = line.split()
            u, v = int(tokens[0]) - 1, int(tokens[1]) - 1
            w = float(tokens[2]) if (field != "pattern" and len(tokens) > 2) else 1.0
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            entries.setdefault(key, w)

    edges = [(u, v, w) for (u, v), w in entries.items()]
    graph_name = name or os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return Graph(n_rows, edges, name=graph_name)


def graph_to_dict(graph: Graph) -> dict:
    """JSON-safe rendering of *graph* (the solve-service wire format).

    The inverse of :func:`graph_from_dict`; edges are the canonical
    ``[u, v, weight]`` triples, so ``graph_from_dict(graph_to_dict(g))``
    reproduces ``g`` exactly (same :meth:`Graph.fingerprint`).
    """
    return {
        "n_vertices": int(graph.n_vertices),
        "edges": [
            [int(u), int(v), float(w)]
            for (u, v), w in zip(graph.edges, graph.edge_weights)
        ],
        "name": graph.name,
    }


def graph_from_dict(data) -> Graph:
    """Rebuild a :class:`Graph` from its :func:`graph_to_dict` form.

    Accepts ``[u, v]`` and ``[u, v, weight]`` edge entries; validation
    (range checks, self-loops, finite weights) is the Graph constructor's.
    """
    if not isinstance(data, dict):
        raise ValidationError(
            f"graph payload must be a JSON object, got {type(data).__name__}"
        )
    if "n_vertices" not in data:
        raise ValidationError("graph payload needs an 'n_vertices' field")
    edges = data.get("edges", [])
    if not isinstance(edges, (list, tuple)):
        raise ValidationError("graph payload 'edges' must be a list")
    try:
        return Graph(
            int(data["n_vertices"]),
            [tuple(edge) for edge in edges],
            name=str(data.get("name", "graph")),
        )
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"malformed graph payload: {exc}") from exc


def write_matrix_market(graph: Graph, path: PathLike) -> None:
    """Write *graph* as a symmetric MatrixMarket coordinate file."""
    with open(path, "w", encoding="utf-8") as handle:
        field = "real" if graph.is_weighted else "pattern"
        handle.write(f"%%MatrixMarket matrix coordinate {field} symmetric\n")
        handle.write(f"% {graph.name}\n")
        handle.write(f"{graph.n_vertices} {graph.n_vertices} {graph.n_edges}\n")
        for (u, v), w in zip(graph.edges, graph.edge_weights):
            # MatrixMarket symmetric storage keeps the lower triangle (row >= col).
            row, col = max(u, v) + 1, min(u, v) + 1
            if field == "pattern":
                handle.write(f"{row} {col}\n")
            else:
                handle.write(f"{row} {col} {w:g}\n")
