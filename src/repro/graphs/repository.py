"""Registry of the empirical graphs used in the paper's Figure 4 and Table I.

The paper evaluates on 16 graphs from the Network Repository [Rossi & Ahmed,
2015].  This reproduction has no network access, so the registry provides:

* **exact** deterministic constructions where the graph is purely
  combinatorial (``hamming6-2`` and ``johnson16-2-4`` are DIMACS constructions
  with a closed-form definition), and
* **surrogate** constructions for the remaining empirical graphs: random
  graphs from a family chosen to match the original's broad structure
  (scale-free, small-world, quasi-random, or mesh) with the published vertex
  and edge counts.

Each :class:`EmpiricalGraphSpec` records the published ``(n, m)``, the
surrogate family used, and the paper's Table I reference values so that
EXPERIMENTS.md can report paper-vs-measured side by side.  The substitution is
documented in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.graphs import generators
from repro.graphs.generators import hamming_distance_graph, johnson_graph
from repro.graphs.graph import Graph
from repro.utils.rng import as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "EmpiricalGraphSpec",
    "EMPIRICAL_GRAPHS",
    "load_empirical_graph",
    "list_empirical_graphs",
]


@dataclass(frozen=True)
class EmpiricalGraphSpec:
    """Description of one empirical graph from the paper's evaluation.

    Attributes
    ----------
    name:
        Network Repository graph name, as printed in Table I.
    n_vertices, n_edges:
        Published size of the graph (surrogates match these).
    kind:
        ``"exact"`` for deterministic combinatorial constructions,
        ``"surrogate"`` for synthetic stand-ins.
    family:
        Surrogate family: ``"erdos_renyi"``, ``"barabasi_albert"``,
        ``"watts_strogatz"``, ``"grid"``, or ``"planted"``.
    table1:
        The paper's Table I row: maximum cut values for LIF-GW, LIF-TR, the
        software solver, random cuts, and the reference value from
        Mirka & Williamson (2022).
    description:
        One-line description of the original dataset.
    """

    name: str
    n_vertices: int
    n_edges: int
    kind: str
    family: str
    table1: Dict[str, int] = field(default_factory=dict)
    description: str = ""


def _table1(lif_gw: int, lif_tr: int, solver: int, random: int, reference: int) -> Dict[str, int]:
    return {
        "lif_gw": lif_gw,
        "lif_tr": lif_tr,
        "solver": solver,
        "random": random,
        "reference": reference,
    }


#: The 16 graphs of Table I, in the paper's row order.
EMPIRICAL_GRAPHS: Dict[str, EmpiricalGraphSpec] = {
    "hamming6-2": EmpiricalGraphSpec(
        name="hamming6-2", n_vertices=64, n_edges=1824, kind="exact", family="hamming",
        table1=_table1(992, 972, 992, 957, 992),
        description="DIMACS Hamming graph: 6-bit strings, edges at distance >= 2",
    ),
    "soc-dolphins": EmpiricalGraphSpec(
        name="soc-dolphins", n_vertices=62, n_edges=159, kind="surrogate", family="watts_strogatz",
        table1=_table1(122, 122, 122, 107, 121),
        description="Dolphin social network (Lusseau)",
    ),
    "inf-USAir97": EmpiricalGraphSpec(
        name="inf-USAir97", n_vertices=332, n_edges=2126, kind="surrogate", family="barabasi_albert",
        table1=_table1(107, 97, 107, 89, 107),
        description="US airline connections 1997 (weighted in the original)",
    ),
    "road-chesapeake": EmpiricalGraphSpec(
        name="road-chesapeake", n_vertices=39, n_edges=170, kind="surrogate", family="erdos_renyi",
        table1=_table1(126, 125, 126, 120, 125),
        description="Chesapeake bay trophic network",
    ),
    "johnson16-2-4": EmpiricalGraphSpec(
        name="johnson16-2-4", n_vertices=120, n_edges=5460, kind="exact", family="johnson",
        table1=_table1(3036, 2987, 3036, 2858, 3036),
        description="DIMACS Johnson graph: 2-subsets of a 16-set, disjoint pairs adjacent",
    ),
    "p-hat700-1": EmpiricalGraphSpec(
        name="p-hat700-1", n_vertices=700, n_edges=60999, kind="surrogate", family="erdos_renyi",
        table1=_table1(33350, 31369, 33351, 31002, 33050),
        description="DIMACS p-hat random graph with non-uniform edge density",
    ),
    "ia-infect-dublin": EmpiricalGraphSpec(
        name="ia-infect-dublin", n_vertices=410, n_edges=2765, kind="surrogate", family="watts_strogatz",
        table1=_table1(1751, 1600, 1750, 1494, 1664),
        description="Face-to-face contact network (Infectious exhibition, Dublin)",
    ),
    "ca-netscience": EmpiricalGraphSpec(
        name="ca-netscience", n_vertices=379, n_edges=914, kind="surrogate", family="barabasi_albert",
        table1=_table1(635, 579, 634, 522, 611),
        description="Coauthorship network of network scientists",
    ),
    "dwt-209": EmpiricalGraphSpec(
        name="dwt-209", n_vertices=209, n_edges=767, kind="surrogate", family="grid",
        table1=_table1(554, 534, 554, 441, 540),
        description="Structural engineering mesh (Harwell-Boeing DWT collection)",
    ),
    "dwt-503": EmpiricalGraphSpec(
        name="dwt-503", n_vertices=503, n_edges=3265, kind="surrogate", family="grid",
        table1=_table1(1937, 1740, 1937, 1493, 1921),
        description="Structural engineering mesh (Harwell-Boeing DWT collection)",
    ),
    "ia-infect-hyper": EmpiricalGraphSpec(
        name="ia-infect-hyper", n_vertices=113, n_edges=2196, kind="surrogate", family="erdos_renyi",
        table1=_table1(1277, 1262, 1277, 1182, 1233),
        description="Hypertext 2009 conference contact network",
    ),
    "email-enron-only": EmpiricalGraphSpec(
        name="email-enron-only", n_vertices=143, n_edges=623, kind="surrogate", family="barabasi_albert",
        table1=_table1(425, 394, 425, 367, 413),
        description="Enron e-mail communication core",
    ),
    "Erdos991": EmpiricalGraphSpec(
        name="Erdos991", n_vertices=492, n_edges=1417, kind="surrogate", family="barabasi_albert",
        table1=_table1(1027, 920, 1027, 791, 934),
        description="Erdos collaboration network (1999 snapshot)",
    ),
    "eco-stmarks": EmpiricalGraphSpec(
        name="eco-stmarks", n_vertices=54, n_edges=350, kind="surrogate", family="erdos_renyi",
        table1=_table1(1765, 1764, 1765, 1747, 1190),
        description="St. Marks seagrass ecosystem food web (weighted in the original)",
    ),
    "DD687": EmpiricalGraphSpec(
        name="DD687", n_vertices=725, n_edges=2600, kind="surrogate", family="watts_strogatz",
        table1=_table1(1786, 1625, 1783, 1411, 1680),
        description="Protein structure graph from the D&D dataset",
    ),
    "ENZYMES8": EmpiricalGraphSpec(
        name="ENZYMES8", n_vertices=88, n_edges=133, kind="surrogate", family="watts_strogatz",
        table1=_table1(126, 124, 126, 95, 126),
        description="Protein tertiary structure graph from the ENZYMES dataset",
    ),
}


def list_empirical_graphs() -> list[str]:
    """Return the Table I graph names in the paper's row order."""
    return list(EMPIRICAL_GRAPHS.keys())


def _surrogate_erdos_renyi(spec: EmpiricalGraphSpec, rng: np.random.Generator) -> Graph:
    n = spec.n_vertices
    p = min(1.0, spec.n_edges / (n * (n - 1) / 2.0))
    return generators.erdos_renyi(n, p, seed=rng, name=spec.name)


def _surrogate_barabasi_albert(spec: EmpiricalGraphSpec, rng: np.random.Generator) -> Graph:
    n = spec.n_vertices
    m = max(1, int(round(spec.n_edges / max(1, n))))
    return generators.barabasi_albert(n, m, seed=rng, name=spec.name)


def _surrogate_watts_strogatz(spec: EmpiricalGraphSpec, rng: np.random.Generator) -> Graph:
    n = spec.n_vertices
    k = max(2, 2 * int(round(spec.n_edges / max(1, n))))
    k = min(k, n - 1 if (n - 1) % 2 == 0 else n - 2)
    if k % 2 != 0:
        k -= 1
    k = max(2, k)
    return generators.watts_strogatz(n, k, 0.1, seed=rng, name=spec.name)


def _surrogate_grid(spec: EmpiricalGraphSpec, rng: np.random.Generator) -> Graph:
    # A near-square grid with roughly the published vertex count, augmented
    # with random chords until the published edge count is reached.
    rows = int(np.floor(np.sqrt(spec.n_vertices)))
    cols = int(np.ceil(spec.n_vertices / rows))
    grid = generators.grid_graph(rows, cols)
    keep = list(range(spec.n_vertices))
    base = grid.subgraph(keep, name=spec.name)
    edge_set = {tuple(e) for e in base.edges}
    n = spec.n_vertices
    target = spec.n_edges
    edges = [(int(u), int(v)) for u, v in base.edges]
    attempts = 0
    while len(edges) < target and attempts < 50 * target:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        attempts += 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in edge_set:
            continue
        edge_set.add(key)
        edges.append(key)
    return Graph(n, edges, name=spec.name)


_SURROGATE_BUILDERS: Dict[str, Callable[[EmpiricalGraphSpec, np.random.Generator], Graph]] = {
    "erdos_renyi": _surrogate_erdos_renyi,
    "barabasi_albert": _surrogate_barabasi_albert,
    "watts_strogatz": _surrogate_watts_strogatz,
    "grid": _surrogate_grid,
}


def load_empirical_graph(name: str, seed: Optional[int] = 0) -> Graph:
    """Load (or synthesise) one of the paper's Table I graphs by name.

    Exact graphs (``hamming6-2``, ``johnson16-2-4``) ignore *seed*; surrogate
    graphs are deterministic given *seed* so experiments are reproducible.

    Raises
    ------
    ValidationError
        If *name* is not one of the Table I graphs.
    """
    if name not in EMPIRICAL_GRAPHS:
        raise ValidationError(
            f"unknown empirical graph {name!r}; known graphs: {list_empirical_graphs()}"
        )
    spec = EMPIRICAL_GRAPHS[name]
    if spec.name == "hamming6-2":
        return hamming_distance_graph(6, 2, name=spec.name)
    if spec.name == "johnson16-2-4":
        return johnson_graph(16, 2, 4, name=spec.name)
    rng = as_generator(seed)
    builder = _SURROGATE_BUILDERS[spec.family]
    return builder(spec, rng)
