"""Graph generators.

The paper's Figure 3 uses Erdős–Rényi graphs; Table I / Figure 4 use graphs
from the Network Repository, two of which (``hamming6-2`` and
``johnson16-2-4``) are purely combinatorial and are constructed exactly here.
The remaining generators (Barabási–Albert, Watts–Strogatz, configuration
model, planted partition, random regular) provide the surrogate constructions
used by :mod:`repro.graphs.repository` and the ablation experiments.

All generators are deterministic given a seed and return :class:`Graph`.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_probability

__all__ = [
    "erdos_renyi",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_bipartite",
    "grid_graph",
    "hamming_graph",
    "johnson_graph",
    "barabasi_albert",
    "watts_strogatz",
    "configuration_model",
    "planted_partition",
    "random_regular",
]


def _check_n(n: int, minimum: int = 0, name: str = "n") -> int:
    n = int(n)
    if n < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {n}")
    return n


def erdos_renyi(
    n: int, p: float, seed: RandomState = None, name: Optional[str] = None
) -> Graph:
    """Erdős–Rényi random graph G(n, p).

    Each of the ``n(n-1)/2`` possible edges is present independently with
    probability *p*.  Edge presence is sampled vectorised over the upper
    triangle rather than per edge.
    """
    n = _check_n(n)
    p = check_probability(p)
    rng = as_generator(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    edges = [(int(u), int(v)) for u, v in zip(iu[mask], ju[mask])]
    return Graph(n, edges, name=name or f"er_n{n}_p{p:g}")


def complete_graph(n: int, name: Optional[str] = None) -> Graph:
    """Complete graph K_n."""
    n = _check_n(n)
    edges = [(u, v) for u, v in combinations(range(n), 2)]
    return Graph(n, edges, name=name or f"complete_{n}")


def cycle_graph(n: int, name: Optional[str] = None) -> Graph:
    """Cycle graph C_n (requires n >= 3)."""
    n = _check_n(n, minimum=3)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph(n, edges, name=name or f"cycle_{n}")


def path_graph(n: int, name: Optional[str] = None) -> Graph:
    """Path graph P_n."""
    n = _check_n(n)
    edges = [(i, i + 1) for i in range(n - 1)]
    return Graph(n, edges, name=name or f"path_{n}")


def star_graph(n_leaves: int, name: Optional[str] = None) -> Graph:
    """Star graph with one hub (vertex 0) and *n_leaves* leaves."""
    n_leaves = _check_n(n_leaves, name="n_leaves")
    edges = [(0, i + 1) for i in range(n_leaves)]
    return Graph(n_leaves + 1, edges, name=name or f"star_{n_leaves}")


def complete_bipartite(n_left: int, n_right: int, name: Optional[str] = None) -> Graph:
    """Complete bipartite graph K_{n_left, n_right}.

    Useful in tests because its maximum cut is exactly ``n_left * n_right``.
    """
    n_left = _check_n(n_left, name="n_left")
    n_right = _check_n(n_right, name="n_right")
    edges = [(i, n_left + j) for i in range(n_left) for j in range(n_right)]
    return Graph(n_left + n_right, edges, name=name or f"bipartite_{n_left}x{n_right}")


def grid_graph(rows: int, cols: int, name: Optional[str] = None) -> Graph:
    """2-D grid (lattice) graph with 4-neighbour connectivity."""
    rows = _check_n(rows, minimum=1, name="rows")
    cols = _check_n(cols, minimum=1, name="cols")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return Graph(rows * cols, edges, name=name or f"grid_{rows}x{cols}")


def hamming_graph(d: int, q: int, name: Optional[str] = None) -> Graph:
    """Hamming graph H(d, q): vertices are length-d strings over a q-ary
    alphabet; edges connect strings at Hamming distance exactly 1.

    ``hamming6-2`` in the DIMACS / Network Repository naming is the *clique
    complement* convention: vertices are the ``2^6 = 64`` binary strings of
    length 6 and edges connect strings whose Hamming distance is **at least**
    a threshold.  Use :func:`hamming_distance_graph` for that family.
    """
    d = _check_n(d, minimum=1, name="d")
    q = _check_n(q, minimum=2, name="q")
    n = q**d
    # Enumerate vertices as base-q digit strings.
    digits = np.zeros((n, d), dtype=np.int64)
    for pos in range(d):
        digits[:, pos] = (np.arange(n) // (q ** (d - pos - 1))) % q
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if np.count_nonzero(digits[u] != digits[v]) == 1:
                edges.append((u, v))
    return Graph(n, edges, name=name or f"hamming_{d}_{q}")


def hamming_distance_graph(
    d: int, min_distance: int, name: Optional[str] = None
) -> Graph:
    """Graph on all binary strings of length *d*, with an edge between two
    strings whenever their Hamming distance is at least *min_distance*.

    ``hamming6-2`` (DIMACS) is ``hamming_distance_graph(6, 2)``: 64 vertices,
    1824 edges.
    """
    d = _check_n(d, minimum=1, name="d")
    min_distance = _check_n(min_distance, minimum=1, name="min_distance")
    n = 1 << d
    codes = np.arange(n, dtype=np.uint64)
    edges = []
    for u in range(n):
        xor = codes ^ codes[u]
        dist = np.array([bin(int(x)).count("1") for x in xor])
        for v in range(u + 1, n):
            if dist[v] >= min_distance:
                edges.append((u, v))
    return Graph(n, edges, name=name or f"hamming{d}-{min_distance}")


def johnson_graph(
    n: int, k: int, min_intersection: int, name: Optional[str] = None
) -> Graph:
    """DIMACS-style Johnson graph ``johnson{n}-{k}-{d}``.

    Vertices are the k-subsets of an n-element ground set; two subsets are
    adjacent when their symmetric difference has size at least *d* (DIMACS
    convention: ``johnson16-2-4`` connects pairs of 2-subsets of a 16-set
    whose intersection is empty, i.e. symmetric difference 4).

    Parameters
    ----------
    n, k:
        Ground-set size and subset size.
    min_intersection:
        Minimum symmetric-difference size for adjacency (the trailing number
        in the DIMACS name).
    """
    n = _check_n(n, minimum=1, name="n")
    k = _check_n(k, minimum=1, name="k")
    subsets = [frozenset(c) for c in combinations(range(n), k)]
    n_vertices = len(subsets)
    edges = []
    for i in range(n_vertices):
        for j in range(i + 1, n_vertices):
            sym_diff = len(subsets[i] ^ subsets[j])
            if sym_diff >= min_intersection:
                edges.append((i, j))
    return Graph(n_vertices, edges, name=name or f"johnson{n}-{k}-{min_intersection}")


def barabasi_albert(
    n: int, m: int, seed: RandomState = None, name: Optional[str] = None
) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Starts from a star on ``m + 1`` vertices and attaches each subsequent
    vertex to *m* existing vertices chosen with probability proportional to
    their current degree (without replacement).
    """
    n = _check_n(n, minimum=1)
    m = _check_n(m, minimum=1, name="m")
    if m >= n:
        raise ValidationError(f"m must be < n, got m={m}, n={n}")
    rng = as_generator(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-endpoint list implements preferential attachment.
    repeated: list[int] = []
    for leaf in range(1, m + 1):
        edges.append((0, leaf))
        repeated.extend([0, leaf])
    for new_vertex in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in targets:
            edges.append((t, new_vertex))
            repeated.extend([t, new_vertex])
    return Graph(n, edges, name=name or f"ba_n{n}_m{m}")


def watts_strogatz(
    n: int,
    k: int,
    p: float,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Watts–Strogatz small-world graph.

    A ring lattice where each vertex connects to its *k* nearest neighbours
    (k must be even), with each edge rewired to a uniform random non-neighbour
    with probability *p*.
    """
    n = _check_n(n, minimum=3)
    k = _check_n(k, minimum=2, name="k")
    if k % 2 != 0:
        raise ValidationError(f"k must be even, got {k}")
    if k >= n:
        raise ValidationError(f"k must be < n, got k={k}, n={n}")
    p = check_probability(p)
    rng = as_generator(seed)
    edge_set: set[tuple[int, int]] = set()
    for i in range(n):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % n
            edge_set.add((min(i, j), max(i, j)))
    edges = sorted(edge_set)
    rewired: set[tuple[int, int]] = set(edges)
    for (u, v) in edges:
        if rng.random() < p:
            rewired.discard((u, v))
            # Choose a new endpoint avoiding self-loops and duplicates.
            for _ in range(4 * n):
                w = int(rng.integers(0, n))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in rewired:
                    rewired.add(candidate)
                    break
            else:
                rewired.add((u, v))  # give up on rewiring this edge
    return Graph(n, sorted(rewired), name=name or f"ws_n{n}_k{k}_p{p:g}")


def configuration_model(
    degree_sequence: Sequence[int],
    seed: RandomState = None,
    name: Optional[str] = None,
    max_tries: int = 100,
) -> Graph:
    """Simple-graph configuration model matching a target degree sequence.

    Stubs are paired uniformly at random; self-loops and multi-edges are
    discarded, so realised degrees can be slightly below the targets for
    heavy-tailed sequences.  The sum of degrees must be even.
    """
    degrees = np.asarray(degree_sequence, dtype=np.int64)
    if degrees.ndim != 1:
        raise ValidationError("degree_sequence must be 1-D")
    if np.any(degrees < 0):
        raise ValidationError("degrees must be non-negative")
    if degrees.sum() % 2 != 0:
        raise ValidationError("sum of degrees must be even")
    n = degrees.shape[0]
    if n and degrees.max() >= n:
        raise ValidationError("every degree must be < n for a simple graph")
    rng = as_generator(seed)

    best_edges: set[tuple[int, int]] = set()
    stubs = np.repeat(np.arange(n), degrees)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        edge_set: set[tuple[int, int]] = set()
        for i in range(0, perm.size - 1, 2):
            u, v = int(perm[i]), int(perm[i + 1])
            if u == v:
                continue
            edge_set.add((min(u, v), max(u, v)))
        if len(edge_set) > len(best_edges):
            best_edges = edge_set
        if len(edge_set) == degrees.sum() // 2:
            break
    return Graph(n, sorted(best_edges), name=name or f"config_n{n}")


def planted_partition(
    n: int,
    p_in: float,
    p_out: float,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Two-community planted-partition graph.

    Vertices split into two equal halves; within-community edges appear with
    probability *p_in*, across-community edges with probability *p_out*.
    With ``p_out >> p_in`` the planted bisection is (close to) the maximum
    cut, which makes this family useful for end-to-end solver validation.
    """
    n = _check_n(n, minimum=2)
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    rng = as_generator(seed)
    half = n // 2
    community = np.zeros(n, dtype=np.int64)
    community[half:] = 1
    iu, ju = np.triu_indices(n, k=1)
    same = community[iu] == community[ju]
    prob = np.where(same, p_in, p_out)
    mask = rng.random(iu.shape[0]) < prob
    edges = [(int(u), int(v)) for u, v in zip(iu[mask], ju[mask])]
    return Graph(n, edges, name=name or f"planted_n{n}")


def random_regular(
    n: int, d: int, seed: RandomState = None, name: Optional[str] = None, max_tries: int = 200
) -> Graph:
    """Random d-regular simple graph via repeated stub matching.

    Raises ``ValidationError`` if ``n * d`` is odd or ``d >= n``; raises
    ``RuntimeError`` if a simple d-regular matching is not found within
    *max_tries* attempts (vanishingly unlikely for the sizes used here).
    """
    n = _check_n(n, minimum=1)
    d = _check_n(d, minimum=0, name="d")
    if d >= n:
        raise ValidationError(f"d must be < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValidationError("n * d must be even")
    rng = as_generator(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        edge_set: set[tuple[int, int]] = set()
        ok = True
        for i in range(0, perm.size - 1, 2):
            u, v = int(perm[i]), int(perm[i + 1])
            key = (min(u, v), max(u, v))
            if u == v or key in edge_set:
                ok = False
                break
            edge_set.add(key)
        if ok:
            return Graph(n, sorted(edge_set), name=name or f"regular_n{n}_d{d}")
    raise RuntimeError(
        f"failed to build a simple {d}-regular graph on {n} vertices "
        f"after {max_tries} attempts"
    )
