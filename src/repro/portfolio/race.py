"""Successive-halving solver races under a single :class:`Budget`.

Cold-start routing problem: with no prior data, which registered solver
should ``auto`` spend its budget on?  Answer: race a candidate subset —
give every candidate a small rung of trials, halve the field by interim
best cut, and let the survivors inherit the freed budget.  The classic
successive-halving argument applies: the eventual winner is never
eliminated while it holds the best cut, so the race's best cut equals the
best cut any surviving allocation would have found.

Determinism is the design constraint that shapes the seeding.  Trial *i*
of *every* candidate draws from the same paired seed
(``SeedSequence(root, spawn_key=(i,))`` via
:func:`repro.engine.sampler.trial_seed_sequences`), so

* the race is bit-reproducible for a fixed ``(graph, solvers, budget,
  seed)`` — the k=1 degenerate race equals running the single solver
  alone with the same root seed (pinned in ``tests/test_portfolio.py``);
* comparisons between candidates are *paired*: every solver sees the same
  random trial stream, removing seed luck from the halving decisions.

Batchable candidates run their rungs through the batched engine
(:func:`repro.experiments.runner.run_circuit_trials` with
``trial_offset`` for rung continuation); everything else runs per-trial
through :func:`repro.parallel.pool.parallel_map`.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.registry import SolverSpec, get_spec
from repro.cuts.cut import Cut
from repro.engine.sampler import trial_seed_sequences
from repro.experiments.runner import run_circuit_trials
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.utils.validation import ValidationError
from repro.workloads.spec import Budget

__all__ = ["RaceResult", "race", "rung_schedule"]


def rung_schedule(n_solvers: int, n_trials: int) -> List[int]:
    """Cumulative per-solver trial targets for each halving rung.

    Returns a strictly increasing list ending at *n_trials*: rung *j*
    brings every still-active solver up to ``targets[j]`` trials, then the
    field is halved.  The number of rungs is ``ceil(log2(K))`` (one halving
    per rung until a single survivor remains), clamped so every rung can
    allocate at least one fresh trial.  Guarantees, property-tested in
    ``tests/test_property_based.py``:

    * every target is in ``[1, n_trials]`` and the last equals *n_trials*;
    * a solver surviving to the end runs exactly *n_trials* trials;
    * total trials across the race never exceed ``K * n_trials``.
    """
    if n_solvers < 1:
        raise ValidationError(f"n_solvers must be >= 1, got {n_solvers}")
    if n_trials < 1:
        raise ValidationError(f"n_trials must be >= 1, got {n_trials}")
    n_rungs = min(max(1, math.ceil(math.log2(n_solvers))), n_trials)
    targets: List[int] = []
    for j in range(n_rungs):
        # Geometric ramp: the final rung gets the full budget, each earlier
        # rung half the next one's, floored so every rung runs something
        # and capped so later rungs keep room to grow.
        raw = int(round(n_trials * 2.0 ** (j + 1 - n_rungs)))
        target = max(j + 1, raw, targets[-1] + 1 if targets else 1)
        target = min(target, n_trials - (n_rungs - 1 - j))
        targets.append(target)
    targets[-1] = n_trials
    return targets


@dataclasses.dataclass(frozen=True)
class RaceResult:
    """Outcome of one successive-halving race.

    ``winner`` is the canonical registry key of the surviving solver;
    ``best_cut`` is the best cut *it* found (which, by the elimination
    rule, is the best cut found by anyone).  ``rungs`` records the halving
    trace — per rung: the cumulative trial target, the active field, and
    the survivors — for ``repro portfolio explain``-style diagnostics and
    the bench scenario's detail payload.
    """

    winner: str
    best_cut: Cut
    solver_best: Dict[str, float]
    trials_used: Dict[str, int]
    total_trials: int
    rungs: Tuple[Dict[str, Any], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "winner": self.winner,
            "best_weight": float(self.best_cut.weight),
            "solver_best": {k: float(v) for k, v in self.solver_best.items()},
            "trials_used": dict(self.trials_used),
            "total_trials": self.total_trials,
            "rungs": [dict(r) for r in self.rungs],
        }


def _sequential_race_trial(task) -> Cut:
    """Module-level worker so non-batchable rungs can cross process pools."""
    fn, graph, n_samples, seed_seq = task
    return fn(graph, n_samples=n_samples, seed=seed_seq)


class _Lane:
    """Mutable per-candidate race state (spec + incumbent best)."""

    __slots__ = ("name", "spec", "best_cut", "trials_done")

    def __init__(self, name: str, spec: SolverSpec) -> None:
        self.name = name
        self.spec = spec
        self.best_cut: Optional[Cut] = None
        self.trials_done = 0

    @property
    def best_weight(self) -> float:
        return self.best_cut.weight if self.best_cut is not None else float("-inf")

    def observe(self, cut: Optional[Cut]) -> None:
        # Strict > keeps argmax-first (earliest trial) semantics on ties,
        # matching the engine's own best-cut selection.
        if cut is not None and (self.best_cut is None or cut.weight > self.best_cut.weight):
            self.best_cut = cut


def _resolve_lanes(graph, solvers: Sequence[str]) -> List[_Lane]:
    problem = getattr(graph, "problem", None)
    problem_class = getattr(problem, "kind", None) or "maxcut"
    lanes: List[_Lane] = []
    seen: Dict[str, str] = {}
    for name in solvers:
        spec = get_spec(name)
        if spec.key in seen:
            raise ValidationError(
                f"duplicate race candidate: {name!r} and {seen[spec.key]!r} "
                f"both resolve to solver {spec.key!r}"
            )
        seen[spec.key] = name
        if "maxcut" not in spec.problem_classes \
                and problem_class not in spec.problem_classes:
            raise ValidationError(
                f"solver {spec.key!r} cannot race a {problem_class!r} "
                f"instance (supports {spec.problem_classes!r})"
            )
        lanes.append(_Lane(spec.key, spec))
    if not lanes:
        raise ValidationError("race needs at least one candidate solver")
    return lanes


def _run_rung(lane: _Lane, graph, n_new: int, n_samples: int, seed,
              use_engine: bool, backend: str,
              parallel: Optional[ParallelConfig]) -> None:
    """Advance *lane* by *n_new* trials (continuing at its trial offset)."""
    offset = lane.trials_done
    if lane.spec.batchable and use_engine:
        result = run_circuit_trials(
            graph, circuit=lane.spec.circuit, n_trials=n_new,
            n_samples=n_samples, seed=seed, backend=backend,
            trial_offset=offset,
        )
        lane.observe(result.best_cut)
    else:
        seqs = trial_seed_sequences(seed, n_new, start=offset)
        tasks = [(lane.spec.fn, graph, n_samples, seq) for seq in seqs]
        for cut in parallel_map(_sequential_race_trial, tasks, config=parallel):
            lane.observe(cut)
    lane.trials_done = offset + n_new


def race(graph, solvers: Sequence[str], budget: Optional[Budget] = None,
         seed: Optional[int] = 0, use_engine: bool = True,
         backend: str = "auto",
         parallel: Optional[ParallelConfig] = None) -> RaceResult:
    """Race *solvers* on *graph* under *budget*; return the surviving lane.

    Per rung, every active candidate is advanced to the rung's cumulative
    trial target (deterministic candidates run exactly one trial, ever —
    re-running them buys nothing), then the field is cut to the top
    ``ceil(k/2)`` by interim best cut weight, ties broken by input order.
    ``budget.max_seconds``, when set, is checked between rungs: an
    exhausted clock stops the race early with the current leader.
    """
    budget = budget if budget is not None else Budget()
    lanes = _resolve_lanes(graph, solvers)
    targets = rung_schedule(len(lanes), budget.n_trials)
    started = time.perf_counter()

    active = list(lanes)
    rungs: List[Dict[str, Any]] = []
    for rung_index, target in enumerate(targets):
        for lane in active:
            if lane.spec.deterministic:
                n_new = 1 if lane.trials_done == 0 else 0
            else:
                n_new = target - lane.trials_done
            if n_new > 0:
                _run_rung(lane, graph, n_new, budget.n_samples, seed,
                          use_engine, backend, parallel)
        # Halve: keep the top half by best weight; input order breaks ties
        # so the race is deterministic regardless of dict/hash order.
        order = {lane.name: i for i, lane in enumerate(lanes)}
        ranked = sorted(active, key=lambda l: (-l.best_weight, order[l.name]))
        survivors = ranked[: max(1, math.ceil(len(ranked) / 2))] \
            if rung_index < len(targets) - 1 else ranked[:1]
        rungs.append({
            "rung": rung_index,
            "target_trials": target,
            "active": [lane.name for lane in active],
            "best_weights": {lane.name: lane.best_weight for lane in active},
            "survivors": [lane.name for lane in survivors],
        })
        active = survivors
        if budget.max_seconds is not None \
                and time.perf_counter() - started >= budget.max_seconds:
            break
        if len(active) == 1 and rung_index == len(targets) - 1:
            break

    # Finish the winner's budget if the schedule ended early (single
    # candidate with remaining rungs collapses here).
    winner = active[0]
    if not winner.spec.deterministic and winner.trials_done < budget.n_trials \
            and (budget.max_seconds is None
                 or time.perf_counter() - started < budget.max_seconds):
        _run_rung(winner, graph, budget.n_trials - winner.trials_done,
                  budget.n_samples, seed, use_engine, backend, parallel)

    if winner.best_cut is None:
        raise ValidationError("race produced no cuts (zero-trial budget?)")
    return RaceResult(
        winner=winner.name,
        best_cut=winner.best_cut,
        solver_best={lane.name: lane.best_weight for lane in lanes
                     if lane.best_cut is not None},
        trials_used={lane.name: lane.trials_done for lane in lanes},
        total_trials=sum(lane.trials_done for lane in lanes),
        rungs=tuple(rungs),
    )
