"""The ``portfolio`` meta-solver: route with priors, race when cold.

Registered as a normal :class:`repro.algorithms.registry.SolverSpec` under
the key ``"portfolio"`` (alias ``"auto"``), so it is usable everywhere a
solver name is accepted today — ``repro run``, ``repro compare``,
``repro solve``, workload specs, and serve requests.  Two regimes:

* **Routed** — given a :class:`repro.portfolio.priors.PortfolioModel`
  (object or path), extract features, look up the instance's bucket
  ranking, and run the top-ranked available solver *once* with the
  caller's exact ``(graph, n_samples, seed)``.  Routing adds feature
  extraction only; the answer is bit-identical to invoking the chosen
  solver directly (an acceptance criterion of the serve integration).
* **Cold** — with no model, race :data:`DEFAULT_CANDIDATES` under a small
  :class:`repro.workloads.spec.Budget` via successive halving
  (:func:`repro.portfolio.race.race`) and return the winner's best cut.

The cold default deliberately omits the SDP-embedding solvers (``gw``,
``lif_gw``): their per-instance setup dwarfs a small race budget, and the
racing literature's advice is to race the cheap field and reserve
expensive solvers for routed (prior-backed) decisions.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence, Tuple, Union

from repro.algorithms.registry import (
    SolverSpec,
    get_spec,
    register_solver,
)
from repro.cuts.cut import Cut
from repro.portfolio.features import extract_features
from repro.portfolio.priors import PortfolioModel, load_model, rank_solvers
from repro.portfolio.race import race
from repro.utils.validation import ValidationError
from repro.workloads.spec import Budget

__all__ = [
    "DEFAULT_CANDIDATES",
    "PORTFOLIO_SPEC",
    "route_circuit",
    "solve_portfolio",
]

#: Cold-race candidate pool: cheap, setup-free solvers only (see module
#: docstring for why the SDP family sits this one out).
DEFAULT_CANDIDATES: Tuple[str, ...] = (
    "lif_tr", "trevisan", "annealing", "local_search",
)

#: Engine circuits the serve daemon can batch — the routing targets of
#: :func:`route_circuit`.
SERVE_CIRCUITS: Tuple[str, ...] = ("lif_gw", "lif_tr")

ModelLike = Union[PortfolioModel, str, os.PathLike, None]


def _coerce_model(model: ModelLike) -> Optional[PortfolioModel]:
    if model is None or isinstance(model, PortfolioModel):
        return model
    return load_model(model)


def _resolve_candidates(candidates: Optional[Sequence[str]]) -> Tuple[str, ...]:
    names = tuple(candidates) if candidates else DEFAULT_CANDIDATES
    resolved = []
    for name in names:
        key = get_spec(name).key
        if key == "portfolio":
            raise ValidationError(
                "the portfolio solver cannot race itself; remove "
                f"{name!r} from the candidate list"
            )
        if key not in resolved:
            resolved.append(key)
    if not resolved:
        raise ValidationError("portfolio needs at least one candidate solver")
    return tuple(resolved)


def solve_portfolio(graph, n_samples: int = 256, seed: Any = None, *,
                    model: ModelLike = None,
                    candidates: Optional[Sequence[str]] = None,
                    race_trials: int = 4,
                    use_engine: bool = True,
                    backend: str = "auto",
                    **kwargs: Any) -> Cut:
    """Solve *graph* by prior-based routing or a cold successive-halving race.

    Uniform registry signature: ``(graph, n_samples, seed, **kwargs) ->
    Cut``.  With a *model*, the top-ranked candidate runs once with the
    caller's exact arguments (bit-identical to a direct call); without
    one, the candidates race under ``Budget(n_trials=race_trials,
    n_samples=n_samples)`` with paired per-trial seeds.
    """
    loaded = _coerce_model(model)
    pool = _resolve_candidates(candidates)
    if loaded is not None:
        features = extract_features(graph)
        ranked = rank_solvers(loaded, features, available=pool)
        choice = ranked[0]
        return get_spec(choice).fn(graph, n_samples=n_samples, seed=seed,
                                   **kwargs)
    result = race(graph, pool,
                  budget=Budget(n_trials=race_trials, n_samples=n_samples),
                  seed=seed, use_engine=use_engine, backend=backend)
    return result.best_cut


def route_circuit(graph, model: ModelLike = None) -> str:
    """Pick the engine circuit a ``"solver": "auto"`` serve request runs.

    With a model: the top-ranked of :data:`SERVE_CIRCUITS` for the
    instance's feature bucket.  Without one: a deterministic density
    heuristic — dense graphs amortise the LIF-GW SDP setup (its embedding
    quality pays off), sparse graphs go to the setup-free LIF-Trevisan
    circuit.  Deterministic either way, so routed responses stay
    content-addressable.
    """
    loaded = _coerce_model(model)
    features = extract_features(graph)
    if loaded is not None:
        ranked = rank_solvers(loaded, features, available=list(SERVE_CIRCUITS))
        if ranked and ranked[0] in SERVE_CIRCUITS:
            return ranked[0]
    return "lif_gw" if features.density >= 0.25 else "lif_tr"


PORTFOLIO_SPEC = register_solver(SolverSpec(
    key="portfolio",
    fn=solve_portfolio,
    deterministic=False,
    batchable=False,
    budget="readouts",
    citation="JT16",
    summary="meta-solver: routes via mined priors, races the registry cold",
    aliases=("auto",),
))
