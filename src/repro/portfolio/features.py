"""Cheap, deterministic instance features for portfolio routing.

The portfolio meta-solver (:mod:`repro.portfolio.solver`) decides which
registered solver to run on an instance *before* spending any solve budget,
so the features it routes on must be orders of magnitude cheaper than a
solve.  Everything here is O(edges) except the spectral-gap estimate, which
runs a handful of Lanczos iterations on the cached normalized-adjacency CSR
(:meth:`repro.graphs.graph.Graph.normalized_adjacency_sparse`).

Two properties are load-bearing and pinned by ``tests/test_portfolio.py``
and the hypothesis pass in ``tests/test_property_based.py``:

* **Determinism** — the same graph always yields bit-identical features;
  every quantity (including the Lanczos start and restart directions) is a
  deterministic function of the graph.
* **Relabeling invariance** — permuting vertex labels never changes a
  feature.  Degree/weight statistics are computed on sorted arrays, and the
  Lanczos probe vectors are label-*equivariant* (all-ones, degrees,
  squared-weight degrees): if every probe satisfies ``probe(P·G) =
  P·probe(G)``, the whole recurrence commutes with the permutation and the
  tridiagonal matrix — hence the gap estimate — is identical up to
  floating-point summation order.

Features feed two consumers: :func:`repro.portfolio.priors.rank_solvers`
(bucketed priors mined from persisted arena runs) and the cold-start
density heuristic in :func:`repro.portfolio.solver.route_circuit`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError

__all__ = [
    "InstanceFeatures",
    "extract_features",
    "bucket_key",
    "spectral_gap_estimate",
]


@dataclasses.dataclass(frozen=True)
class InstanceFeatures:
    """Relabeling-invariant summary of one problem instance.

    All floats are plain Python floats (JSON-safe); ``to_dict()`` is the
    canonical serialisation used by ``repro portfolio explain`` and the
    serve ``routed`` diagnostics.
    """

    n_vertices: int
    n_edges: int
    density: float
    degree_mean: float
    degree_std: float
    degree_skew: float
    weight_mean: float
    weight_std: float
    weight_min: float
    weight_max: float
    spectral_gap: float
    problem_class: str = "maxcut"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _equivariant_probes(graph: Graph) -> List[np.ndarray]:
    """Label-equivariant restart directions for the Lanczos recurrence.

    Each vector ``v`` satisfies ``v(P·G) = P·v(G)`` for any vertex
    permutation ``P``, which keeps the gap estimate relabeling-invariant.
    On vertex-transitive graphs every such probe is constant — no
    deterministic invariant procedure can extract a second direction there,
    and the estimate degrades gracefully to 0.0 (routing only needs a
    coarse signal, not tight eigenvalues).
    """
    degrees = graph.degrees().astype(np.float64)
    adjacency = graph.adjacency_sparse()
    squared = np.asarray(
        adjacency.multiply(adjacency).sum(axis=1), dtype=np.float64
    ).ravel()
    return [degrees, squared, degrees ** 2]


def spectral_gap_estimate(graph: Graph, seed: Optional[int] = 0,
                          steps: int = 8) -> float:
    """Estimate ``lambda_1 - lambda_2`` of the normalized adjacency.

    A small Lanczos iteration (full reorthogonalisation — *steps* is tiny,
    so the O(steps^2 n) cost is irrelevant) against the cached CSR.  The
    start vector is the all-ones direction; on breakdown (the Krylov space
    closed early, e.g. the ones vector is an eigenvector of a regular
    graph) the recurrence restarts along the next label-equivariant probe
    with a connecting beta of 0.0, keeping the tridiagonal matrix
    block-diagonal and its eigenvalues valid.  When every probe is
    exhausted the estimate is computed from the blocks built so far.

    The *seed* parameter is accepted for interface stability but unused:
    the current probes are fully deterministic, which is what makes the
    estimate relabeling-invariant (see the module docstring).
    """
    n = graph.n_vertices
    if n < 2 or graph.n_edges == 0:
        return 0.0
    operator = graph.normalized_adjacency_sparse()
    steps = max(2, min(int(steps), n))

    basis = np.zeros((steps, n), dtype=np.float64)
    alphas = np.zeros(steps, dtype=np.float64)
    betas = np.zeros(max(steps - 1, 0), dtype=np.float64)
    probes = _equivariant_probes(graph)

    vector = np.ones(n, dtype=np.float64) / math.sqrt(n)
    performed = 0
    for j in range(steps):
        basis[j] = vector
        w = operator @ vector
        alphas[j] = float(vector @ w)
        # Full reorthogonalisation against every prior basis vector.
        w -= basis[: j + 1].T @ (basis[: j + 1] @ w)
        performed = j + 1
        if j == steps - 1:
            break
        norm = float(np.linalg.norm(w))
        if norm > 1e-10:
            betas[j] = norm
            vector = w / norm
            continue
        # Breakdown: restart along the next equivariant probe, orthogonal
        # to the basis so far; beta stays 0.0 (block-diagonal T is valid).
        vector = None
        while probes:
            probe = probes.pop(0)
            probe = probe - basis[: j + 1].T @ (basis[: j + 1] @ probe)
            probe_norm = float(np.linalg.norm(probe))
            if probe_norm > 1e-8 * max(1.0, float(np.abs(probe).max()), 1.0):
                vector = probe / probe_norm
                break
        if vector is None:  # invariantly-reachable Krylov space exhausted
            break
        betas[j] = 0.0

    if performed < 2:
        return 0.0
    tridiag = np.diag(alphas[:performed])
    offdiag = betas[: performed - 1]
    tridiag += np.diag(offdiag, 1) + np.diag(offdiag, -1)
    eigenvalues = np.linalg.eigvalsh(tridiag)
    return float(eigenvalues[-1] - eigenvalues[-2])


def extract_features(graph: Graph, seed: Optional[int] = 0,
                     lanczos_steps: int = 8) -> InstanceFeatures:
    """Compute :class:`InstanceFeatures` for *graph*.

    ``problem_class`` is taken from a :class:`repro.problems.compile.CompiledGraph`'s
    attached problem when present (``graph.problem.kind``), and defaults to
    ``"maxcut"`` for a plain graph.
    """
    if not isinstance(graph, Graph):
        raise ValidationError(
            f"extract_features expects a Graph, got {type(graph).__name__}"
        )
    n = graph.n_vertices
    degrees = np.sort(graph.degrees().astype(np.float64))
    weights = np.sort(np.asarray(graph.edge_weights, dtype=np.float64))

    if degrees.size:
        degree_mean = float(degrees.mean())
        degree_std = float(degrees.std())
        if degree_std > 1e-12:
            centered = degrees - degree_mean
            degree_skew = float(np.mean(centered ** 3) / degree_std ** 3)
        else:
            degree_skew = 0.0
    else:
        degree_mean = degree_std = degree_skew = 0.0

    if weights.size:
        weight_stats = (float(weights.mean()), float(weights.std()),
                        float(weights[0]), float(weights[-1]))
    else:
        weight_stats = (0.0, 0.0, 0.0, 0.0)

    problem = getattr(graph, "problem", None)
    problem_class = getattr(problem, "kind", None) or "maxcut"

    return InstanceFeatures(
        n_vertices=int(n),
        n_edges=int(graph.n_edges),
        density=float(graph.density()),
        degree_mean=degree_mean,
        degree_std=degree_std,
        degree_skew=degree_skew,
        weight_mean=weight_stats[0],
        weight_std=weight_stats[1],
        weight_min=weight_stats[2],
        weight_max=weight_stats[3],
        spectral_gap=spectral_gap_estimate(graph, seed=seed, steps=lanczos_steps),
        problem_class=str(problem_class),
    )


#: Size-band upper bounds (inclusive) for :func:`bucket_key`.  The upper
#: bands (10k/100k/1M, then "huge") keep the scale-subsystem generators'
#: instances from all collapsing into one bucket — a 100k-vertex sketch-path
#: graph and a 1k-vertex arena graph want different priors.
_SIZE_BANDS = (
    (64, "small"),
    (256, "medium"),
    (10_000, "large"),
    (100_000, "xlarge"),
    (1_000_000, "xxlarge"),
)
#: Density-band upper bounds (exclusive) for :func:`bucket_key`.
_DENSITY_BANDS = ((0.1, "sparse"), (0.4, "mid"))


def bucket_key(problem_class: str, n_vertices: int, density: float) -> str:
    """Coarse feature-bucket name, e.g. ``"maxcut/small/mid"``.

    Deliberately uses only quantities recoverable from persisted
    :class:`repro.arena.results.ArenaEntry` records (``n_vertices`` and
    ``n_edges`` → density), so the prior miner and the live router always
    agree on the bucket an instance falls into.
    """
    size = "huge"
    for bound, label in _SIZE_BANDS:
        if n_vertices <= bound:
            size = label
            break
    band = "dense"
    for bound, label in _DENSITY_BANDS:
        if density < bound:
            band = label
            break
    return f"{problem_class}/{size}/{band}"
