"""Mine persisted arena/workload runs into per-bucket solver priors.

``repro compare`` and the workload runner have been persisting
:class:`repro.arena.results.ArenaEntry` records through the standard
experiment persistence layer since PR 2.  This module folds any number of
those JSON files into a :class:`PortfolioModel`: for every coarse feature
bucket (:func:`repro.portfolio.features.bucket_key`), a ranking of the
solvers that have competed there, by mean arena-relative cut ratio.  The
model itself is a registered result type, so it round-trips through
:func:`repro.experiments.runner.save_results` /
:func:`~repro.experiments.runner.load_results` like every other artifact
(pinned by the property pass in ``tests/test_portfolio.py``).

The miner is deliberately forgiving about record shape: any dict with
``solver``, ``n_vertices``, ``n_edges`` and ``cut_ratio`` keys counts
(that covers ``ArenaEntry`` and anything the sharded executor merged),
everything else is skipped and tallied in ``n_skipped``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments.runner import (
    load_results,
    register_result_type,
    save_results,
)
from repro.portfolio.features import InstanceFeatures, bucket_key
from repro.utils.validation import ValidationError

__all__ = [
    "PortfolioModel",
    "fit_from_paths",
    "fit_from_records",
    "rank_solvers",
    "save_model",
    "load_model",
    "explain_model",
]

#: Schema tag written into every persisted model.
MODEL_SCHEMA = "repro-portfolio/v1"

#: A record must carry these keys to be mined.
_REQUIRED_KEYS = ("solver", "n_vertices", "n_edges", "cut_ratio")


@register_result_type
@dataclasses.dataclass(frozen=True)
class PortfolioModel:
    """Per-feature-bucket solver priors mined from persisted runs.

    ``buckets`` maps a bucket name (``"maxcut/small/mid"``) to a ranked
    list of rows ``{"solver", "mean_ratio", "count", "wins"}``, best
    first; ``overall`` is the same ranking computed over every record (the
    fallback when an instance lands in a bucket with no data).  Rankings
    are sorted by ``(-mean_ratio, solver)`` — deterministic across
    interpreters, which the router depends on.
    """

    buckets: Dict[str, List[Dict[str, Any]]]
    overall: List[Dict[str, Any]]
    n_reports: int
    n_records: int
    n_skipped: int = 0
    sources: List[str] = dataclasses.field(default_factory=list)
    schema: str = MODEL_SCHEMA

    def ranking_for(self, bucket: str) -> List[Dict[str, Any]]:
        """Ranked rows for *bucket*, falling back to the overall ranking."""
        return self.buckets.get(bucket) or self.overall


def _density_of(record: Dict[str, Any]) -> float:
    n = int(record["n_vertices"])
    pairs = n * (n - 1) / 2.0
    return float(record["n_edges"]) / pairs if pairs else 0.0


def _record_bucket(record: Dict[str, Any]) -> str:
    metadata = record.get("metadata") or {}
    problem_class = metadata.get("problem_class") or "maxcut"
    return bucket_key(problem_class, int(record["n_vertices"]), _density_of(record))


def _rank(stats: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows = []
    for solver, acc in stats.items():
        rows.append({
            "solver": solver,
            "mean_ratio": acc["ratio_sum"] / acc["count"],
            "count": acc["count"],
            "wins": acc["wins"],
        })
    rows.sort(key=lambda row: (-row["mean_ratio"], row["solver"]))
    return rows


def fit_from_records(records: Iterable[Dict[str, Any]],
                     n_reports: int = 1,
                     sources: Sequence[str] = ()) -> PortfolioModel:
    """Fold raw result dicts into a :class:`PortfolioModel`."""
    per_bucket: Dict[str, Dict[str, Dict[str, Any]]] = {}
    overall: Dict[str, Dict[str, Any]] = {}
    n_records = 0
    n_skipped = 0
    for record in records:
        if not isinstance(record, dict) \
                or any(key not in record for key in _REQUIRED_KEYS):
            n_skipped += 1
            continue
        n_records += 1
        solver = str(record["solver"])
        ratio = float(record["cut_ratio"])
        win = 1 if ratio >= 1.0 - 1e-12 else 0
        bucket = _record_bucket(record)
        for stats in (per_bucket.setdefault(bucket, {}), overall):
            acc = stats.setdefault(
                solver, {"ratio_sum": 0.0, "count": 0, "wins": 0})
            acc["ratio_sum"] += ratio
            acc["count"] += 1
            acc["wins"] += win
    return PortfolioModel(
        buckets={bucket: _rank(stats)
                 for bucket, stats in sorted(per_bucket.items())},
        overall=_rank(overall),
        n_reports=int(n_reports),
        n_records=n_records,
        n_skipped=n_skipped,
        sources=[str(s) for s in sources],
    )


def fit_from_paths(paths: Sequence[Any]) -> PortfolioModel:
    """Load persisted experiment files and mine them into one model."""
    if not paths:
        raise ValidationError("portfolio fit needs at least one result file")
    records: List[Dict[str, Any]] = []
    for path in paths:
        record = load_results(path)
        records.extend(record.results)
    model = fit_from_records(records, n_reports=len(paths),
                             sources=[str(p) for p in paths])
    if model.n_records == 0:
        raise ValidationError(
            "no minable records found (need dicts with keys "
            f"{list(_REQUIRED_KEYS)}) in {[str(p) for p in paths]}"
        )
    return model


def rank_solvers(model: PortfolioModel, features: InstanceFeatures,
                 available: Optional[Sequence[str]] = None) -> List[str]:
    """Solver keys for *features*' bucket, best first.

    When *available* is given, the ranking is filtered to that set (order
    still by prior); solvers the model has never seen are appended in the
    caller's order so routing degrades to the caller's own preference.
    """
    bucket = bucket_key(features.problem_class, features.n_vertices,
                        features.density)
    ranked = [row["solver"] for row in model.ranking_for(bucket)]
    if available is None:
        return ranked
    allowed = list(available)
    ordered = [s for s in ranked if s in allowed]
    ordered.extend(s for s in allowed if s not in ordered)
    return ordered


def save_model(path: Any, model: PortfolioModel) -> None:
    """Persist *model* through the standard experiment layer."""
    save_results(path, "portfolio-model", [model],
                 config={"schema": model.schema, "sources": model.sources})


def load_model(path: Any) -> PortfolioModel:
    """Load a model previously written by :func:`save_model`."""
    record = load_results(path)
    if record.result_type() != "PortfolioModel" or len(record.results) != 1:
        raise ValidationError(
            f"{path!r} is not a portfolio model file "
            f"(result type {record.result_type()!r})"
        )
    payload = {k: v for k, v in record.results[0].items() if k != "__type__"}
    model = PortfolioModel(**payload)
    if model.schema != MODEL_SCHEMA:
        raise ValidationError(
            f"unsupported portfolio model schema {model.schema!r} "
            f"(expected {MODEL_SCHEMA!r})"
        )
    return model


def explain_model(model: PortfolioModel, top: int = 3) -> str:
    """Human-readable rendering for ``repro portfolio explain``."""
    lines = [
        f"Portfolio model ({model.schema})",
        f"  mined {model.n_records} records from {model.n_reports} report(s)"
        + (f", skipped {model.n_skipped}" if model.n_skipped else ""),
        "",
    ]
    def _render(title: str, rows: List[Dict[str, Any]]) -> None:
        lines.append(title)
        for row in rows[:top]:
            lines.append(
                f"    {row['solver']:<14s} mean ratio {row['mean_ratio']:.4f}"
                f"  wins {row['wins']}/{row['count']}"
            )
    _render("  overall:", model.overall)
    for bucket, rows in model.buckets.items():
        _render(f"  {bucket}:", rows)
    return "\n".join(lines)
