"""Portfolio meta-solver: instance features, mined priors, solver racing.

Importing this package registers the ``portfolio`` solver (alias
``auto``) with :mod:`repro.algorithms.registry` — the same
registration-on-import convention :mod:`repro.problems` uses.  See
DESIGN.md § "Portfolio meta-solver" for the architecture.
"""

from repro.portfolio.features import (
    InstanceFeatures,
    bucket_key,
    extract_features,
    spectral_gap_estimate,
)
from repro.portfolio.priors import (
    PortfolioModel,
    explain_model,
    fit_from_paths,
    fit_from_records,
    load_model,
    rank_solvers,
    save_model,
)
from repro.portfolio.race import RaceResult, race, rung_schedule
from repro.portfolio.solver import (
    DEFAULT_CANDIDATES,
    PORTFOLIO_SPEC,
    route_circuit,
    solve_portfolio,
)

__all__ = [
    "InstanceFeatures",
    "bucket_key",
    "extract_features",
    "spectral_gap_estimate",
    "PortfolioModel",
    "explain_model",
    "fit_from_paths",
    "fit_from_records",
    "load_model",
    "rank_solvers",
    "save_model",
    "RaceResult",
    "race",
    "rung_schedule",
    "DEFAULT_CANDIDATES",
    "PORTFOLIO_SPEC",
    "route_circuit",
    "solve_portfolio",
]
