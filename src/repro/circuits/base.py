"""Common interfaces and result containers for the neuromorphic circuits."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = ["SampleTrajectory", "CircuitResult", "NeuromorphicCircuit"]


@dataclass(frozen=True)
class SampleTrajectory:
    """Per-sample cut weights produced by a circuit run.

    Attributes
    ----------
    weights:
        ``(n_samples,)`` cut weight of each read-out, in sampling order.
    """

    weights: np.ndarray

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=np.float64)
        if weights.ndim != 1:
            raise ValidationError(f"weights must be 1-D, got shape {weights.shape}")
        object.__setattr__(self, "weights", weights)

    @property
    def n_samples(self) -> int:
        return int(self.weights.shape[0])

    def running_best(self) -> np.ndarray:
        """Running maximum over samples — the y-axis of the paper's Figures 3-4."""
        if self.n_samples == 0:
            return np.zeros(0)
        return np.maximum.accumulate(self.weights)

    def best_weight(self) -> float:
        """Best cut weight observed (0 for an empty trajectory)."""
        return float(self.weights.max()) if self.n_samples else 0.0

    def best_at(self, sample_counts: np.ndarray) -> np.ndarray:
        """Best weight after the given 1-based sample counts (for log-spaced curves)."""
        counts = np.asarray(sample_counts, dtype=np.int64)
        if np.any(counts < 1) or np.any(counts > self.n_samples):
            raise ValidationError(
                f"sample_counts must lie in [1, {self.n_samples}], got {counts}"
            )
        return self.running_best()[counts - 1]


@dataclass(frozen=True)
class CircuitResult:
    """Full result of running a neuromorphic circuit on a graph.

    Attributes
    ----------
    graph_name:
        Name of the graph solved.
    best_cut:
        The best cut found across all samples.
    trajectory:
        Per-sample cut weights (supports the convergence curves of Figs. 3-4).
    n_samples:
        Number of cut samples drawn.
    n_steps:
        Total LIF time steps simulated (burn-in included).
    metadata:
        Circuit-specific extras (SDP objective, final plasticity vector, ...).
    """

    graph_name: str
    best_cut: Cut
    trajectory: SampleTrajectory
    n_samples: int
    n_steps: int
    metadata: dict = field(default_factory=dict)

    @property
    def best_weight(self) -> float:
        return self.best_cut.weight


class NeuromorphicCircuit(abc.ABC):
    """Interface shared by the LIF-GW and LIF-Trevisan circuits."""

    #: short identifier used in experiment tables ("lif_gw" / "lif_tr")
    name: str = "circuit"

    def __init__(self, graph: Graph) -> None:
        if graph.n_vertices < 1:
            raise ValidationError("circuits require a graph with at least one vertex")
        self.graph = graph

    @abc.abstractmethod
    def sample_cuts(
        self, n_samples: int, seed: RandomState = None
    ) -> CircuitResult:
        """Generate *n_samples* cut read-outs and return the full result."""

    def solve(self, n_samples: int, seed: RandomState = None) -> Cut:
        """Convenience wrapper returning only the best cut found."""
        return self.sample_cuts(n_samples, seed=seed).best_cut

    # ------------------------------------------------------------------
    # Batched fast path (repro.engine)
    # ------------------------------------------------------------------
    def engine_plan(self):
        """Describe how to run this circuit in batch (a ``BatchPlan``).

        Circuits that support the trial-parallel engine override this; the
        base implementation reports the circuit as sequential-only.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support the batched engine"
        )

    def sample_cuts_batch(
        self,
        n_trials: int,
        n_samples: int,
        seed=None,
        backend: str = "auto",
        early_stop=None,
        **request_options,
    ):
        """Opt-in fast path: run *n_trials* independent trials in batch.

        With ``backend="dense"``/``"auto"`` (dense selected) and
        ``early_stop=None``, trial *i* of the returned
        :class:`repro.engine.SolveResult` is bit-identical to

            self.sample_cuts(n_samples, seed=np.random.SeedSequence(seed, spawn_key=(i,)))

        while integrating every trial's membranes together, one vectorised
        update per time step.
        """
        from repro.engine import BatchedSolverEngine, SolveRequest

        request = SolveRequest(
            circuit=self,
            n_trials=n_trials,
            n_samples=n_samples,
            seed=seed,
            backend=backend,
            early_stop=early_stop,
            **request_options,
        )
        return BatchedSolverEngine().solve(request)
