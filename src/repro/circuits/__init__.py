"""Neuromorphic MAXCUT circuits — the paper's primary contribution.

Two circuits are provided:

* :class:`LIFGWCircuit` (paper §IV.A) — implements the sampling/rounding step
  of the Goemans-Williamson algorithm: device randomness, weighted by the SDP
  solution vectors, becomes correlated membrane fluctuations whose signs are
  cut samples.
* :class:`LIFTrevisanCircuit` (paper §IV.B) — implements the simple-spectral
  Trevisan algorithm fully in-circuit: device randomness weighted by the
  Trevisan matrix drives anti-Hebbian (Oja minor-component) plasticity on a
  stage-2 weight vector, whose sign is the cut.
"""

from repro.circuits.base import CircuitResult, NeuromorphicCircuit, SampleTrajectory
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit

__all__ = [
    "CircuitResult",
    "NeuromorphicCircuit",
    "SampleTrajectory",
    "LIFGWConfig",
    "LIFTrevisanConfig",
    "LIFGWCircuit",
    "LIFTrevisanCircuit",
]
