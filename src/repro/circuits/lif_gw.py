"""LIF-Goemans-Williamson circuit (paper §IV.A, Figure 1).

Pipeline:

1. Solve the MAXCUT SDP offline (Burer-Monteiro, rank ``config.rank``) to get
   unit vectors ``w_i`` — one per vertex.
2. Build a pool of ``rank`` stochastic devices and a LIF population of ``n``
   neurons with device-to-neuron weights ``W = weight_scale * W_GW``.
3. Simulate the LIF membranes.  With centred fair-coin inputs the stationary
   membrane covariance is proportional to the SDP Gram matrix
   ``W_GW W_GW^T`` (paper §III.C), so thresholding the membranes at zero
   every ``sample_interval`` steps performs the Bertsimas-Ye Gaussian
   rounding of the SDP solution.  The alternative ``"spike"`` readout maps
   spiking vs. silent neurons at the read-out step to the two sides of the
   cut, exactly as the hardware circuit would.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.base import CircuitResult, NeuromorphicCircuit, SampleTrajectory
from repro.circuits.config import LIFGWConfig
from repro.cuts.cut import Cut, cut_weights_batch
from repro.devices.base import DevicePool
from repro.devices.bernoulli import FairCoinPool
from repro.graphs.graph import Graph
from repro.neurons.encoding import membrane_sign_assignments, spikes_to_assignments
from repro.neurons.lif import LIFPopulation
from repro.sdp.burer_monteiro import SDPResult, solve_maxcut_sdp
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import ValidationError

__all__ = ["LIFGWCircuit"]

_logger = get_logger("circuits.lif_gw")


class LIFGWCircuit(NeuromorphicCircuit):
    """Neuromorphic implementation of the GW sampling/rounding step.

    Parameters
    ----------
    graph:
        Graph to cut.
    config:
        Circuit configuration (rank, read-out mode, LIF parameters, ...).
    sdp_result:
        Optional pre-computed SDP solution.  When omitted the circuit solves
        the SDP itself during construction (the paper's "offline" step).
    device_pool_factory:
        Callable ``(n_devices, rng) -> DevicePool`` used to build the random
        device pool; defaults to independent fair coins.  Ablation experiments
        substitute biased / correlated / drifting pools here.
    seed:
        Randomness for the SDP initial point (only used when *sdp_result* is
        not supplied).
    """

    name = "lif_gw"

    def __init__(
        self,
        graph: Graph,
        config: Optional[LIFGWConfig] = None,
        sdp_result: Optional[SDPResult] = None,
        device_pool_factory=None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(graph)
        self.config = config or LIFGWConfig()
        self._device_pool_factory = device_pool_factory or (
            lambda n_devices, rng: FairCoinPool(n_devices, seed=rng)
        )

        if sdp_result is None:
            sdp_result = solve_maxcut_sdp(
                graph,
                rank=self.config.rank,
                max_iterations=self.config.sdp_max_iterations,
                tolerance=self.config.sdp_tolerance,
                seed=seed,
            )
        elif sdp_result.vectors.shape != (graph.n_vertices, self.config.rank):
            raise ValidationError(
                "sdp_result.vectors shape "
                f"{sdp_result.vectors.shape} does not match "
                f"(n_vertices={graph.n_vertices}, rank={self.config.rank})"
            )
        self.sdp_result = sdp_result

    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Device-to-neuron weight matrix ``weight_scale * W_GW``."""
        return self.config.weight_scale * self.sdp_result.vectors

    def build_population(self) -> LIFPopulation:
        """Construct a fresh LIF population wired with the SDP weights."""
        return LIFPopulation(self.weights, params=self.config.lif)

    def build_device_pool(self, rng: RandomState = None) -> DevicePool:
        """Construct the stochastic device pool (one device per SDP dimension)."""
        pool = self._device_pool_factory(self.config.rank, as_generator(rng))
        if pool.n_devices != self.config.rank:
            raise ValidationError(
                f"device pool must have {self.config.rank} devices, got {pool.n_devices}"
            )
        return pool

    def engine_plan(self):
        """Batch-execution recipe for :class:`repro.engine.BatchedSolverEngine`.

        The GW weight matrix is a skinny ``(n, rank)`` array, so no sparse
        weight builder is provided — the dense backend is always the right
        choice and keeps the batched path bit-identical to
        :meth:`sample_cuts` under matching per-trial seeds.
        """
        from repro.engine.plan import BatchPlan

        config = self.config
        return BatchPlan(
            weights=self.weights,
            lif=config.lif,
            burn_in=config.burn_in_steps,
            interval=config.sample_interval,
            readout=config.readout,
            n_devices=config.rank,
            pool_builder=self.build_device_pool,
            metadata={
                "sdp_objective": self.sdp_result.objective,
                "sdp_converged": self.sdp_result.converged,
                "rank": config.rank,
            },
        )

    # ------------------------------------------------------------------
    def sample_cuts(self, n_samples: int, seed: RandomState = None) -> CircuitResult:
        """Run the circuit long enough to read out *n_samples* cuts."""
        if n_samples < 1:
            raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
        device_rng, _ = spawn_generators(seed, 2)
        pool = self.build_device_pool(device_rng)
        population = self.build_population()
        config = self.config

        n_steps = config.burn_in_steps + n_samples * config.sample_interval
        device_states = pool.sample(n_steps)

        if config.readout == "membrane":
            potentials = population.run_subthreshold(
                device_states, burn_in=config.burn_in_steps
            )
            readout_rows = potentials[config.sample_interval - 1 :: config.sample_interval]
            assignments = membrane_sign_assignments(readout_rows)
        else:
            run = population.run(device_states, burn_in=config.burn_in_steps)
            spike_rows = run["spikes"][config.sample_interval - 1 :: config.sample_interval]
            assignments = spikes_to_assignments(spike_rows)

        assignments = assignments[:n_samples]
        weights = cut_weights_batch(self.graph, assignments)
        best_index = int(np.argmax(weights))
        best_cut = Cut(
            assignment=assignments[best_index].astype(np.int8),
            weight=float(weights[best_index]),
            graph_name=self.graph.name,
        )
        _logger.debug(
            "LIF-GW on %s: %d samples, best cut %.1f",
            self.graph.name, n_samples, best_cut.weight,
        )
        return CircuitResult(
            graph_name=self.graph.name,
            best_cut=best_cut,
            trajectory=SampleTrajectory(weights=weights),
            n_samples=int(assignments.shape[0]),
            n_steps=n_steps,
            metadata={
                "sdp_objective": self.sdp_result.objective,
                "sdp_converged": self.sdp_result.converged,
                "rank": self.config.rank,
                "readout": config.readout,
                "n_devices": pool.n_devices,
            },
        )
