"""Configuration dataclasses for the neuromorphic circuits."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.neurons.lif import LIFParameters
from repro.utils.validation import ValidationError, check_positive

__all__ = ["LIFGWConfig", "LIFTrevisanConfig"]


@dataclass(frozen=True)
class LIFGWConfig:
    """Configuration of the LIF-Goemans-Williamson circuit.

    Attributes
    ----------
    rank:
        Rank of the SDP factorisation — equals the number of random devices in
        the pool (the paper fixes 4).
    weight_scale:
        Overall scale of the device-to-neuron weights.  The paper notes only
        the *ratios* of the weights matter; this knob exists to emulate
        hardware ranges and is covered by an invariance test.
    sample_interval:
        Number of LIF time steps between consecutive cut read-outs.  Larger
        intervals decorrelate successive samples (the membrane time constant
        sets the correlation time).
    burn_in_steps:
        Steps simulated before the first read-out so the membrane reaches its
        stationary distribution.
    readout:
        ``"membrane"`` (sign of the membrane potential — the Bertsimas-Ye
        Gaussian rounding the analysis is based on) or ``"spike"`` (spiking
        vs. silent neurons at the read-out step, the hardware-native readout
        described in the paper).
    lif:
        Electrical parameters of the LIF population.
    sdp_max_iterations, sdp_tolerance:
        Passed to the offline Burer-Monteiro SDP solve.
    """

    rank: int = 4
    weight_scale: float = 1.0
    sample_interval: int = 10
    burn_in_steps: int = 100
    readout: str = "membrane"
    lif: LIFParameters = field(default_factory=LIFParameters)
    sdp_max_iterations: int = 2000
    sdp_tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if self.rank < 1:
            raise ValidationError(f"rank must be >= 1, got {self.rank}")
        check_positive(self.weight_scale, "weight_scale")
        if self.sample_interval < 1:
            raise ValidationError(
                f"sample_interval must be >= 1, got {self.sample_interval}"
            )
        if self.burn_in_steps < 0:
            raise ValidationError(
                f"burn_in_steps must be >= 0, got {self.burn_in_steps}"
            )
        if self.readout not in ("membrane", "spike"):
            raise ValidationError(
                f"readout must be 'membrane' or 'spike', got {self.readout!r}"
            )
        if self.sdp_max_iterations < 0:
            raise ValidationError("sdp_max_iterations must be >= 0")
        check_positive(self.sdp_tolerance, "sdp_tolerance")


@dataclass(frozen=True)
class LIFTrevisanConfig:
    """Configuration of the LIF-Trevisan circuit.

    Attributes
    ----------
    weight_scale:
        Scale applied to the Trevisan matrix when forming device-to-neuron
        weights (ratios, not magnitudes, determine the covariance structure).
    sample_interval:
        LIF steps (and plasticity updates) between consecutive cut read-outs.
    burn_in_steps:
        Steps simulated before plasticity starts, letting the membranes reach
        stationarity.
    learning_rate, learning_rate_decay:
        Anti-Hebbian Oja learning-rate schedule.
    normalize_plasticity_inputs:
        Scale membrane vectors to unit RMS before each plasticity update so
        the effective learning rate is independent of the weight scale.
    lif:
        Electrical parameters of the stage-1 LIF population.
    """

    weight_scale: float = 1.0
    sample_interval: int = 10
    burn_in_steps: int = 100
    learning_rate: float = 0.02
    learning_rate_decay: float = 0.0
    normalize_plasticity_inputs: bool = True
    lif: LIFParameters = field(default_factory=LIFParameters)

    def __post_init__(self) -> None:
        check_positive(self.weight_scale, "weight_scale")
        if self.sample_interval < 1:
            raise ValidationError(
                f"sample_interval must be >= 1, got {self.sample_interval}"
            )
        if self.burn_in_steps < 0:
            raise ValidationError(
                f"burn_in_steps must be >= 0, got {self.burn_in_steps}"
            )
        check_positive(self.learning_rate, "learning_rate")
        if self.learning_rate_decay < 0:
            raise ValidationError("learning_rate_decay must be non-negative")
