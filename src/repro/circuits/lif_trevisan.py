"""LIF-Trevisan circuit (paper §IV.B, Figure 2).

Pipeline (no offline preprocessing — the whole computation happens in-circuit):

1. Build a pool of ``n`` stochastic devices (one per vertex) and a LIF
   population of ``n`` neurons with device-to-neuron weights proportional to
   the Trevisan matrix ``T = I + D^{-1/2} A D^{-1/2}``.
2. The stationary membrane covariance is then proportional to ``T T^T = T^2``
   (paper §III.C).  ``T`` is symmetric positive semidefinite, so ``T^2`` has
   the same eigenvectors as ``T`` with squared eigenvalues, and in particular
   the *minimum* eigenvector of the membrane covariance is the minimum
   eigenvector of the normalized adjacency — exactly the vector the Trevisan
   simple-spectral algorithm thresholds.
3. A stage-2 output neuron receives the LIF membrane activity through a
   weight vector ``w`` updated by Oja's anti-Hebbian (minor-component) rule.
   The rule converges to that minimum eigenvector; the circuit's cut read-out
   is ``sign(w)``, sampled every ``sample_interval`` plasticity steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.base import CircuitResult, NeuromorphicCircuit, SampleTrajectory
from repro.circuits.config import LIFTrevisanConfig
from repro.cuts.cut import Cut, cut_weights_batch
from repro.devices.base import DevicePool
from repro.devices.bernoulli import FairCoinPool
from repro.graphs.graph import Graph
from repro.neurons.lif import LIFPopulation
from repro.neurons.plasticity import AntiHebbianMinorComponent
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import ValidationError

__all__ = ["LIFTrevisanCircuit"]

_logger = get_logger("circuits.lif_trevisan")


class LIFTrevisanCircuit(NeuromorphicCircuit):
    """Neuromorphic implementation of the Trevisan simple-spectral algorithm.

    Parameters
    ----------
    graph:
        Graph to cut.
    config:
        Circuit configuration (plasticity schedule, LIF parameters, ...).
    device_pool_factory:
        Callable ``(n_devices, rng) -> DevicePool``; defaults to independent
        fair coins, one device per graph vertex (the paper's resource count).
    """

    name = "lif_tr"

    def __init__(
        self,
        graph: Graph,
        config: Optional[LIFTrevisanConfig] = None,
        device_pool_factory=None,
    ) -> None:
        super().__init__(graph)
        self.config = config or LIFTrevisanConfig()
        self._device_pool_factory = device_pool_factory or (
            lambda n_devices, rng: FairCoinPool(n_devices, seed=rng)
        )
        # The in-circuit "program": weights proportional to the Trevisan matrix.
        self._trevisan_matrix = graph.trevisan_matrix()

    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """Device-to-neuron weight matrix ``weight_scale * (I + D^{-1/2} A D^{-1/2})``."""
        return self.config.weight_scale * self._trevisan_matrix

    def build_population(self) -> LIFPopulation:
        """Construct a fresh LIF population wired with the Trevisan weights."""
        return LIFPopulation(self.weights, params=self.config.lif)

    def build_device_pool(self, rng: RandomState = None) -> DevicePool:
        """Construct the device pool: one random device per graph vertex."""
        pool = self._device_pool_factory(self.graph.n_vertices, as_generator(rng))
        if pool.n_devices != self.graph.n_vertices:
            raise ValidationError(
                f"device pool must have {self.graph.n_vertices} devices, "
                f"got {pool.n_devices}"
            )
        return pool

    def engine_plan(self):
        """Batch-execution recipe for :class:`repro.engine.BatchedSolverEngine`.

        The read-out is ``"plasticity"``: each trial owns an anti-Hebbian
        learner (seeded exactly as the sequential path seeds it) that consumes
        every post-burn-in membrane row.  A sparse Trevisan weight builder is
        provided so the engine's ``auto`` backend can switch to CSR products
        on large low-density graphs; it reuses the graph's cached CSR
        adjacency rather than rebuilding it per call.
        """
        import scipy.sparse as sp

        from repro.engine.plan import BatchPlan

        config = self.config
        n = self.graph.n_vertices

        def build_learner(rng):
            return AntiHebbianMinorComponent(
                n_inputs=n,
                learning_rate=config.learning_rate,
                learning_rate_decay=config.learning_rate_decay,
                normalize_inputs=config.normalize_plasticity_inputs,
                seed=rng,
            )

        def sparse_weights():
            return config.weight_scale * (
                sp.identity(n, format="csr") + self.graph.to_csr(normalized=True)
            )

        return BatchPlan(
            weights=self.weights,
            lif=config.lif,
            burn_in=config.burn_in_steps,
            interval=config.sample_interval,
            readout="plasticity",
            n_devices=n,
            pool_builder=self.build_device_pool,
            plasticity_builder=build_learner,
            sparse_weights=sparse_weights,
            metadata={"learning_rate": config.learning_rate},
        )

    # ------------------------------------------------------------------
    def sample_cuts(self, n_samples: int, seed: RandomState = None) -> CircuitResult:
        """Run the circuit, applying plasticity every step and reading out cuts.

        The read-out cadence is one cut per ``sample_interval`` LIF/plasticity
        steps, so *n_samples* read-outs require
        ``burn_in_steps + n_samples * sample_interval`` simulated steps.
        """
        if n_samples < 1:
            raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
        device_rng, plasticity_rng = spawn_generators(seed, 2)
        pool = self.build_device_pool(device_rng)
        population = self.build_population()
        config = self.config
        n = self.graph.n_vertices

        learner = AntiHebbianMinorComponent(
            n_inputs=n,
            learning_rate=config.learning_rate,
            learning_rate_decay=config.learning_rate_decay,
            normalize_inputs=config.normalize_plasticity_inputs,
            seed=plasticity_rng,
        )

        n_steps = config.burn_in_steps + n_samples * config.sample_interval
        device_states = pool.sample(n_steps)
        # Subthreshold membrane trajectory after burn-in drives the plasticity.
        potentials = population.run_subthreshold(
            device_states, burn_in=config.burn_in_steps
        )

        assignments = np.empty((n_samples, n), dtype=np.int8)
        sample_index = 0
        for t in range(potentials.shape[0]):
            learner.step(potentials[t])
            if (t + 1) % config.sample_interval == 0 and sample_index < n_samples:
                assignments[sample_index] = learner.sign_assignment()
                sample_index += 1
        # If rounding of steps left trailing samples unfilled (cannot happen with
        # the exact step count above, but guard anyway), repeat the last state.
        while sample_index < n_samples:
            assignments[sample_index] = learner.sign_assignment()
            sample_index += 1

        weights = cut_weights_batch(self.graph, assignments)
        best_index = int(np.argmax(weights))
        best_cut = Cut(
            assignment=assignments[best_index].astype(np.int8),
            weight=float(weights[best_index]),
            graph_name=self.graph.name,
        )
        _logger.debug(
            "LIF-TR on %s: %d samples, best cut %.1f",
            self.graph.name, n_samples, best_cut.weight,
        )
        return CircuitResult(
            graph_name=self.graph.name,
            best_cut=best_cut,
            trajectory=SampleTrajectory(weights=weights),
            n_samples=n_samples,
            n_steps=n_steps,
            metadata={
                "final_plasticity_weights": learner.weights.copy(),
                "n_plasticity_updates": learner.n_updates,
                "n_devices": pool.n_devices,
                "learning_rate": config.learning_rate,
            },
        )
