"""Greedy 1-flip local search for MAXCUT.

Not part of the paper's evaluation, but a standard post-processing / baseline
step: repeatedly flip the single vertex whose move increases the cut the most
until no improving move exists.  The result is a locally optimal cut whose
weight is at least half the total edge weight, a classical guarantee used in
the integration tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cuts.cut import Cut, cut_weight
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_spin_vector

__all__ = ["greedy_improve", "local_search_maxcut"]


def _gains(graph: Graph, assignment: np.ndarray) -> np.ndarray:
    """Gain in cut weight from flipping each vertex, computed vectorised.

    For vertex i the gain is ``sum_j A_ij v_i v_j`` (edges currently uncut
    minus edges currently cut, from i's perspective).
    """
    A = graph.adjacency()
    v = assignment.astype(np.float64)
    # same-side weight minus cross-side weight for each vertex
    return v * (A @ v)


def greedy_improve(
    graph: Graph,
    assignment: np.ndarray,
    max_iterations: Optional[int] = None,
) -> Cut:
    """Improve *assignment* by greedy single-vertex flips until locally optimal.

    Parameters
    ----------
    graph:
        Graph being cut.
    assignment:
        Starting ±1 assignment.
    max_iterations:
        Optional cap on the number of flips (defaults to ``4 * n^2`` which is
        far beyond what greedy improvement ever needs on these graphs).
    """
    assignment = check_spin_vector(assignment, graph.n_vertices).astype(np.int8).copy()
    if graph.n_vertices == 0:
        return Cut(assignment=assignment, weight=0.0, graph_name=graph.name)
    if max_iterations is None:
        max_iterations = 4 * graph.n_vertices * graph.n_vertices + 8
    A = graph.adjacency()
    v = assignment.astype(np.float64)
    gains = v * (A @ v)
    for _ in range(max_iterations):
        best = int(np.argmax(gains))
        if gains[best] <= 1e-12:
            break
        # Flip vertex `best` and update the gain vector incrementally.
        v[best] = -v[best]
        assignment[best] = -assignment[best]
        gains = v * (A @ v)
    return Cut(
        assignment=assignment,
        weight=cut_weight(graph, assignment),
        graph_name=graph.name,
    )


def local_search_maxcut(
    graph: Graph,
    n_restarts: int = 1,
    seed: RandomState = None,
) -> Cut:
    """Multi-start greedy local search from random initial assignments."""
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    rng = as_generator(seed)
    best: Optional[Cut] = None
    for _ in range(n_restarts):
        start = (2 * rng.integers(0, 2, size=graph.n_vertices) - 1).astype(np.int8)
        candidate = greedy_improve(graph, start)
        if best is None or candidate.weight > best.weight:
            best = candidate
    assert best is not None
    return best
