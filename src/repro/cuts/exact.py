"""Exact MAXCUT by exhaustive enumeration, for validating approximations.

Only feasible for small graphs (n <= ~24); the implementation enumerates all
``2^{n-1}`` assignments (vertex 0 fixed to +1, since a cut and its complement
have the same weight) in vectorised blocks so the constant factor stays small.
"""

from __future__ import annotations

import numpy as np

from repro.cuts.cut import Cut, cut_weights_batch
from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError

__all__ = ["exact_maxcut", "exact_maxcut_value", "MAX_EXACT_VERTICES"]

#: Hard cap on the exhaustive search; above this the search space exceeds 2^24.
MAX_EXACT_VERTICES = 25


def _assignments_block(start: int, stop: int, n: int) -> np.ndarray:
    """±1 assignments for enumeration indices ``start .. stop-1``.

    Index ``i`` encodes the labels of vertices ``1 .. n-1`` in binary; vertex 0
    is always +1.
    """
    indices = np.arange(start, stop, dtype=np.uint64)
    bits = ((indices[:, None] >> np.arange(n - 1, dtype=np.uint64)[None, :]) & 1).astype(np.int8)
    assignments = np.ones((indices.shape[0], n), dtype=np.int8)
    assignments[:, 1:] = 2 * bits - 1
    return assignments


def exact_maxcut(graph: Graph, block_size: int = 1 << 14) -> Cut:
    """Exhaustively find a maximum cut of *graph*.

    Raises
    ------
    ValidationError
        If the graph has more than :data:`MAX_EXACT_VERTICES` vertices.
    """
    n = graph.n_vertices
    if n > MAX_EXACT_VERTICES:
        raise ValidationError(
            f"exact_maxcut supports at most {MAX_EXACT_VERTICES} vertices, got {n}"
        )
    if n == 0:
        return Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
    if n == 1:
        return Cut(assignment=np.ones(1, dtype=np.int8), weight=0.0, graph_name=graph.name)

    total = 1 << (n - 1)
    best_weight = -np.inf
    best_assignment = np.ones(n, dtype=np.int8)
    for start in range(0, total, block_size):
        stop = min(start + block_size, total)
        assignments = _assignments_block(start, stop, n)
        weights = cut_weights_batch(graph, assignments)
        idx = int(np.argmax(weights))
        if weights[idx] > best_weight:
            best_weight = float(weights[idx])
            best_assignment = assignments[idx].copy()
    return Cut(assignment=best_assignment, weight=best_weight, graph_name=graph.name)


def exact_maxcut_value(graph: Graph) -> float:
    """Maximum cut value of *graph* (exhaustive; small graphs only)."""
    return exact_maxcut(graph).weight
