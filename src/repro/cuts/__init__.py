"""Cut machinery: cut representation, weight evaluation, baselines, exact solver."""

from repro.cuts.cut import (
    Cut,
    cut_weight,
    cut_weights_batch,
    spins_from_bits,
    bits_from_spins,
    running_best_cuts,
)
from repro.cuts.random_cut import random_cut, random_cuts_batch, best_random_cut
from repro.cuts.local_search import greedy_improve, local_search_maxcut
from repro.cuts.exact import exact_maxcut, exact_maxcut_value

__all__ = [
    "Cut",
    "cut_weight",
    "cut_weights_batch",
    "spins_from_bits",
    "bits_from_spins",
    "running_best_cuts",
    "random_cut",
    "random_cuts_batch",
    "best_random_cut",
    "greedy_improve",
    "local_search_maxcut",
    "exact_maxcut",
    "exact_maxcut_value",
]
