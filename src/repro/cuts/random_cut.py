"""Uniformly random cuts — the paper's 'Random' baseline (red X curves)."""

from __future__ import annotations

import numpy as np

from repro.cuts.cut import Cut, cut_weights_batch, spins_from_bits
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = ["random_cut", "random_cuts_batch", "best_random_cut"]


def random_cut(graph: Graph, seed: RandomState = None) -> Cut:
    """Sample a single uniformly random ±1 assignment and evaluate it."""
    rng = as_generator(seed)
    assignment = spins_from_bits(rng.integers(0, 2, size=graph.n_vertices))
    return Cut.from_assignment(graph, assignment)


def random_cuts_batch(
    graph: Graph, n_samples: int, seed: RandomState = None
) -> tuple[np.ndarray, np.ndarray]:
    """Sample *n_samples* random cuts.

    Returns
    -------
    (assignments, weights):
        ``(k, n)`` ±1 assignments and the corresponding ``(k,)`` weights.
    """
    if n_samples < 0:
        raise ValidationError(f"n_samples must be non-negative, got {n_samples}")
    rng = as_generator(seed)
    assignments = spins_from_bits(
        rng.integers(0, 2, size=(n_samples, graph.n_vertices))
    )
    weights = cut_weights_batch(graph, assignments) if n_samples else np.zeros(0)
    return assignments, weights


def best_random_cut(graph: Graph, n_samples: int, seed: RandomState = None) -> Cut:
    """Best of *n_samples* uniformly random cuts (requires n_samples >= 1)."""
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    assignments, weights = random_cuts_batch(graph, n_samples, seed)
    best = int(np.argmax(weights))
    return Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
