"""Cut representation and vectorised cut-weight evaluation.

The MAXCUT objective used throughout the paper is

    cut(v) = 1/2 * sum_ij A_ij (1 - v_i v_j),   v in {-1, +1}^n,

which counts (the weight of) edges whose endpoints receive opposite signs.
Because the circuits generate hundreds of thousands of candidate cuts, the
batch evaluator works directly on the edge list:  evaluating ``k`` cuts costs
``O(k * m)`` with a single vectorised comparison, no dense ``n x n`` products.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.obs.trace import accumulate, tracing_enabled
from repro.utils.validation import ValidationError, check_spin_vector

__all__ = [
    "Cut",
    "BatchCutEvaluator",
    "cut_weight",
    "cut_weights_batch",
    "spins_from_bits",
    "bits_from_spins",
]


def spins_from_bits(bits: np.ndarray) -> np.ndarray:
    """Map 0/1 arrays to -1/+1 arrays (0 -> -1, 1 -> +1)."""
    bits = np.asarray(bits)
    return (2 * bits.astype(np.int8) - 1).astype(np.int8)


def bits_from_spins(spins: np.ndarray) -> np.ndarray:
    """Map -1/+1 arrays to 0/1 arrays (-1 -> 0, +1 -> 1)."""
    spins = np.asarray(spins)
    return ((spins + 1) // 2).astype(np.int8)


def cut_weight(graph: Graph, assignment: np.ndarray) -> float:
    """Weight of the cut induced by a ±1 *assignment*.

    Parameters
    ----------
    graph:
        The graph whose edges are counted.
    assignment:
        Length-``n`` vector of ±1 vertex labels.

    Returns
    -------
    float
        Total weight of edges whose endpoints have opposite labels.
    """
    assignment = check_spin_vector(assignment, graph.n_vertices)
    if graph.n_edges == 0:
        return 0.0
    edges = graph.edges
    crossing = assignment[edges[:, 0]] != assignment[edges[:, 1]]
    return float(graph.edge_weights[crossing].sum())


def cut_weights_batch(graph: Graph, assignments: np.ndarray) -> np.ndarray:
    """Weights of many cuts at once.

    Parameters
    ----------
    graph:
        The graph whose edges are counted.
    assignments:
        ``(k, n)`` array of ±1 labels, one cut per row.  A 1-D input is
        treated as a single cut.

    Returns
    -------
    numpy.ndarray
        Length-``k`` array of cut weights.
    """
    assignments = np.asarray(assignments)
    if assignments.ndim == 1:
        assignments = assignments[None, :]
    if assignments.ndim != 2 or assignments.shape[1] != graph.n_vertices:
        raise ValidationError(
            f"assignments must have shape (k, {graph.n_vertices}), "
            f"got {assignments.shape}"
        )
    if assignments.size and not np.all(np.isin(assignments, (-1, 1))):
        raise ValidationError("assignments must contain only -1/+1 entries")
    if graph.n_edges == 0:
        return np.zeros(assignments.shape[0], dtype=np.float64)
    edges = graph.edges
    # (k, m) boolean crossing mask computed with two gathers and one compare.
    left = assignments[:, edges[:, 0]]
    right = assignments[:, edges[:, 1]]
    crossing = left != right
    return crossing @ graph.edge_weights


class BatchCutEvaluator:
    """Repeated batch cut evaluation with the per-call overhead hoisted out.

    The streaming engine evaluates a ``(trials,)`` batch of cuts every
    read-out round — thousands of :func:`cut_weights_batch` calls per solve.
    This helper captures the edge arrays once and skips input validation
    (callers guarantee ±1 rows of the right width), while computing the same
    ``crossing @ edge_weights`` product, so its results are bitwise equal to
    :func:`cut_weights_batch`.

    Evaluation runs in an array namespace
    (:class:`repro.engine.xp.ArrayBackend`, default numpy): edge arrays are
    transferred once at construction and the result stays in the namespace —
    on numpy that means every call lowers to the exact host expressions
    above, so outputs are unchanged bitwise.  The weighted product uses an
    explicit ``bool -> float64`` cast before the matmul (accelerators cannot
    multiply booleans); NumPy's implicit promotion computes the identical
    product, so the cast keeps one code path without perturbing host
    results.
    """

    __slots__ = ("_array", "_heads", "_tails", "_weights", "_n_edges", "_unit_weights")

    def __init__(self, graph: Graph, array_backend=None) -> None:
        if array_backend is None:
            # Function-level import: repro.engine imports this module, so the
            # default-backend lookup must not re-enter the engine package
            # mid-initialisation.
            from repro.engine.xp import get_array_backend

            array_backend = get_array_backend("numpy")
        self._array = array_backend
        edges = graph.edges
        host_weights = graph.edge_weights
        self._n_edges = int(host_weights.size)
        # int64 gather indices: numpy is indifferent, torch requires long.
        self._heads = array_backend.asarray(np.ascontiguousarray(edges[:, 0]), dtype="int64")
        self._tails = array_backend.asarray(np.ascontiguousarray(edges[:, 1]), dtype="int64")
        self._weights = array_backend.asarray(host_weights)
        # For unit weights, `crossing @ 1-vector` is an exact integer sum, so
        # counting crossing edges gives the bitwise-identical result without
        # the bool->float promotion of the matmul.
        self._unit_weights = bool(self._n_edges) and bool(
            np.all(host_weights == 1.0)
        )

    def weights(self, assignments):
        """Cut weights of a ``(k, n)`` block of ±1 assignments (unvalidated).

        *assignments* may be host numpy or already in the evaluator's array
        namespace; the result is a length-``k`` float64 vector in the
        namespace (host ndarray under the default numpy backend).

        Runs once per read-out round, so it carries no span of its own;
        under active tracing it folds its elapsed time into the enclosing
        span's attrs (``cut_eval_seconds`` / ``cut_evaluations``) instead.
        """
        if not tracing_enabled():
            return self._weights_of(assignments)
        start = time.perf_counter()
        try:
            return self._weights_of(assignments)
        finally:
            accumulate("cut_eval_seconds", time.perf_counter() - start)
            accumulate("cut_evaluations", 1)

    def _weights_of(self, assignments):
        xp = self._array
        assignments = xp.asarray(assignments)
        if self._n_edges == 0:
            return xp.zeros((assignments.shape[0],), dtype="float64")
        crossing = assignments[:, self._heads] != assignments[:, self._tails]
        if self._unit_weights:
            return xp.astype(xp.count_nonzero(crossing, axis=1), "float64")
        return xp.matmul(xp.astype(crossing, "float64"), self._weights)


@dataclass(frozen=True)
class Cut:
    """An evaluated cut: a ±1 assignment together with its weight.

    Instances are immutable and ordered by weight, so ``max(cuts)`` returns
    the best cut found.
    """

    assignment: np.ndarray
    weight: float
    graph_name: str = "graph"

    @classmethod
    def from_assignment(cls, graph: Graph, assignment: np.ndarray) -> "Cut":
        """Evaluate *assignment* against *graph* and wrap it in a ``Cut``."""
        assignment = check_spin_vector(assignment, graph.n_vertices)
        return cls(
            assignment=assignment.copy(),
            weight=cut_weight(graph, assignment),
            graph_name=graph.name,
        )

    @property
    def n_vertices(self) -> int:
        return int(self.assignment.shape[0])

    @property
    def side_sizes(self) -> tuple[int, int]:
        """Sizes of the two vertex classes ``(|V_{-1}|, |V_{+1}|)``."""
        positive = int(np.count_nonzero(self.assignment == 1))
        return self.n_vertices - positive, positive

    def complement(self) -> "Cut":
        """The same cut with both sides swapped (identical weight)."""
        return Cut(
            assignment=(-self.assignment).astype(np.int8),
            weight=self.weight,
            graph_name=self.graph_name,
        )

    def partition(self) -> tuple[np.ndarray, np.ndarray]:
        """Vertex index arrays for the -1 side and the +1 side."""
        negative = np.flatnonzero(self.assignment == -1)
        positive = np.flatnonzero(self.assignment == 1)
        return negative, positive

    def __lt__(self, other: "Cut") -> bool:
        return self.weight < other.weight

    def __le__(self, other: "Cut") -> bool:
        return self.weight <= other.weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return self.weight == other.weight and np.array_equal(
            self.assignment, other.assignment
        )

    def __hash__(self) -> int:
        return hash((self.weight, self.assignment.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"Cut(graph={self.graph_name!r}, weight={self.weight:g}, "
            f"sides={self.side_sizes})"
        )


def running_best_cuts(weights: np.ndarray) -> np.ndarray:
    """Running maximum of a sequence of cut weights (the paper's Figures 3-4 y-axis).

    ``running_best_cuts(w)[t]`` is the best cut weight observed in the first
    ``t + 1`` samples.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValidationError(f"weights must be 1-D, got shape {weights.shape}")
    return np.maximum.accumulate(weights)
