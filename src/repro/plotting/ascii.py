"""ASCII renderers for line plots and histograms."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["ascii_line_plot", "ascii_histogram", "ascii_bar_chart", "render_curves", "render_leaderboard"]

#: Plot symbols assigned to series in insertion order (mirrors the paper's legend).
_SERIES_SYMBOLS = "ox^*+#%@"


def _normalise_series(series: Mapping[str, Sequence[float]]) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValidationError(f"series {name!r} must be a non-empty 1-D sequence")
        out[str(name)] = arr
    if not out:
        raise ValidationError("at least one series is required")
    lengths = {arr.size for arr in out.values()}
    if len(lengths) != 1:
        raise ValidationError(f"all series must have the same length, got {lengths}")
    return out


def ascii_line_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    log_x: bool = False,
    y_range: Optional[tuple[float, float]] = None,
) -> str:
    """Render one or more series as an ASCII line plot.

    Parameters
    ----------
    x:
        Shared x-coordinates.
    series:
        Mapping of label -> y-values (all the same length as *x*).
    width, height:
        Character dimensions of the plot area (axes add a margin).
    log_x:
        Plot x on a log10 scale (the paper's sample-count axis).
    y_range:
        Optional fixed (ymin, ymax); defaults to the data range padded by 5%.
    """
    if width < 10 or height < 4:
        raise ValidationError("width must be >= 10 and height >= 4")
    data = _normalise_series(series)
    x_arr = np.asarray(x, dtype=np.float64)
    n_points = next(iter(data.values())).size
    if x_arr.shape != (n_points,):
        raise ValidationError(f"x must have length {n_points}, got {x_arr.shape}")

    if log_x:
        if np.any(x_arr <= 0):
            raise ValidationError("log_x requires strictly positive x values")
        x_plot = np.log10(x_arr)
    else:
        x_plot = x_arr

    all_y = np.concatenate(list(data.values()))
    if y_range is None:
        y_min, y_max = float(all_y.min()), float(all_y.max())
        pad = 0.05 * (y_max - y_min) if y_max > y_min else max(abs(y_max), 1.0) * 0.05
        y_min, y_max = y_min - pad, y_max + pad
    else:
        y_min, y_max = float(y_range[0]), float(y_range[1])
        if y_max <= y_min:
            raise ValidationError("y_range must satisfy ymax > ymin")

    x_min, x_max = float(x_plot.min()), float(x_plot.max())
    x_span = x_max - x_min if x_max > x_min else 1.0
    y_span = y_max - y_min

    grid = [[" "] * width for _ in range(height)]
    for series_index, (name, values) in enumerate(data.items()):
        symbol = _SERIES_SYMBOLS[series_index % len(_SERIES_SYMBOLS)]
        for xi, yi in zip(x_plot, values):
            col = int(round((xi - x_min) / x_span * (width - 1)))
            row = int(round((y_max - yi) / y_span * (height - 1)))
            col = min(max(col, 0), width - 1)
            row = min(max(row, 0), height - 1)
            grid[row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        y_value = y_max - row_index * y_span / (height - 1)
        lines.append(f"{y_value:8.3f} |" + "".join(row))
    x_label_left = f"{x_arr.min():g}"
    x_label_right = f"{x_arr.max():g}"
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + x_label_left
        + " " * max(1, width - len(x_label_left) - len(x_label_right))
        + x_label_right
    )
    legend = "  ".join(
        f"{_SERIES_SYMBOLS[i % len(_SERIES_SYMBOLS)]}={name}" for i, name in enumerate(data)
    )
    lines.append(" " * 10 + legend + ("   (log x)" if log_x else ""))
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    n_bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal ASCII histogram of *values*."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    if n_bins < 1 or width < 1:
        raise ValidationError("n_bins and width must be >= 1")
    counts, edges = np.histogram(arr, bins=n_bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{edges[i]:10.3f} - {edges[i + 1]:10.3f} | {bar} {count}")
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    value_format: str = "{:.3f}",
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Bars are scaled to the largest value; labels are right-aligned so the
    bars share a common baseline.  Used by ``repro compare --plot`` for the
    arena leaderboard.
    """
    labels = [str(label) for label in labels]
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    if len(labels) != arr.size:
        raise ValidationError(
            f"labels and values must have the same length, got {len(labels)} and {arr.size}"
        )
    if width < 1:
        raise ValidationError("width must be >= 1")
    if np.any(arr < 0):
        raise ValidationError("bar values must be non-negative")
    peak = float(arr.max()) if arr.max() > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, arr):
        bar = "#" * int(round(value / peak * width))
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value_format.format(float(value))}"
        )
    return "\n".join(lines)


def render_leaderboard(result, width: int = 50) -> str:
    """Bar chart of an arena run's aggregate mean cut ratios (best first).

    *result* is a :class:`repro.arena.results.ArenaResult`; only its
    ``aggregate()`` rows are consulted, keeping the plotting layer free of
    arena imports.
    """
    rows = result.aggregate()
    if not rows:
        raise ValidationError("arena result has no entries to plot")
    return ascii_bar_chart(
        [str(row["solver"]) for row in rows],
        [float(row["mean_ratio"]) for row in rows],
        width=width,
        title=f"mean cut ratio by solver (suite {result.suite!r})",
    )


def render_curves(
    sample_counts: Sequence[int],
    curves: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Convenience wrapper: log-x convergence plot in the paper's style."""
    return ascii_line_plot(
        sample_counts,
        curves,
        title=title,
        log_x=True,
        y_range=None,
    )
