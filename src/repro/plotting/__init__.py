"""Dependency-free ASCII plotting for convergence curves and sweep summaries.

The evaluation figures in the paper are log-x convergence plots.  Matplotlib
is not a dependency of this library, so the examples and benchmark reports use
these ASCII renderers, which are good enough to see the curve shapes (LIF-GW
flat at the solver level, LIF-TR climbing, random trailing) in a terminal or a
text log.  :func:`ascii_bar_chart` / :func:`render_leaderboard` serve the
solver arena's aggregate leaderboard (``repro compare --plot``).
"""

from repro.plotting.ascii import (
    ascii_bar_chart,
    ascii_histogram,
    ascii_line_plot,
    render_curves,
    render_leaderboard,
)

__all__ = [
    "ascii_line_plot",
    "ascii_histogram",
    "ascii_bar_chart",
    "render_curves",
    "render_leaderboard",
]
