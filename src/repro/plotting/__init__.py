"""Dependency-free ASCII plotting for convergence curves and sweep summaries.

The evaluation figures in the paper are log-x convergence plots.  Matplotlib
is not a dependency of this library, so the examples and benchmark reports use
these ASCII renderers, which are good enough to see the curve shapes (LIF-GW
flat at the solver level, LIF-TR climbing, random trailing) in a terminal or a
text log.
"""

from repro.plotting.ascii import ascii_line_plot, ascii_histogram, render_curves

__all__ = ["ascii_line_plot", "ascii_histogram", "render_curves"]
