"""Prometheus text exposition (format 0.0.4) for a :class:`MetricsRegistry`.

Stdlib-only renderer for ``GET /metrics``: ``# HELP`` / ``# TYPE`` headers,
one sample line per series, histograms as cumulative ``_bucket{le=...}``
plus ``_sum`` / ``_count``.  Label values are escaped per the exposition
spec (backslash, double quote, newline).
"""

from __future__ import annotations

from typing import Dict

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["PROMETHEUS_CONTENT_TYPE", "render_prometheus"]

#: The Content-Type Prometheus scrapers expect from a text endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _format_le(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric of *registry* as Prometheus exposition text."""
    lines = []
    for metric in registry.collect():
        if metric.help_text:
            lines.append(f"# HELP {metric.name} {metric.help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            series = metric.series()
            if not series and isinstance(metric, Counter):
                # A registered-but-never-incremented counter still exposes
                # its zero: scrapers can tell "never happened" from "absent".
                series = [({}, 0)]
            for labels, value in series:
                lines.append(
                    f"{metric.name}{_labels_text(labels)} {_format_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for bound, count in metric.cumulative_buckets():
                lines.append(
                    f'{metric.name}_bucket{{le="{_format_le(bound)}"}} {count}'
                )
            lines.append(f"{metric.name}_sum {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count {metric.count}")
    return "\n".join(lines) + "\n"
