"""Observability: tracing spans, metrics registry, exposition, profiling.

The measurement backbone of the stack (see DESIGN.md, "Observability"):

* :mod:`repro.obs.trace` — ``span()`` context managers with contextvar
  parent/child nesting and a near-zero no-op fast path when disabled;
* :mod:`repro.obs.metrics` — process-wide counters / gauges / histograms
  behind one lock (serve's ``/stats`` and ``/metrics`` source of truth);
* :mod:`repro.obs.exposition` — Prometheus text rendering;
* :mod:`repro.obs.profile` — Chrome trace-event JSON and ASCII breakdowns
  for ``repro profile``.
"""

from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    nearest_rank_percentile,
)
from repro.obs.profile import chrome_trace, profile_summary, render_profile
from repro.obs.trace import (
    SpanRecord,
    Trace,
    accumulate,
    capture,
    current_span,
    disable_tracing,
    enable_tracing,
    merge_summaries,
    span,
    summarize_spans,
    suspended,
    tracing_enabled,
)

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "nearest_rank_percentile",
    "chrome_trace",
    "profile_summary",
    "render_profile",
    "SpanRecord",
    "Trace",
    "accumulate",
    "capture",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "merge_summaries",
    "span",
    "summarize_spans",
    "suspended",
    "tracing_enabled",
]
