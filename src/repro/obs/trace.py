"""Tracing core: lightweight spans with a near-zero disabled fast path.

A *span* is one timed region of the stack — ``with span("engine.solve",
graph=name):`` — recorded with monotonic ``time.perf_counter`` timestamps and
nested through a :mod:`contextvars` variable, so parent/child relationships
are correct per thread (and per task) without any cooperation from callers:
the innermost open span in the current context is the parent of the next one
opened there.  Worker threads start with no current span, so one request's
spans can never become children of another request's — the property the
serve batching tests pin.

Collection is process-global and explicitly switched:

* disabled (the default), :func:`span` returns a shared no-op context
  manager — one module-global load, one ``is None`` test, no allocation
  beyond the call's own kwargs.  Instrumented hot paths therefore cost
  nanoseconds per call when nobody is profiling, and the ``obs-overhead``
  bench scenario gates that this stays true;
* enabled (:func:`enable_tracing`, or the :func:`capture` context manager),
  finished spans append :class:`SpanRecord` rows to a lock-protected global
  buffer, in completion order.

Two invariants the engine relies on:

* tracing **never touches seeding** — no RNG is consumed anywhere in this
  module, so every bit-identity pin (engine vs sequential, fused vs
  per-instance, served vs standalone) holds with tracing on or off;
* span bookkeeping is strictly additive — instrumented code computes the
  same values in the same order whether or not a trace is being collected.

:func:`accumulate` is the hot-loop companion: code that runs once per
read-out round (cut evaluation, learner steps) must not open a span per
round, so it adds elapsed seconds / counts onto the attrs of the *current*
open span instead — one dict update per round, only while tracing is
enabled.

This module deliberately depends on nothing above the standard library, so
any layer of the stack (cuts, engine, serve, workloads) may import it
without cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "SpanRecord",
    "Trace",
    "span",
    "accumulate",
    "current_span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "capture",
    "suspended",
    "mark",
    "spans_since",
    "summarize_spans",
]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: identity, nesting, monotonic timing, attributes.

    ``start_seconds`` is a ``time.perf_counter`` reading — meaningful only
    relative to other spans of the same process, which is all a trace needs.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_seconds: float
    duration_seconds: float
    thread: str
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (checkpoint metadata, trace files)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


# -- global collection state -------------------------------------------------

# None = tracing disabled (THE fast-path check); a list = the live buffer.
_buffer: Optional[List[SpanRecord]] = None
_buffer_lock = threading.Lock()
_ids = itertools.count(1)

#: The innermost open span of the current context (thread / task), or None.
_current: "contextvars.ContextVar[Optional[_Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def tracing_enabled() -> bool:
    """Whether spans are currently being collected."""
    return _buffer is not None


def enable_tracing() -> None:
    """Start collecting spans into the global buffer (idempotent)."""
    global _buffer
    with _buffer_lock:
        if _buffer is None:
            _buffer = []


def disable_tracing() -> List[SpanRecord]:
    """Stop collecting; returns (and clears) every span recorded so far."""
    global _buffer
    with _buffer_lock:
        spans = _buffer or []
        _buffer = None
    return spans


def mark() -> int:
    """Current buffer length — pair with :func:`spans_since` for sub-traces."""
    with _buffer_lock:
        return len(_buffer) if _buffer is not None else 0


def spans_since(marker: int) -> List[SpanRecord]:
    """Spans recorded since :func:`mark` returned *marker* (empty if disabled)."""
    with _buffer_lock:
        if _buffer is None:
            return []
        return list(_buffer[marker:])


# -- the span context managers ----------------------------------------------


class _NoOpSpan:
    """Shared do-nothing span: what :func:`span` returns while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def add(self, key: str, value: float) -> None:
        pass


_NOOP = _NoOpSpan()


class _Span:
    """One live span; records itself into the buffer on exit."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_token", "_start")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        parent = _current.get()
        self.span_id = next(_ids)
        self.parent_id = parent.span_id if parent is not None else None
        self._token = _current.set(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        duration = time.perf_counter() - self._start
        _current.reset(self._token)
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_seconds=self._start,
            duration_seconds=duration,
            thread=threading.current_thread().name,
            attrs=self.attrs,
        )
        with _buffer_lock:
            # Spans open across a disable are dropped rather than resurrect
            # the buffer: a capture's scope is decided by the capturer.
            if _buffer is not None:
                _buffer.append(record)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)

    def add(self, key: str, value: float) -> None:
        """Accumulate a numeric attribute (missing keys start at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + value


def span(name: str, **attrs: Any):
    """Open a traced region: ``with span("engine.solve", graph=g.name):``.

    Disabled tracing returns a shared no-op object — the fast path the
    instrumented hot code relies on.  Attribute values should be JSON-safe
    scalars (they ride into checkpoint metadata and trace files verbatim).
    """
    if _buffer is None:
        return _NOOP
    return _Span(name, attrs)


def current_span():
    """The innermost open span of this context (no-op object when none/disabled)."""
    if _buffer is None:
        return _NOOP
    live = _current.get()
    return live if live is not None else _NOOP


def accumulate(key: str, value: float) -> None:
    """Add *value* onto attribute *key* of the current open span.

    The per-round instrumentation primitive: hot loops call this instead of
    opening a span per iteration.  No-op when tracing is disabled or no span
    is open.
    """
    if _buffer is None:
        return
    live = _current.get()
    if live is not None:
        live.add(key, value)


# -- capture ------------------------------------------------------------------


class Trace:
    """The spans recorded by one :func:`capture` block, with summaries."""

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []

    def __len__(self) -> int:
        return len(self.spans)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate (see :func:`summarize_spans`)."""
        return summarize_spans(self.spans)


@contextlib.contextmanager
def capture() -> Iterator[Trace]:
    """Collect spans for the duration of the block into a :class:`Trace`.

    Nests: an inner capture inside an already-enabled trace only *observes*
    (its spans stay in the outer buffer too); the outermost capture owns the
    enable/disable transition.  The yielded trace's ``spans`` list is filled
    at block exit.
    """
    trace = Trace()
    was_enabled = tracing_enabled()
    if not was_enabled:
        enable_tracing()
    marker = mark()
    try:
        yield trace
    finally:
        trace.spans = spans_since(marker)
        if not was_enabled:
            disable_tracing()


@contextlib.contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable collection (the bench overhead scenario's
    "untraced" leg runs under an outer capture and must truly not record)."""
    global _buffer
    with _buffer_lock:
        held, _buffer = _buffer, None
    try:
        yield
    finally:
        with _buffer_lock:
            if held is not None:
                _buffer = held if _buffer is None else _buffer


# -- aggregation --------------------------------------------------------------


def summarize_spans(spans: List[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Fold spans into a JSON-safe per-name aggregate.

    Returns ``{name: {"count", "total_seconds", "self_seconds"}}`` where
    ``total_seconds`` is inclusive wall time and ``self_seconds`` is
    exclusive (inclusive minus the direct children's inclusive time) — the
    number that says where the wall-clock floor actually is.  This is the
    "per-phase timing detail block" format shared by :class:`RunReport`
    metadata, shard checkpoints, and bench record details.
    """
    child_seconds: Dict[int, float] = {}
    for record in spans:
        if record.parent_id is not None:
            child_seconds[record.parent_id] = (
                child_seconds.get(record.parent_id, 0.0)
                + record.duration_seconds
            )
    summary: Dict[str, Dict[str, float]] = {}
    for record in spans:
        row = summary.setdefault(
            record.name,
            {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0},
        )
        row["count"] += 1
        row["total_seconds"] += record.duration_seconds
        row["self_seconds"] += max(
            0.0, record.duration_seconds - child_seconds.get(record.span_id, 0.0)
        )
    for row in summary.values():
        row["total_seconds"] = float(row["total_seconds"])
        row["self_seconds"] = float(row["self_seconds"])
    return summary


def merge_summaries(
    summaries: List[Dict[str, Dict[str, float]]]
) -> Dict[str, Dict[str, float]]:
    """Sum per-phase summaries (the ``repro merge`` per-shard timing fold)."""
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        for name, row in summary.items():
            out = merged.setdefault(
                name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0}
            )
            out["count"] += int(row.get("count", 0))
            out["total_seconds"] += float(row.get("total_seconds", 0.0))
            out["self_seconds"] += float(row.get("self_seconds", 0.0))
    return merged
