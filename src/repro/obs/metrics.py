"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` owns a set of named metrics behind a single
re-entrant lock, so a multi-metric update (serve's batch completion bumps
six counters that must agree with each other) can be made atomic by holding
``registry.lock`` around the increments, and :meth:`MetricsRegistry.snapshot`
reads every value under that same lock — the coherent-read guarantee the
serve ``/stats`` race fix is built on.

Naming convention (rendered verbatim by the Prometheus exposition in
:mod:`repro.obs.exposition`): ``repro_<subsystem>_<noun>[_<unit>]`` with the
``_total`` suffix on counters — e.g. ``repro_serve_admitted_total``,
``repro_serve_queue_depth``, ``repro_serve_request_latency_seconds``.

Gauges may be *callback-backed* (:meth:`Gauge.set_function`): the callable
is evaluated at collection time, **outside** the registry lock, so callbacks
are free to take their own locks (serve's queue-depth gauge) without any
lock-ordering entanglement with writers.

:func:`nearest_rank_percentile` is the service's latency percentile,
extracted verbatim so ``/stats`` values are bit-for-bit what the hand-rolled
``SolverService._percentile`` produced.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "nearest_rank_percentile",
]

LabelPairs = Tuple[Tuple[str, str], ...]


def nearest_rank_percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over *values*; ``0.0`` for an empty window.

    Numerically identical to the historical ``SolverService._percentile``:
    sort, then index ``round(fraction * (n - 1))`` clamped to the last
    element — a single sample is every percentile of itself.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))
    return float(ordered[index])


def _label_key(labels: Dict[str, str]) -> LabelPairs:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared plumbing: name, help text, and the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        self.name = name
        self.help_text = help_text
        self._lock = lock


class Counter(_Metric):
    """Monotonic count, optionally split by labels.

    ``inc(**labels)`` with no labels maintains one unlabeled series;
    with labels, one series per distinct label set (serve's
    ``rejected_total{reason=...}``).
    """

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelPairs, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        """Every (labels, value) pair, for exposition and snapshots."""
        with self._lock:
            return [(dict(key), value) for key, value in self._values.items()]

    def as_dict(self, label: str) -> Dict[str, float]:
        """Collapse single-label series to ``{label_value: count}`` (the
        shape of serve's ``/stats`` ``rejected`` field)."""
        out: Dict[str, float] = {}
        with self._lock:
            for key, value in self._values.items():
                pairs = dict(key)
                if label in pairs:
                    out[pairs[label]] = value
        return out


class Gauge(_Metric):
    """Point-in-time value: set directly, or backed by a callback.

    Callback series (:meth:`set_function`) are evaluated at
    :meth:`collect` time and shadow any static value under the same
    labels.  Callbacks run without the registry lock held.
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.RLock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelPairs, float] = {}
        self._functions: Dict[LabelPairs, Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        with self._lock:
            self._functions[_label_key(labels)] = fn

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            fn = self._functions.get(key)
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._values.get(key, 0.0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        with self._lock:
            static = dict(self._values)
            functions = dict(self._functions)
        for key, fn in functions.items():
            static[key] = float(fn())  # outside the lock, by design
        return [(dict(key), value) for key, value in static.items()]


class Histogram(_Metric):
    """Fixed-bucket histogram with an optional bounded percentile window.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics, +Inf
    implicit); ``sum``/``count`` are lifetime totals.  When *window* is
    given, the most recent *window* observations are additionally kept in a
    deque for nearest-rank percentiles — serve's latency p50/p95 are
    windowed (matching the old ``deque(maxlen=latency_window)``) while the
    exposition's ``_bucket``/``_sum``/``_count`` stay lifetime-accurate.
    """

    kind = "histogram"

    DEFAULT_BUCKETS = (
        0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
        1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    )

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.RLock,
        buckets: Optional[Sequence[float]] = None,
        window: Optional[int] = None,
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(sorted(buckets if buckets is not None else self.DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._window: Optional[deque] = (
            deque(maxlen=window) if window is not None else None
        )

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            placed = False
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    placed = True
                    break
            if not placed:
                self._bucket_counts[-1] += 1
            self._sum += value
            self._count += 1
            if self._window is not None:
                self._window.append(value)

    @property
    def count(self) -> int:
        """Lifetime observation count."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def window_values(self) -> List[float]:
        """The retained window, oldest first (empty when unwindowed)."""
        with self._lock:
            return list(self._window) if self._window is not None else []

    def window_count(self) -> int:
        with self._lock:
            return len(self._window) if self._window is not None else 0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained window."""
        return nearest_rank_percentile(self.window_values(), fraction)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        with self._lock:
            counts = list(self._bucket_counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


class MetricsRegistry:
    """A named set of metrics behind one re-entrant lock.

    ``registry.lock`` is public on purpose: writers hold it around
    multi-metric updates that must be observed together, and
    :meth:`snapshot` reads under it, which is what makes cross-metric
    invariants (serve: ``queue_depth <= admitted``) race-free.  Lock
    ordering rule for callers that also own their own locks: take *your*
    lock first, the registry lock second, never the reverse (gauge
    callbacks run unlocked, so they are exempt).
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._metrics: "Dict[str, _Metric]" = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self.lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the counter *name* (idempotent per registry)."""
        return self._register(Counter(name, help_text, self.lock))

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge(name, help_text, self.lock))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        window: Optional[int] = None,
    ) -> Histogram:
        return self._register(
            Histogram(name, help_text, self.lock, buckets=buckets, window=window)
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self.lock:
            return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """Registered metrics in registration order (exposition input)."""
        with self.lock:
            return list(self._metrics.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe coherent view of every metric, read under one lock.

        Gauge callbacks are re-evaluated afterwards (unlocked), so a
        snapshot is coherent across all *stored* values.
        """
        with self.lock:
            metrics = list(self._metrics.values())
            out: Dict[str, Any] = {}
            for metric in metrics:
                if isinstance(metric, Counter):
                    out[metric.name] = {
                        "type": "counter",
                        "series": [
                            {"labels": labels, "value": value}
                            for labels, value in metric.series()
                        ],
                    }
                elif isinstance(metric, Histogram):
                    out[metric.name] = {
                        "type": "histogram",
                        "count": metric.count,
                        "sum": metric.sum,
                        "buckets": [
                            {"le": le, "count": count}
                            for le, count in metric.cumulative_buckets()
                        ],
                        "window_count": metric.window_count(),
                        "p50": metric.percentile(0.50),
                        "p95": metric.percentile(0.95),
                    }
        for metric in metrics:  # gauges last, callbacks outside the lock
            if isinstance(metric, Gauge):
                out[metric.name] = {
                    "type": "gauge",
                    "series": [
                        {"labels": labels, "value": value}
                        for labels, value in metric.series()
                    ],
                }
        return out


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (services may own private ones)."""
    return _default_registry
