"""Trace renderings for ``repro profile``: Chrome trace JSON + ASCII tables.

:func:`chrome_trace` converts a list of :class:`SpanRecord` into the Chrome
trace-event format (``{"traceEvents": [...]}`` of ``"X"`` complete events,
microsecond timestamps) — load the file in Perfetto / ``chrome://tracing``
for a zoomable flame view.  :func:`render_profile` is the terminal twin: a
per-phase table plus an ``ascii_bar_chart`` of the top-N span names by
inclusive and exclusive (self) time.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.obs.trace import SpanRecord, summarize_spans

__all__ = ["chrome_trace", "render_profile", "profile_summary"]


def chrome_trace(spans: List[SpanRecord]) -> Dict[str, Any]:
    """Spans as a Chrome trace-event JSON object (Perfetto-loadable).

    Timestamps are microseconds relative to the earliest span start; each
    distinct thread gets its own ``tid`` row, named via a thread-metadata
    event.  Span attrs ride along under ``args``.
    """
    events: List[Dict[str, Any]] = []
    pid = os.getpid()
    if spans:
        origin = min(record.start_seconds for record in spans)
        tids: Dict[str, int] = {}
        for record in spans:
            tid = tids.setdefault(record.thread, len(tids) + 1)
            events.append({
                "name": record.name,
                "ph": "X",
                "ts": (record.start_seconds - origin) * 1e6,
                "dur": record.duration_seconds * 1e6,
                "pid": pid,
                "tid": tid,
                "args": dict(record.attrs),
            })
        for thread_name, tid in tids.items():
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_name},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def profile_summary(spans: List[SpanRecord]) -> Dict[str, Any]:
    """JSON summary payload: per-phase aggregate plus trace-wide totals."""
    summary = summarize_spans(spans)
    return {
        "schema": "repro-profile/v1",
        "n_spans": len(spans),
        "phases": summary,
        "wall_seconds": (
            max(r.start_seconds + r.duration_seconds for r in spans)
            - min(r.start_seconds for r in spans)
        ) if spans else 0.0,
    }


def render_profile(
    spans: List[SpanRecord], top: int = 10, width: int = 46,
    title: Optional[str] = None,
) -> str:
    """ASCII per-phase breakdown of a trace.

    A table of every span name (count, inclusive, exclusive seconds) sorted
    by exclusive time, followed by bar charts of the top-*top* names by
    inclusive and by exclusive time.
    """
    # Imported here, not at module top: repro.obs must stay stdlib-only at
    # import time so hot modules (cuts, engine) can import the tracer
    # without dragging the plotting stack (and a cycle) in.
    from repro.plotting.ascii import ascii_bar_chart

    if not spans:
        return "(no spans recorded — is the traced path instrumented?)"
    summary = summarize_spans(spans)
    rows = sorted(
        summary.items(), key=lambda item: item[1]["self_seconds"], reverse=True
    )
    name_width = max(len(name) for name, _ in rows)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'span':<{name_width}}  {'count':>7}  {'incl s':>10}  {'self s':>10}"
    )
    lines.append("-" * (name_width + 33))
    for name, row in rows:
        lines.append(
            f"{name:<{name_width}}  {row['count']:>7d}  "
            f"{row['total_seconds']:>10.4f}  {row['self_seconds']:>10.4f}"
        )
    top_incl = sorted(
        summary.items(), key=lambda item: item[1]["total_seconds"], reverse=True
    )[:top]
    top_self = rows[:top]
    lines.append("")
    lines.append(ascii_bar_chart(
        [name for name, _ in top_incl],
        [row["total_seconds"] for _, row in top_incl],
        width=width,
        title=f"top {len(top_incl)} spans by inclusive seconds",
        value_format="{:.4f}",
    ))
    lines.append("")
    lines.append(ascii_bar_chart(
        [name for name, _ in top_self],
        [row["self_seconds"] for _, row in top_self],
        width=width,
        title=f"top {len(top_self)} spans by exclusive (self) seconds",
        value_format="{:.4f}",
    ))
    return "\n".join(lines)
