"""Summary statistics used in the experiment reports.

The paper's Figure 3 error bars are the standard error of the mean over 10
independently generated graphs per (n, p) class; these helpers compute that,
plus bootstrap confidence intervals for the cases where a normal
approximation is dubious (small sample counts, skewed distributions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "mean_and_sem",
    "bootstrap_confidence_interval",
    "SummaryStatistics",
    "summarize_samples",
]


def mean_and_sem(samples: np.ndarray) -> tuple[float, float]:
    """Mean and standard error of the mean of a 1-D sample array.

    The SEM of a single sample is reported as 0.0 (not NaN) so downstream
    tables remain printable.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValidationError("samples must be a non-empty 1-D array")
    mean = float(samples.mean())
    if samples.size == 1:
        return mean, 0.0
    sem = float(samples.std(ddof=1) / np.sqrt(samples.size))
    return mean, sem


def bootstrap_confidence_interval(
    samples: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: RandomState = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValidationError("samples must be a non-empty 1-D array")
    if not (0.0 < confidence < 1.0):
        raise ValidationError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValidationError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = as_generator(seed)
    indices = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    resampled_means = samples[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled_means, [alpha, 1.0 - alpha])
    return float(low), float(high)


@dataclass(frozen=True)
class SummaryStatistics:
    """Five-number-style summary of a sample of cut weights or ratios."""

    n: int
    mean: float
    sem: float
    std: float
    minimum: float
    maximum: float
    median: float


def summarize_samples(samples: np.ndarray) -> SummaryStatistics:
    """Compute a :class:`SummaryStatistics` for a non-empty 1-D sample array."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size == 0:
        raise ValidationError("samples must be a non-empty 1-D array")
    mean, sem = mean_and_sem(samples)
    return SummaryStatistics(
        n=int(samples.size),
        mean=mean,
        sem=sem,
        std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
        minimum=float(samples.min()),
        maximum=float(samples.max()),
        median=float(np.median(samples)),
    )
