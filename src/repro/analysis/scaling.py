"""Hardware-throughput projection (paper Discussion §VI).

The paper argues that although the LIF-Trevisan circuit needs many more
samples than the software spectral algorithm, hardware LIF neurons with ~1 ns
time constants would generate *millions* of samples in the ~10 ms a software
simple-spectral computation takes, and *billions* in the time needed to solve
and sample the Goemans-Williamson SDP.  This module encodes that projection
as an explicit, testable model so the claim can be regenerated as a table
(benchmark E5 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ValidationError, check_positive

__all__ = [
    "HardwareModel",
    "samples_in_time",
    "software_equivalent_samples",
    "throughput_report",
]


@dataclass(frozen=True)
class HardwareModel:
    """Timing model of a hardware implementation of the circuits.

    Attributes
    ----------
    lif_time_constant_s:
        Hardware LIF time constant (the paper cites ~1 ns devices).
    steps_per_sample:
        LIF time steps between consecutive cut read-outs (the simulator's
        ``sample_interval``).
    """

    lif_time_constant_s: float = 1e-9
    steps_per_sample: int = 10

    def __post_init__(self) -> None:
        check_positive(self.lif_time_constant_s, "lif_time_constant_s")
        if self.steps_per_sample < 1:
            raise ValidationError(
                f"steps_per_sample must be >= 1, got {self.steps_per_sample}"
            )

    @property
    def seconds_per_sample(self) -> float:
        """Wall-clock seconds per hardware cut sample."""
        return self.lif_time_constant_s * self.steps_per_sample

    @property
    def samples_per_second(self) -> float:
        """Hardware sampling throughput."""
        return 1.0 / self.seconds_per_sample


def samples_in_time(model: HardwareModel, seconds: float) -> int:
    """Number of hardware samples generated in *seconds* of wall-clock time."""
    if seconds < 0:
        raise ValidationError(f"seconds must be non-negative, got {seconds}")
    return int(model.samples_per_second * seconds)


def software_equivalent_samples(
    model: HardwareModel,
    software_seconds: float,
) -> int:
    """Hardware samples obtainable in the runtime of a software computation.

    With the paper's reference numbers (1 ns steps, ~10 ms simple-spectral
    solve) this is on the order of millions of samples, matching the
    Discussion's claim.
    """
    return samples_in_time(model, software_seconds)


def throughput_report(
    model: HardwareModel,
    software_spectral_seconds: float = 1e-2,
    software_sdp_seconds: float = 10.0,
) -> dict:
    """Tabulate the paper's hardware-vs-software throughput comparison.

    Parameters
    ----------
    software_spectral_seconds:
        Runtime of a software simple-spectral computation (paper: ~10 ms).
    software_sdp_seconds:
        Runtime of solving + sampling the GW SDP (paper: orders of magnitude
        longer; default 10 s).
    """
    check_positive(software_spectral_seconds, "software_spectral_seconds")
    check_positive(software_sdp_seconds, "software_sdp_seconds")
    return {
        "hardware_samples_per_second": model.samples_per_second,
        "samples_during_spectral_solve": software_equivalent_samples(
            model, software_spectral_seconds
        ),
        "samples_during_sdp_solve": software_equivalent_samples(
            model, software_sdp_seconds
        ),
        "lif_time_constant_s": model.lif_time_constant_s,
        "steps_per_sample": model.steps_per_sample,
    }
