"""Convergence-curve utilities for the sample-count figures (Figs. 3-4).

The figures plot, for each method, the best cut found so far (relative to the
software solver's best cut) as a function of the number of samples drawn,
evaluated at logarithmically spaced sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "running_best",
    "relative_to_reference",
    "sample_points_log_spaced",
    "convergence_curve",
    "ConvergenceCurve",
]


def running_best(weights: np.ndarray) -> np.ndarray:
    """Running maximum of a 1-D weight trajectory."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValidationError(f"weights must be 1-D, got shape {weights.shape}")
    if weights.size == 0:
        return np.zeros(0)
    return np.maximum.accumulate(weights)


def relative_to_reference(values: np.ndarray, reference: float) -> np.ndarray:
    """Divide *values* by a positive *reference* (the solver's best cut)."""
    if not np.isfinite(reference) or reference <= 0:
        raise ValidationError(f"reference must be a positive finite number, got {reference}")
    return np.asarray(values, dtype=np.float64) / reference


def sample_points_log_spaced(n_samples: int, n_points: int = 20) -> np.ndarray:
    """Logarithmically spaced, strictly increasing sample counts in ``[1, n_samples]``."""
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    points = np.unique(
        np.round(np.logspace(0, np.log10(n_samples), num=min(n_points, n_samples))).astype(np.int64)
    )
    points = points[(points >= 1) & (points <= n_samples)]
    if points.size == 0 or points[-1] != n_samples:
        points = np.unique(np.append(points, n_samples))
    return points


@dataclass(frozen=True)
class ConvergenceCurve:
    """Best-so-far cut weight (optionally normalised) at given sample counts."""

    sample_counts: np.ndarray
    values: np.ndarray
    label: str = ""
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        counts = np.asarray(self.sample_counts, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if counts.shape != values.shape or counts.ndim != 1:
            raise ValidationError("sample_counts and values must be 1-D arrays of equal length")
        object.__setattr__(self, "sample_counts", counts)
        object.__setattr__(self, "values", values)

    @property
    def final_value(self) -> float:
        """Value at the largest sample count (0 for empty curves)."""
        return float(self.values[-1]) if self.values.size else 0.0


def convergence_curve(
    weights: np.ndarray,
    sample_counts: np.ndarray | None = None,
    reference: float | None = None,
    label: str = "",
) -> ConvergenceCurve:
    """Build a :class:`ConvergenceCurve` from a per-sample weight trajectory.

    Parameters
    ----------
    weights:
        Per-sample cut weights in sampling order.
    sample_counts:
        1-based sample counts at which to evaluate the running best; defaults
        to ~20 log-spaced points.
    reference:
        If given, values are divided by this reference (e.g. the solver's best
        cut) to produce the paper's "cut weight relative to solver" axis.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValidationError("weights must be a non-empty 1-D array")
    best = running_best(weights)
    if sample_counts is None:
        sample_counts = sample_points_log_spaced(weights.size)
    sample_counts = np.asarray(sample_counts, dtype=np.int64)
    if np.any(sample_counts < 1) or np.any(sample_counts > weights.size):
        raise ValidationError(
            f"sample_counts must lie in [1, {weights.size}]"
        )
    values = best[sample_counts - 1]
    if reference is not None:
        values = relative_to_reference(values, reference)
    return ConvergenceCurve(sample_counts=sample_counts, values=values, label=label)
