"""Approximation-ratio helpers."""

from __future__ import annotations

from repro.utils.validation import ValidationError

__all__ = ["approximation_ratio", "relative_cut_weight"]


def approximation_ratio(achieved: float, optimum: float) -> float:
    """Ratio ``achieved / optimum`` with defensive handling of the zero-optimum case.

    A graph with no edges has optimum 0; by convention any algorithm achieves
    ratio 1.0 there.
    """
    if achieved < 0 or optimum < 0:
        raise ValidationError("cut weights must be non-negative")
    if optimum == 0.0:
        return 1.0
    return float(achieved / optimum)


def relative_cut_weight(achieved: float, solver_best: float) -> float:
    """The paper's figure metric: achieved cut weight relative to the software solver.

    Unlike :func:`approximation_ratio` the result may exceed 1.0 — the
    circuits occasionally beat the solver's best sampled cut (Table I shows
    LIF-GW exceeding the solver on ia-infect-dublin and ca-netscience).
    """
    if achieved < 0 or solver_best < 0:
        raise ValidationError("cut weights must be non-negative")
    if solver_best == 0.0:
        return 1.0
    return float(achieved / solver_best)
