"""Analysis utilities: statistics, convergence curves, approximation ratios, scaling model."""

from repro.analysis.statistics import (
    mean_and_sem,
    bootstrap_confidence_interval,
    summarize_samples,
    SummaryStatistics,
)
from repro.analysis.convergence import (
    running_best,
    relative_to_reference,
    sample_points_log_spaced,
    convergence_curve,
    ConvergenceCurve,
)
from repro.analysis.ratios import approximation_ratio, relative_cut_weight
from repro.analysis.scaling import (
    HardwareModel,
    samples_in_time,
    software_equivalent_samples,
    throughput_report,
)

__all__ = [
    "mean_and_sem",
    "bootstrap_confidence_interval",
    "summarize_samples",
    "SummaryStatistics",
    "running_best",
    "relative_to_reference",
    "sample_points_log_spaced",
    "convergence_curve",
    "ConvergenceCurve",
    "approximation_ratio",
    "relative_cut_weight",
    "HardwareModel",
    "samples_in_time",
    "software_equivalent_samples",
    "throughput_report",
]
