"""Logging configuration for the library.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so that downstream applications decide
where log records go.  ``configure_logging`` is an opt-in convenience for the
example scripts and benchmark harness.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_LIBRARY_LOGGER_NAME = "repro"

logging.getLogger(_LIBRARY_LOGGER_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the library's namespace.

    Parameters
    ----------
    name:
        Dotted suffix appended to ``"repro"``.  ``get_logger("sdp")`` returns
        the ``repro.sdp`` logger; ``None`` returns the library root logger.
    """
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    if name.startswith(_LIBRARY_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler to the library logger (for scripts/benchmarks).

    Calling this twice replaces the previously attached handler rather than
    duplicating output.
    """
    logger = get_logger()
    for handler in list(logger.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
