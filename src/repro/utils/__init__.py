"""Shared utilities: RNG stream management, validation, timing, logging.

These helpers are deliberately dependency-light so every other subpackage can
import them without creating circular imports.
"""

from repro.utils.rng import (
    RandomState,
    SeedStream,
    as_generator,
    spawn_generators,
)
from repro.utils.validation import (
    ValidationError,
    check_probability,
    check_positive,
    check_non_negative,
    check_square_matrix,
    check_symmetric,
    check_vector_length,
    check_spin_vector,
)
from repro.utils.timers import Timer, timed
from repro.utils.logging import get_logger

__all__ = [
    "RandomState",
    "SeedStream",
    "as_generator",
    "spawn_generators",
    "ValidationError",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_square_matrix",
    "check_symmetric",
    "check_vector_length",
    "check_spin_vector",
    "Timer",
    "timed",
    "get_logger",
]
