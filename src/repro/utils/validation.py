"""Validation helpers used at public API boundaries.

All validation raises :class:`ValidationError` (a ``ValueError`` subclass) so
callers can distinguish argument errors from internal numerical failures.
The checks are written to be cheap: they never copy large arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "ValidationError",
    "ValidatedConfig",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_count",
    "check_square_matrix",
    "check_symmetric",
    "check_vector_length",
    "check_spin_vector",
    "check_binary_vector",
    "check_finite",
]


class ValidationError(ValueError):
    """Raised when a public API argument fails validation."""


class ValidatedConfig:
    """Mixin for frozen config dataclasses: one validation hook + ``to_dict``.

    Subclasses override :meth:`validate` (raising :class:`ValidationError`)
    instead of each writing its own ``__post_init__``; the mixin wires the
    hook into dataclass construction so invalid configurations can never be
    instantiated.  :meth:`to_dict` renders the configuration as a JSON-safe
    dictionary — nested config dataclasses, numpy scalars/arrays and tuples
    included — which the workload layer embeds in every
    :class:`repro.workloads.RunReport` metadata header.
    """

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check field invariants; subclasses raise :class:`ValidationError`."""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dictionary of this configuration's fields."""
        if not dataclasses.is_dataclass(self):
            raise ValidationError(
                f"{type(self).__name__}.to_dict() requires a dataclass subclass"
            )
        return {
            f.name: _config_jsonable(getattr(self, f.name))
            for f in dataclasses.fields(self)
        }


def _config_jsonable(value: Any) -> Any:
    """Best-effort JSON-safe rendering of a config field value."""
    if isinstance(value, ValidatedConfig):
        return value.to_dict()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _config_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _config_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_config_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Callables / exotic objects: record something diagnosable rather than
    # failing the whole header.
    return repr(value)


def check_probability(value: float, name: str = "p") -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is finite and strictly positive."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a positive finite number, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate that *value* is finite and non-negative."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(f"{name} must be a non-negative finite number, got {value}")
    return value


def check_count(value: int, name: str = "count", minimum: int = 1) -> int:
    """Validate that *value* is an integer >= *minimum* (default 1)."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Validate that every entry of *array* is finite."""
    array = np.asarray(array)
    if array.size and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must contain only finite values")
    return array


def check_square_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that *matrix* is a 2-D square array and return it as ndarray."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(
            f"{name} must be a square 2-D array, got shape {matrix.shape}"
        )
    return matrix


def check_symmetric(
    matrix: np.ndarray, name: str = "matrix", atol: float = 1e-8
) -> np.ndarray:
    """Validate that *matrix* is square and symmetric within *atol*."""
    matrix = check_square_matrix(matrix, name)
    if matrix.size and not np.allclose(matrix, matrix.T, atol=atol):
        raise ValidationError(f"{name} must be symmetric (|A - A.T| <= {atol})")
    return matrix


def check_vector_length(
    vector: np.ndarray, length: Optional[int] = None, name: str = "vector"
) -> np.ndarray:
    """Validate that *vector* is 1-D (and optionally of the given length)."""
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {vector.shape}")
    if length is not None and vector.shape[0] != length:
        raise ValidationError(
            f"{name} must have length {length}, got {vector.shape[0]}"
        )
    return vector


def check_spin_vector(
    vector: np.ndarray, length: Optional[int] = None, name: str = "assignment"
) -> np.ndarray:
    """Validate a ±1 spin assignment vector and return it as an int8 array."""
    vector = check_vector_length(vector, length, name)
    values = np.unique(vector)
    if not np.all(np.isin(values, (-1, 1))):
        raise ValidationError(f"{name} must contain only -1/+1 entries, got {values}")
    return vector.astype(np.int8, copy=False)


def check_binary_vector(
    vector: np.ndarray, length: Optional[int] = None, name: str = "bits"
) -> np.ndarray:
    """Validate a 0/1 vector and return it as an int8 array."""
    vector = check_vector_length(vector, length, name)
    values = np.unique(vector)
    if not np.all(np.isin(values, (0, 1))):
        raise ValidationError(f"{name} must contain only 0/1 entries, got {values}")
    return vector.astype(np.int8, copy=False)
