"""Random-number-generator management.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  The helpers here normalise that
input and provide reproducible *stream spawning* so that parallel workers and
independent circuit runs never share a stream.

The design follows the NumPy ``SeedSequence`` model recommended for parallel
stochastic simulation: a single root seed deterministically spawns an
arbitrary number of statistically independent child streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

import numpy as np

#: Anything acceptable as a source of randomness throughout the library.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Normalise *seed* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, an existing ``Generator``
        (returned unchanged), or a ``SeedSequence``.

    Returns
    -------
    numpy.random.Generator
        A PCG64-backed generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, Generator, or SeedSequence; got {type(seed)!r}"
    )


def spawn_generators(seed: RandomState, n: int) -> list[np.random.Generator]:
    """Spawn *n* statistically independent generators from a single seed.

    Independence is guaranteed by ``SeedSequence.spawn`` rather than by
    jumping or re-seeding, so the result is reproducible regardless of how
    many streams are requested or in which order they are consumed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a child SeedSequence from the generator's own bit stream so
        # the spawn remains reproducible given the generator state.
        ss = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


@dataclass
class SeedStream:
    """A reproducible, forkable stream of seeds for parallel work items.

    ``SeedStream`` wraps a root :class:`numpy.random.SeedSequence` and hands
    out child sequences on demand.  Work item *i* always receives the same
    child regardless of execution order, which makes parallel sweeps
    deterministic under any scheduling.

    Examples
    --------
    >>> stream = SeedStream(1234)
    >>> g0 = stream.generator_for(0)
    >>> g1 = stream.generator_for(1)
    >>> g0 is g1
    False
    """

    root_seed: Optional[int] = None
    _root: np.random.SeedSequence = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._root = np.random.SeedSequence(self.root_seed)

    def child(self, index: int) -> np.random.SeedSequence:
        """Return the child ``SeedSequence`` for work item *index*."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        # spawn_key indexing keeps children independent and order-free.
        return np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=(index,)
        )

    def generator_for(self, index: int) -> np.random.Generator:
        """Return a generator for work item *index*."""
        return np.random.default_rng(self.child(index))

    def generators(self, n: int) -> list[np.random.Generator]:
        """Return generators for work items ``0 .. n-1``."""
        return [self.generator_for(i) for i in range(n)]

    def iter_generators(self) -> Iterator[np.random.Generator]:
        """Yield an unbounded sequence of independent generators."""
        index = 0
        while True:
            yield self.generator_for(index)
            index += 1


def paired_seed(seed: Optional[int], *key: int) -> np.random.SeedSequence:
    """The library's paired seeding convention: ``SeedSequence(seed, spawn_key=key)``.

    Workload execution paths derive all randomness for unit ``key`` (e.g.
    ``(graph_index, trial_index)``) from this sequence, so engine-batched,
    process-parallel, and sequential execution of the same spec consume
    identical random numbers — comparisons stay paired regardless of how the
    work is scheduled.  ``seed=None`` draws fresh root entropy (the run is
    then reproducible only from the returned sequence's ``entropy``).
    """
    return np.random.SeedSequence(
        entropy=seed, spawn_key=tuple(int(k) for k in key)
    )


def grid_cell_key(n_vertices: int, probability: float) -> tuple:
    """Integer spawn-key prefix identifying one (n, p) Erdős–Rényi cell.

    Probabilities are keyed at micro-resolution so every distinct paper grid
    value maps to a distinct key while staying a valid ``spawn_key`` entry.
    Shared by the Figure 3 runner and generator graph sources so "same
    (n, p, j) cell → same graph" holds across all workload paths.
    """
    return (int(n_vertices), int(round(float(probability) * 1_000_000)))


def random_bits(rng: np.random.Generator, shape: Union[int, Sequence[int]]) -> np.ndarray:
    """Draw an array of fair random bits (0/1, int8) of the given shape."""
    return rng.integers(0, 2, size=shape, dtype=np.int8)
