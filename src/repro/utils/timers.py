"""Lightweight timing utilities for benchmarks and experiment bookkeeping."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A ``Timer`` can be started/stopped repeatedly; ``elapsed`` accumulates the
    total time across all completed intervals.  It is also usable as a context
    manager.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    n_intervals: int = 0
    _start: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("Timer is already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer is not running")
        interval = time.perf_counter() - self._start
        self.elapsed += interval
        self.n_intervals += 1
        self._start = None
        return interval

    def reset(self) -> None:
        self.elapsed = 0.0
        self.n_intervals = 0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def mean_interval(self) -> float:
        """Mean duration of completed intervals (0.0 if none completed)."""
        if self.n_intervals == 0:
            return 0.0
        return self.elapsed / self.n_intervals

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(store: Dict[str, float], key: str) -> Iterator[None]:
    """Context manager that records elapsed seconds into ``store[key]``.

    Repeated uses of the same key accumulate, which is convenient when timing
    a phase that occurs inside a loop.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        store[key] = store.get(key, 0.0) + (time.perf_counter() - start)


def time_call(fn: Callable[[], object]) -> tuple[object, float]:
    """Call *fn* with no arguments and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
