"""Parallel tempering (replica exchange) for the Ising/MAXCUT baseline.

Hardware Ising annealers improve solution quality with parallel tempering
(e.g. Gyoten et al. 2018, cited by the paper); this software implementation
runs R replicas at a ladder of temperatures, sweeps each with Metropolis
single-spin-flip moves, and proposes neighbour swaps after every sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.ising.annealing import SimulatedAnnealer
from repro.ising.model import cut_weight_from_spins, ising_energy, maxcut_to_ising
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["TemperingResult", "parallel_tempering"]


@dataclass(frozen=True)
class TemperingResult:
    """Outcome of a parallel-tempering run on a MAXCUT-derived Ising model."""

    best_cut: Cut
    best_energy: float
    temperatures: np.ndarray
    swap_acceptance_rate: float
    energy_history: List[float] = field(default_factory=list)


def parallel_tempering(
    graph: Graph,
    n_replicas: int = 8,
    t_min: float = 0.05,
    t_max: float = 2.0,
    n_sweeps: int = 200,
    seed: RandomState = None,
) -> TemperingResult:
    """Run replica-exchange Metropolis sampling and return the best cut found.

    Parameters
    ----------
    graph:
        MAXCUT instance.
    n_replicas:
        Number of replicas (temperatures), geometrically spaced in
        ``[t_min, t_max]``.
    n_sweeps:
        Metropolis sweeps per replica (swap proposals happen after every sweep).
    """
    if n_replicas < 2:
        raise ValidationError(f"n_replicas must be >= 2, got {n_replicas}")
    check_positive(t_min, "t_min")
    check_positive(t_max, "t_max")
    if t_min > t_max:
        raise ValidationError("t_min must not exceed t_max")
    if n_sweeps < 1:
        raise ValidationError("n_sweeps must be >= 1")
    if graph.n_vertices == 0:
        empty = Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
        return TemperingResult(empty, 0.0, np.zeros(n_replicas), 0.0, [])

    rng = as_generator(seed)
    model = maxcut_to_ising(graph)
    temperatures = np.geomspace(t_min, t_max, n_replicas)

    # Each replica keeps its own spins, local fields and energy.
    annealer = SimulatedAnnealer(model, seed=rng)
    spins = [
        (2 * rng.integers(0, 2, size=model.n_spins) - 1).astype(np.int8)
        for _ in range(n_replicas)
    ]
    locals_ = [model.local_fields(s) for s in spins]
    energies = [ising_energy(model, s) for s in spins]

    best_index = int(np.argmin(energies))
    best_energy = energies[best_index]
    best_spins = spins[best_index].copy()
    energy_history: List[float] = []
    swap_attempts = 0
    swap_accepts = 0

    for _sweep in range(n_sweeps):
        for r in range(n_replicas):
            energies[r] += annealer._sweep(spins[r], locals_[r], float(temperatures[r]))
            if energies[r] < best_energy - 1e-12:
                best_energy = energies[r]
                best_spins = spins[r].copy()
        # Neighbour swap proposals (alternate even/odd pairs for ergodicity).
        start = _sweep % 2
        for r in range(start, n_replicas - 1, 2):
            swap_attempts += 1
            beta_low, beta_high = 1.0 / temperatures[r], 1.0 / temperatures[r + 1]
            delta = (beta_low - beta_high) * (energies[r + 1] - energies[r])
            if delta >= 0 or rng.random() < np.exp(delta):
                swap_accepts += 1
                spins[r], spins[r + 1] = spins[r + 1], spins[r]
                locals_[r], locals_[r + 1] = locals_[r + 1], locals_[r]
                energies[r], energies[r + 1] = energies[r + 1], energies[r]
        energy_history.append(float(best_energy))

    best_energy = ising_energy(model, best_spins)
    best_cut = Cut(
        assignment=best_spins.astype(np.int8),
        weight=float(cut_weight_from_spins(model, best_spins)),
        graph_name=graph.name,
    )
    acceptance = swap_accepts / swap_attempts if swap_attempts else 0.0
    return TemperingResult(
        best_cut=best_cut,
        best_energy=float(best_energy),
        temperatures=temperatures,
        swap_acceptance_rate=float(acceptance),
        energy_history=energy_history,
    )
