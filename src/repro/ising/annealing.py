"""Single-spin-flip simulated annealing for Ising/MAXCUT.

This is the classical software counterpart of the hardware Ising annealers the
paper's introduction cites as the alternative route to neuromorphic MAXCUT.
The implementation keeps the per-flip cost O(degree) by maintaining the local
fields incrementally, and exposes both the raw Ising interface and a
MAXCUT-flavoured convenience wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.ising.model import IsingModel, cut_weight_from_spins, ising_energy, maxcut_to_ising
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_positive

__all__ = ["AnnealingSchedule", "SimulatedAnnealer", "simulated_annealing_maxcut"]


@dataclass(frozen=True)
class AnnealingSchedule:
    """Geometric cooling schedule.

    Temperature at sweep ``t`` is ``t_start * (t_end / t_start)^(t / (n_sweeps - 1))``.
    """

    t_start: float = 2.0
    t_end: float = 0.01
    n_sweeps: int = 200

    def __post_init__(self) -> None:
        check_positive(self.t_start, "t_start")
        check_positive(self.t_end, "t_end")
        if self.t_end > self.t_start:
            raise ValidationError("t_end must not exceed t_start")
        if self.n_sweeps < 1:
            raise ValidationError("n_sweeps must be >= 1")

    def temperatures(self) -> np.ndarray:
        """The full temperature ladder, one value per sweep."""
        if self.n_sweeps == 1:
            return np.array([self.t_start])
        ratio = self.t_end / self.t_start
        exponents = np.linspace(0.0, 1.0, self.n_sweeps)
        return self.t_start * ratio**exponents


class SimulatedAnnealer:
    """Metropolis single-spin-flip annealer for an :class:`IsingModel`."""

    def __init__(self, model: IsingModel, seed: RandomState = None) -> None:
        self.model = model
        self._rng = as_generator(seed)

    def _sweep(self, spins: np.ndarray, local: np.ndarray, temperature: float) -> float:
        """One Metropolis sweep (n proposed flips); returns the energy change."""
        model = self.model
        n = model.n_spins
        order = self._rng.permutation(n)
        uniforms = self._rng.random(n)
        adjacency = self._adjacency_lists
        total_delta = 0.0
        for k in range(n):
            i = order[k]
            # Energy change of flipping spin i: delta = -2 * v_i * local_i.
            delta = -2.0 * spins[i] * local[i]
            if delta <= 0.0 or uniforms[k] < np.exp(-delta / temperature):
                spins[i] = -spins[i]
                total_delta += delta
                # Update local fields of neighbours.
                for j, coupling in adjacency[i]:
                    local[j] += 2.0 * coupling * spins[i]
        return total_delta

    @property
    def _adjacency_lists(self):
        if not hasattr(self, "_adj_cache"):
            adj: list[list[tuple[int, float]]] = [[] for _ in range(self.model.n_spins)]
            for (u, v), coupling in zip(self.model.edges, self.model.couplings):
                adj[int(u)].append((int(v), float(coupling)))
                adj[int(v)].append((int(u), float(coupling)))
            self._adj_cache = adj
        return self._adj_cache

    def anneal(
        self,
        schedule: AnnealingSchedule | None = None,
        initial_spins: np.ndarray | None = None,
    ) -> tuple[np.ndarray, float]:
        """Run the annealing schedule and return ``(best_spins, best_energy)``."""
        schedule = schedule or AnnealingSchedule()
        model = self.model
        if initial_spins is None:
            spins = (2 * self._rng.integers(0, 2, size=model.n_spins) - 1).astype(np.int8)
        else:
            spins = np.asarray(initial_spins, dtype=np.int8).copy()
            if spins.shape != (model.n_spins,):
                raise ValidationError(
                    f"initial_spins must have shape ({model.n_spins},), got {spins.shape}"
                )
        local = model.local_fields(spins) if model.n_spins else np.zeros(0)
        energy = ising_energy(model, spins) if model.n_spins else 0.0
        best_energy = energy
        best_spins = spins.copy()
        for temperature in schedule.temperatures():
            energy += self._sweep(spins, local, float(temperature))
            if energy < best_energy - 1e-12:
                best_energy = energy
                best_spins = spins.copy()
        # Re-evaluate exactly to avoid accumulated floating-point drift.
        best_energy = ising_energy(model, best_spins)
        return best_spins, best_energy


def simulated_annealing_maxcut(
    graph: Graph,
    schedule: AnnealingSchedule | None = None,
    n_restarts: int = 1,
    seed: RandomState = None,
) -> Cut:
    """Approximate MAXCUT by simulated annealing on the equivalent Ising model."""
    if n_restarts < 1:
        raise ValidationError(f"n_restarts must be >= 1, got {n_restarts}")
    if graph.n_vertices == 0:
        return Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
    model = maxcut_to_ising(graph)
    rng = as_generator(seed)
    best_cut: Cut | None = None
    for _ in range(n_restarts):
        annealer = SimulatedAnnealer(model, seed=rng)
        spins, _energy = annealer.anneal(schedule)
        weight = cut_weight_from_spins(model, spins)
        candidate = Cut(assignment=spins.astype(np.int8), weight=float(weight), graph_name=graph.name)
        if best_cut is None or candidate.weight > best_cut.weight:
            best_cut = candidate
    assert best_cut is not None
    return best_cut
