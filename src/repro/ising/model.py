"""Ising-model representation of MAXCUT.

The MAXCUT objective ``cut(v) = (1/2) sum_ij A_ij (1 - v_i v_j)`` maps to the
Ising Hamiltonian ``H(v) = sum_{i<j} J_ij v_i v_j`` with couplings
``J_ij = A_ij / 2`` (no external fields):

    cut(v) = W/2 - H(v),        W = total edge weight.

Minimising the Ising energy is therefore equivalent to maximising the cut,
which is exactly the transformation hardware Ising annealers require.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.validation import ValidationError, check_spin_vector

__all__ = ["IsingModel", "maxcut_to_ising", "ising_energy", "cut_weight_from_spins"]


@dataclass(frozen=True)
class IsingModel:
    """Pairwise Ising model ``H(v) = sum_{edges} J_e v_u v_v + sum_i h_i v_i``.

    Attributes
    ----------
    n_spins:
        Number of spins.
    edges:
        ``(m, 2)`` array of coupled spin pairs.
    couplings:
        ``(m,)`` coupling constants ``J_e`` aligned with *edges*.
    fields:
        ``(n,)`` external fields ``h_i`` (all zero for MAXCUT).
    offset:
        Constant added when converting the energy back to a cut weight.
    """

    n_spins: int
    edges: np.ndarray
    couplings: np.ndarray
    fields: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.int64)
        couplings = np.asarray(self.couplings, dtype=np.float64)
        fields = np.asarray(self.fields, dtype=np.float64)
        if edges.ndim != 2 or (edges.size and edges.shape[1] != 2):
            raise ValidationError(f"edges must have shape (m, 2), got {edges.shape}")
        if couplings.shape[0] != edges.shape[0]:
            raise ValidationError("couplings must align with edges")
        if fields.shape != (self.n_spins,):
            raise ValidationError(f"fields must have shape ({self.n_spins},)")
        if edges.size and (edges.min() < 0 or edges.max() >= self.n_spins):
            raise ValidationError("edge endpoints out of range")
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "couplings", couplings)
        object.__setattr__(self, "fields", fields)

    @property
    def n_couplings(self) -> int:
        return int(self.edges.shape[0])

    def coupling_matrix(self) -> np.ndarray:
        """Dense symmetric coupling matrix J (zero diagonal)."""
        J = np.zeros((self.n_spins, self.n_spins))
        if self.n_couplings:
            u, v = self.edges[:, 0], self.edges[:, 1]
            J[u, v] = self.couplings
            J[v, u] = self.couplings
        return J

    def energy(self, spins: np.ndarray) -> float:
        """Ising energy of a ±1 spin configuration."""
        return ising_energy(self, spins)

    def local_fields(self, spins: np.ndarray) -> np.ndarray:
        """Effective field ``sum_j J_ij v_j + h_i`` seen by each spin.

        The energy change of flipping spin i is ``-2 v_i * local_field_i``
        with the sign convention used here, which the annealer exploits for
        O(1) per-flip updates.
        """
        spins = check_spin_vector(spins, self.n_spins).astype(np.float64)
        field = self.fields.copy()
        if self.n_couplings:
            u, v = self.edges[:, 0], self.edges[:, 1]
            np.add.at(field, u, self.couplings * spins[v])
            np.add.at(field, v, self.couplings * spins[u])
        return field


def maxcut_to_ising(graph: Graph) -> IsingModel:
    """Convert a MAXCUT instance to the equivalent Ising model.

    ``cut(v) = offset - H(v)`` with ``offset = W/2`` and ``J_ij = A_ij / 2``.
    The produced model always has zero fields — the precondition
    :func:`cut_weight_from_spins` enforces on the way back.
    """
    return IsingModel(
        n_spins=graph.n_vertices,
        edges=graph.edges,
        couplings=graph.edge_weights / 2.0,
        fields=np.zeros(graph.n_vertices),
        offset=graph.total_weight / 2.0,
    )


def ising_energy(model: IsingModel, spins: np.ndarray) -> float:
    """Energy ``sum_e J_e v_u v_v + sum_i h_i v_i`` of a spin configuration."""
    spins = check_spin_vector(spins, model.n_spins).astype(np.float64)
    energy = float(model.fields @ spins)
    if model.n_couplings:
        u, v = model.edges[:, 0], model.edges[:, 1]
        energy += float(np.dot(model.couplings, spins[u] * spins[v]))
    return energy


def cut_weight_from_spins(model: IsingModel, spins: np.ndarray) -> float:
    """Cut weight corresponding to a spin configuration of a MAXCUT-derived model.

    Only valid for models produced by :func:`maxcut_to_ising`, whose fields
    are identically zero: the identity ``cut(v) = offset - H(v)`` folds the
    *whole* pair interaction into the offset, and a nonzero field would make
    the round-trip silently drop the field term from the reported weight.
    Field-carrying instances must go through the problem compiler
    (:func:`repro.problems.compile_to_maxcut`, whose ancilla-spin gadget
    handles fields exactly) instead.

    Raises
    ------
    ValidationError
        If *model* carries any nonzero external field.
    """
    if model.fields.size and np.any(model.fields != 0.0):
        raise ValidationError(
            "cut_weight_from_spins is only valid for MAXCUT-derived models "
            "with zero external fields; compile field-carrying Ising "
            "instances through repro.problems.compile_to_maxcut instead"
        )
    return model.offset - ising_energy(model, spins)
