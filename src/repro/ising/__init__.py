"""Ising-model formulation of MAXCUT and annealing baselines.

The paper's introduction contrasts its circuits with hardware Ising-model
annealers (CMOS annealing chips, GPU Ising solvers), which require converting
the problem to an Ising Hamiltonian with pairwise interactions.  This package
provides that conversion and two classical annealing baselines so the
comparison can be made in software:

* :func:`maxcut_to_ising` / :func:`ising_to_maxcut_energy` — the standard
  mapping (spin products on edges; the cut weight is an affine function of the
  Ising energy),
* :class:`SimulatedAnnealer` — single-spin-flip Metropolis annealing with a
  geometric temperature schedule,
* :func:`parallel_tempering` — replica exchange over a temperature ladder,
  the technique the Ising-hardware literature uses to improve solution quality.
"""

from repro.ising.model import IsingModel, maxcut_to_ising, ising_energy, cut_weight_from_spins
from repro.ising.annealing import (
    AnnealingSchedule,
    SimulatedAnnealer,
    simulated_annealing_maxcut,
)
from repro.ising.tempering import parallel_tempering, TemperingResult

__all__ = [
    "IsingModel",
    "maxcut_to_ising",
    "ising_energy",
    "cut_weight_from_spins",
    "AnnealingSchedule",
    "SimulatedAnnealer",
    "simulated_annealing_maxcut",
    "parallel_tempering",
    "TemperingResult",
]
