"""Software Trevisan 'Simple Spectral' MAXCUT algorithm (paper §II.B).

The algorithm computes the eigenvector of the minimum eigenvalue of
``I + D^{-1/2} A D^{-1/2}`` (equivalently, the minimum eigenvector of the
normalized adjacency) and thresholds it at zero:

    v_i = -1  if u_i <= 0,   v_i = +1  if u_i > 0.

Also provided is the *sweep cut* refinement used by the full Trevisan
algorithm: instead of thresholding at zero, every threshold defined by the
sorted eigenvector entries is tried and the best resulting cut kept.  The
sweep cut never does worse than the simple threshold and is used as an
extension/ablation in the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.cuts.cut import Cut, cut_weights_batch
from repro.graphs.graph import Graph
from repro.spectral.lanczos import lanczos_extreme_eigenpair
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = [
    "minimum_eigenvector",
    "trevisan_simple_spectral",
    "trevisan_sweep_cut",
    "TrevisanResult",
]


def minimum_eigenvector(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> tuple[float, np.ndarray]:
    """Minimum eigenpair of the normalized adjacency ``D^{-1/2} A D^{-1/2}``.

    Parameters
    ----------
    method:
        ``"dense"`` (numpy.linalg.eigh), ``"lanczos"`` (own implementation),
        ``"arpack"`` (scipy eigsh), or ``"auto"`` (dense below 300 vertices,
        ARPACK above).
    """
    n = graph.n_vertices
    if n == 0:
        return 0.0, np.zeros(0)
    if method == "auto":
        method = "dense" if n < 300 else "arpack"
    if method == "dense":
        N = graph.normalized_adjacency()
        eigenvalues, eigenvectors = np.linalg.eigh(N)
        return float(eigenvalues[0]), eigenvectors[:, 0]
    if method == "lanczos":
        N = graph.to_csr(normalized=True)
        return lanczos_extreme_eigenpair(N, which="smallest", seed=seed)
    if method == "arpack":
        N = graph.to_csr(normalized=True).asfptype()
        if n <= 3 or graph.n_edges == 0:
            dense = graph.normalized_adjacency()
            eigenvalues, eigenvectors = np.linalg.eigh(dense)
            return float(eigenvalues[0]), eigenvectors[:, 0]
        eigenvalues, eigenvectors = spla.eigsh(N, k=1, which="SA")
        return float(eigenvalues[0]), eigenvectors[:, 0]
    raise ValidationError(
        f"method must be 'auto', 'dense', 'lanczos', or 'arpack'; got {method!r}"
    )


@dataclass(frozen=True)
class TrevisanResult:
    """Output of the software Trevisan spectral algorithm."""

    cut: Cut
    eigenvalue: float
    eigenvector: np.ndarray
    method: str


def trevisan_simple_spectral(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> TrevisanResult:
    """Run the simple-spectral Trevisan algorithm: min eigenvector, sign threshold."""
    eigenvalue, eigenvector = minimum_eigenvector(graph, method=method, seed=seed)
    if graph.n_vertices == 0:
        cut = Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
        return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
    assignment = np.where(eigenvector > 0.0, 1, -1).astype(np.int8)
    cut = Cut.from_assignment(graph, assignment)
    return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)


def trevisan_sweep_cut(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> TrevisanResult:
    """Sweep-cut refinement: try every threshold along the sorted eigenvector.

    For eigenvector ``u`` sorted ascending, threshold ``t`` places vertices
    with ``u_i <= t`` on one side.  All ``n`` candidate thresholds are
    evaluated in one batched cut-weight computation.
    """
    eigenvalue, eigenvector = minimum_eigenvector(graph, method=method, seed=seed)
    n = graph.n_vertices
    if n == 0:
        cut = Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
        return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
    order = np.argsort(eigenvector)
    # Candidate k: the k smallest-entry vertices get -1, the rest +1 (k = 1..n-1),
    # plus the plain sign threshold for completeness.
    assignments = np.ones((n, n), dtype=np.int8)
    for k in range(1, n):
        assignments[k - 1, order[:k]] = -1
    assignments[n - 1] = np.where(eigenvector > 0.0, 1, -1)
    weights = cut_weights_batch(graph, assignments)
    best = int(np.argmax(weights))
    cut = Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
    return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
