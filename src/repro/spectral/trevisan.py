"""Software Trevisan 'Simple Spectral' MAXCUT algorithm (paper §II.B).

The algorithm computes the eigenvector of the minimum eigenvalue of
``I + D^{-1/2} A D^{-1/2}`` (equivalently, the minimum eigenvector of the
normalized adjacency) and thresholds it at zero:

    v_i = -1  if u_i <= 0,   v_i = +1  if u_i > 0.

Also provided is the *sweep cut* refinement used by the full Trevisan
algorithm: instead of thresholding at zero, every threshold defined by the
sorted eigenvector entries is tried and the best resulting cut kept.  The
sweep cut never does worse than the simple threshold and is used as an
extension/ablation in the experiments.

Large graphs: the eigensolver is memory-aware.  ``method="auto"`` stays on
the dense path only below :data:`DENSE_AUTO_MAX_VERTICES` vertices, runs
ARPACK on the sparse CSR up to :data:`SKETCH_AUTO_MIN_VERTICES`, and above
that switches to the randomized sketch of
:func:`repro.scale.sketch.sketched_minimum_eigenpair`.  Explicitly asking
for ``method="dense"`` beyond :data:`DENSE_METHOD_MAX_VERTICES` raises a
:class:`~repro.utils.validation.ValidationError` instead of silently
allocating an ``(n, n)`` matrix.  The sweep itself also goes sparse above
:data:`_BATCH_SWEEP_MAX_VERTICES` via
:func:`repro.scale.sketch.sweep_cut_from_scores`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.cuts.cut import Cut, cut_weights_batch
from repro.graphs.graph import Graph
from repro.spectral.lanczos import lanczos_extreme_eigenpair
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = [
    "minimum_eigenvector",
    "trevisan_simple_spectral",
    "trevisan_sweep_cut",
    "TrevisanResult",
    "DENSE_AUTO_MAX_VERTICES",
    "DENSE_METHOD_MAX_VERTICES",
    "SKETCH_AUTO_MIN_VERTICES",
]

#: ``method="auto"`` uses the dense eigensolver below this many vertices.
DENSE_AUTO_MAX_VERTICES = 300

#: Explicit ``method="dense"`` refuses graphs larger than this — a dense
#: ``(n, n)`` float64 matrix at this size is already ~128 MiB.
DENSE_METHOD_MAX_VERTICES = 4096

#: ``method="auto"`` switches from ARPACK to the randomized sketch above
#: this many vertices (ARPACK's repeated re-orthogonalisation passes start
#: to dominate; the sketch needs a fixed, small number of sparse mat-mats).
SKETCH_AUTO_MIN_VERTICES = 32768

#: The batched dense sweep materialises an ``(n, n)`` assignment matrix;
#: above this size the ``O(m + n log n)`` scatter-add sweep is used instead.
_BATCH_SWEEP_MAX_VERTICES = 2048


def minimum_eigenvector(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> tuple[float, np.ndarray]:
    """Minimum eigenpair of the normalized adjacency ``D^{-1/2} A D^{-1/2}``.

    Parameters
    ----------
    method:
        ``"dense"`` (numpy.linalg.eigh; refuses graphs above
        :data:`DENSE_METHOD_MAX_VERTICES` vertices), ``"lanczos"`` (own
        implementation), ``"arpack"`` (scipy eigsh), ``"sketch"``
        (randomized subspace sketch,
        :func:`repro.scale.sketch.sketched_minimum_eigenpair`), or
        ``"auto"`` — dense below :data:`DENSE_AUTO_MAX_VERTICES`, ARPACK up
        to :data:`SKETCH_AUTO_MIN_VERTICES`, the sketch above that.  The
        auto policy is memory-aware: no path ever densifies a graph larger
        than :data:`DENSE_METHOD_MAX_VERTICES`.
    """
    n = graph.n_vertices
    if n == 0:
        return 0.0, np.zeros(0)
    if method == "auto":
        if n < DENSE_AUTO_MAX_VERTICES:
            method = "dense"
        elif n <= SKETCH_AUTO_MIN_VERTICES:
            method = "arpack"
        else:
            method = "sketch"
    if method == "dense":
        if n > DENSE_METHOD_MAX_VERTICES:
            raise ValidationError(
                f"method='dense' would allocate a ({n}, {n}) matrix; graphs "
                f"above {DENSE_METHOD_MAX_VERTICES} vertices must use "
                f"'arpack', 'lanczos', 'sketch', or 'auto'"
            )
        N = graph.normalized_adjacency()
        eigenvalues, eigenvectors = np.linalg.eigh(N)
        return float(eigenvalues[0]), eigenvectors[:, 0]
    if method == "lanczos":
        N = graph.to_csr(normalized=True)
        return lanczos_extreme_eigenpair(N, which="smallest", seed=seed)
    if method == "arpack":
        if graph.n_edges == 0:
            # The normalized adjacency is the zero matrix: eigenvalue 0 with
            # the first coordinate vector, matching the dense convention —
            # without densifying (the old fallback allocated (n, n) zeros).
            vector = np.zeros(n, dtype=np.float64)
            vector[0] = 1.0
            return 0.0, vector
        if n <= 3:
            dense = graph.normalized_adjacency()
            eigenvalues, eigenvectors = np.linalg.eigh(dense)
            return float(eigenvalues[0]), eigenvectors[:, 0]
        N = graph.to_csr(normalized=True).asfptype()
        eigenvalues, eigenvectors = spla.eigsh(N, k=1, which="SA")
        return float(eigenvalues[0]), eigenvectors[:, 0]
    if method == "sketch":
        from repro.scale.sketch import sketched_minimum_eigenpair

        return sketched_minimum_eigenpair(graph, seed=seed)
    raise ValidationError(
        f"method must be 'auto', 'dense', 'lanczos', 'arpack', or 'sketch'; "
        f"got {method!r}"
    )


@dataclass(frozen=True)
class TrevisanResult:
    """Output of the software Trevisan spectral algorithm."""

    cut: Cut
    eigenvalue: float
    eigenvector: np.ndarray
    method: str


def trevisan_simple_spectral(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> TrevisanResult:
    """Run the simple-spectral Trevisan algorithm: min eigenvector, sign threshold."""
    eigenvalue, eigenvector = minimum_eigenvector(graph, method=method, seed=seed)
    if graph.n_vertices == 0:
        cut = Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
        return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
    assignment = np.where(eigenvector > 0.0, 1, -1).astype(np.int8)
    cut = Cut.from_assignment(graph, assignment)
    return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)


def trevisan_sweep_cut(
    graph: Graph, method: str = "auto", seed: RandomState = None
) -> TrevisanResult:
    """Sweep-cut refinement: try every threshold along the sorted eigenvector.

    For eigenvector ``u`` sorted ascending, threshold ``t`` places vertices
    with ``u_i <= t`` on one side.  Below :data:`_BATCH_SWEEP_MAX_VERTICES`
    all candidates are evaluated in one batched cut-weight computation;
    above, the equivalent ``O(m + n log n)`` scatter-add sweep of
    :func:`repro.scale.sketch.sweep_cut_from_scores` is used, so the whole
    pipeline stays free of ``(n, n)`` allocations on large graphs.
    """
    eigenvalue, eigenvector = minimum_eigenvector(graph, method=method, seed=seed)
    n = graph.n_vertices
    if n == 0:
        cut = Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0, graph_name=graph.name)
        return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
    if n > _BATCH_SWEEP_MAX_VERTICES:
        from repro.scale.sketch import sweep_cut_from_scores

        cut = sweep_cut_from_scores(graph, eigenvector)
        return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
    order = np.argsort(eigenvector)
    # Candidate k: the k smallest-entry vertices get -1, the rest +1 (k = 1..n-1),
    # plus the plain sign threshold for completeness.
    assignments = np.ones((n, n), dtype=np.int8)
    for k in range(1, n):
        assignments[k - 1, order[:k]] = -1
    assignments[n - 1] = np.where(eigenvector > 0.0, 1, -1)
    weights = cut_weights_batch(graph, assignments)
    best = int(np.argmax(weights))
    cut = Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
    return TrevisanResult(cut=cut, eigenvalue=eigenvalue, eigenvector=eigenvector, method=method)
