"""Power iteration and shifted power iteration for extreme eigenvectors.

The LIF-Trevisan circuit converges to the minimum eigenvector of the membrane
covariance matrix; these classical iterative solvers provide the software
reference against which both the circuit and the Oja plasticity rule are
validated.  They operate on dense or sparse symmetric matrices through a
matrix-vector-product interface, matching the HPC guidance to prefer
sparse/iterative methods over dense eigendecompositions as n grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "rayleigh_quotient",
    "power_iteration",
    "minimum_eigenvector_shifted",
    "PowerIterationResult",
]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _as_operator(matrix: MatrixLike) -> tuple[Callable[[np.ndarray], np.ndarray], int]:
    if sp.issparse(matrix):
        n = matrix.shape[0]
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"matrix must be square, got shape {matrix.shape}")
        return (lambda v: matrix @ v), n
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValidationError(f"matrix must be square, got shape {dense.shape}")
    return (lambda v: dense @ v), dense.shape[0]


def rayleigh_quotient(matrix: MatrixLike, vector: np.ndarray) -> float:
    """Rayleigh quotient ``v^T M v / v^T v`` (raises on zero vector)."""
    matvec, n = _as_operator(matrix)
    vector = np.asarray(vector, dtype=np.float64)
    if vector.shape != (n,):
        raise ValidationError(f"vector must have shape ({n},), got {vector.shape}")
    denom = float(vector @ vector)
    if denom <= 0.0:
        raise ValidationError("vector must be non-zero")
    return float(vector @ matvec(vector)) / denom


@dataclass(frozen=True)
class PowerIterationResult:
    """Eigenpair estimate from an iterative solver."""

    eigenvalue: float
    eigenvector: np.ndarray
    n_iterations: int
    converged: bool
    residual: float


def power_iteration(
    matrix: MatrixLike,
    max_iterations: int = 5000,
    tolerance: float = 1e-10,
    seed: RandomState = None,
) -> PowerIterationResult:
    """Estimate the dominant (largest-magnitude) eigenpair of a symmetric matrix."""
    matvec, n = _as_operator(matrix)
    if n == 0:
        return PowerIterationResult(0.0, np.zeros(0), 0, True, 0.0)
    rng = as_generator(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    eigenvalue = 0.0
    for iteration in range(1, max_iterations + 1):
        w = matvec(v)
        norm = np.linalg.norm(w)
        if norm <= 1e-300:
            # Matrix annihilates the iterate (e.g. zero matrix): eigenvalue 0.
            return PowerIterationResult(0.0, v, iteration, True, 0.0)
        w /= norm
        eigenvalue = rayleigh_quotient(matrix, w)
        residual = float(np.linalg.norm(matvec(w) - eigenvalue * w))
        if residual <= tolerance * max(1.0, abs(eigenvalue)):
            return PowerIterationResult(eigenvalue, w, iteration, True, residual)
        v = w
    residual = float(np.linalg.norm(matvec(v) - eigenvalue * v))
    return PowerIterationResult(eigenvalue, v, max_iterations, False, residual)


def minimum_eigenvector_shifted(
    matrix: MatrixLike,
    max_iterations: int = 5000,
    tolerance: float = 1e-10,
    seed: RandomState = None,
) -> PowerIterationResult:
    """Estimate the minimum eigenpair of a symmetric matrix by spectral shifting.

    Runs power iteration on ``sigma * I - M`` where ``sigma`` upper-bounds the
    spectrum (Gershgorin), so the dominant eigenvector of the shifted matrix
    is the minimum eigenvector of ``M``.
    """
    matvec, n = _as_operator(matrix)
    if n == 0:
        return PowerIterationResult(0.0, np.zeros(0), 0, True, 0.0)
    # Gershgorin bound on the largest eigenvalue.
    if sp.issparse(matrix):
        dense_abs_rowsum = np.asarray(abs(matrix).sum(axis=1)).ravel()
    else:
        dense_abs_rowsum = np.abs(np.asarray(matrix, dtype=np.float64)).sum(axis=1)
    sigma = float(dense_abs_rowsum.max()) if n else 0.0
    sigma = max(sigma, 1.0)

    shifted_matvec = lambda v: sigma * v - matvec(v)  # noqa: E731

    rng = as_generator(seed)
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    for iteration in range(1, max_iterations + 1):
        w = shifted_matvec(v)
        norm = np.linalg.norm(w)
        if norm <= 1e-300:
            break
        w /= norm
        eigenvalue = rayleigh_quotient(matrix, w)
        residual = float(np.linalg.norm(matvec(w) - eigenvalue * w))
        if residual <= tolerance * max(1.0, abs(eigenvalue)):
            return PowerIterationResult(eigenvalue, w, iteration, True, residual)
        v = w
    eigenvalue = rayleigh_quotient(matrix, v)
    residual = float(np.linalg.norm(matvec(v) - eigenvalue * v))
    return PowerIterationResult(eigenvalue, v, max_iterations, False, residual)
