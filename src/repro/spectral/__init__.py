"""Spectral substrate: eigen-solvers and the Trevisan simple-spectral algorithm."""

from repro.spectral.power_iteration import (
    power_iteration,
    rayleigh_quotient,
    minimum_eigenvector_shifted,
)
from repro.spectral.lanczos import lanczos_tridiagonalize, lanczos_extreme_eigenpair
from repro.spectral.trevisan import (
    trevisan_simple_spectral,
    trevisan_sweep_cut,
    minimum_eigenvector,
)

__all__ = [
    "power_iteration",
    "rayleigh_quotient",
    "minimum_eigenvector_shifted",
    "lanczos_tridiagonalize",
    "lanczos_extreme_eigenpair",
    "trevisan_simple_spectral",
    "trevisan_sweep_cut",
    "minimum_eigenvector",
]
