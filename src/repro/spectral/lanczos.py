"""Lanczos tridiagonalisation for extreme eigenpairs of symmetric matrices.

A from-scratch Lanczos implementation with full reorthogonalisation.  For the
graph sizes in the paper (n <= 700) full reorthogonalisation is cheap and
removes the classical loss-of-orthogonality failure mode, so the extreme
eigenvalues it returns are reliable enough to serve as reference values in
tests (cross-checked against ``numpy.linalg.eigh``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = ["lanczos_tridiagonalize", "lanczos_extreme_eigenpair", "LanczosResult"]

MatrixLike = Union[np.ndarray, sp.spmatrix]


def _matvec(matrix: MatrixLike):
    if sp.issparse(matrix):
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"matrix must be square, got {matrix.shape}")
        return (lambda v: matrix @ v), matrix.shape[0]
    dense = np.asarray(matrix, dtype=np.float64)
    if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
        raise ValidationError(f"matrix must be square, got {dense.shape}")
    return (lambda v: dense @ v), dense.shape[0]


@dataclass(frozen=True)
class LanczosResult:
    """Krylov basis and tridiagonal coefficients from a Lanczos run."""

    alphas: np.ndarray      # diagonal of T, shape (k,)
    betas: np.ndarray       # off-diagonal of T, shape (k-1,)
    basis: np.ndarray       # orthonormal Krylov basis, shape (n, k)

    @property
    def tridiagonal(self) -> np.ndarray:
        """Dense tridiagonal matrix T."""
        k = self.alphas.shape[0]
        T = np.zeros((k, k))
        np.fill_diagonal(T, self.alphas)
        if k > 1:
            idx = np.arange(k - 1)
            T[idx, idx + 1] = self.betas
            T[idx + 1, idx] = self.betas
        return T


def lanczos_tridiagonalize(
    matrix: MatrixLike,
    n_steps: int | None = None,
    seed: RandomState = None,
    breakdown_tolerance: float = 1e-12,
) -> LanczosResult:
    """Run *n_steps* of Lanczos with full reorthogonalisation.

    Parameters
    ----------
    matrix:
        Symmetric matrix (dense or sparse).
    n_steps:
        Krylov dimension; defaults to ``min(n, 64)``.
    seed:
        Randomness for the starting vector.
    breakdown_tolerance:
        Stop early when the residual norm (beta) falls below this value —
        the Krylov space is then invariant and the eigenvalues are exact.
    """
    matvec, n = _matvec(matrix)
    if n == 0:
        return LanczosResult(np.zeros(0), np.zeros(0), np.zeros((0, 0)))
    if n_steps is None:
        n_steps = min(n, 64)
    n_steps = min(max(1, int(n_steps)), n)

    rng = as_generator(seed)
    q = rng.standard_normal(n)
    q /= np.linalg.norm(q)

    basis = np.zeros((n, n_steps))
    alphas = np.zeros(n_steps)
    betas = np.zeros(max(0, n_steps - 1))

    basis[:, 0] = q
    w = matvec(q)
    alphas[0] = float(q @ w)
    w = w - alphas[0] * q
    steps_done = 1

    for j in range(1, n_steps):
        beta = float(np.linalg.norm(w))
        if beta <= breakdown_tolerance:
            break
        q_next = w / beta
        # Full reorthogonalisation against all previous basis vectors.
        q_next -= basis[:, :j] @ (basis[:, :j].T @ q_next)
        norm = np.linalg.norm(q_next)
        if norm <= breakdown_tolerance:
            break
        q_next /= norm
        basis[:, j] = q_next
        betas[j - 1] = beta
        w = matvec(q_next)
        alphas[j] = float(q_next @ w)
        w = w - alphas[j] * q_next - beta * basis[:, j - 1]
        steps_done = j + 1

    return LanczosResult(
        alphas=alphas[:steps_done],
        betas=betas[: max(0, steps_done - 1)],
        basis=basis[:, :steps_done],
    )


def lanczos_extreme_eigenpair(
    matrix: MatrixLike,
    which: str = "smallest",
    n_steps: int | None = None,
    seed: RandomState = None,
) -> tuple[float, np.ndarray]:
    """Estimate the smallest or largest eigenpair via Lanczos + dense solve of T.

    Parameters
    ----------
    which:
        ``"smallest"`` or ``"largest"``.
    """
    if which not in ("smallest", "largest"):
        raise ValidationError(f"which must be 'smallest' or 'largest', got {which!r}")
    result = lanczos_tridiagonalize(matrix, n_steps=n_steps, seed=seed)
    if result.alphas.size == 0:
        return 0.0, np.zeros(0)
    T = result.tridiagonal
    eigenvalues, eigenvectors = np.linalg.eigh(T)
    idx = 0 if which == "smallest" else -1
    ritz_value = float(eigenvalues[idx])
    ritz_vector = result.basis @ eigenvectors[:, idx]
    norm = np.linalg.norm(ritz_vector)
    if norm > 0:
        ritz_vector /= norm
    return ritz_value, ritz_vector
