"""Work-partitioning utilities for sweeps and batched sampling."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["chunk_indices", "partition_work", "balance_by_cost"]


def chunk_indices(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into contiguous ``(start, stop)`` chunks.

    The final chunk may be shorter.  ``chunk_indices(10, 4)`` returns
    ``[(0, 4), (4, 8), (8, 10)]``.
    """
    if n_items < 0:
        raise ValidationError(f"n_items must be non-negative, got {n_items}")
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [(start, min(start + chunk_size, n_items)) for start in range(0, n_items, chunk_size)]


def partition_work(n_items: int, n_partitions: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into *n_partitions* nearly equal contiguous ranges.

    Sizes differ by at most one; empty partitions are returned as zero-length
    ranges so the output always has exactly *n_partitions* entries.
    """
    if n_items < 0:
        raise ValidationError(f"n_items must be non-negative, got {n_items}")
    if n_partitions < 1:
        raise ValidationError(f"n_partitions must be >= 1, got {n_partitions}")
    base = n_items // n_partitions
    remainder = n_items % n_partitions
    partitions: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_partitions):
        size = base + (1 if i < remainder else 0)
        partitions.append((start, start + size))
        start += size
    return partitions


def balance_by_cost(costs: Sequence[float], n_bins: int) -> List[List[int]]:
    """Assign items to *n_bins* bins balancing total cost (greedy LPT heuristic).

    Items are sorted by decreasing cost and each is placed into the currently
    lightest bin — the classical longest-processing-time rule, within 4/3 of
    the optimal makespan.  Returns the item indices per bin.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 1:
        raise ValidationError("costs must be 1-D")
    if np.any(costs < 0):
        raise ValidationError("costs must be non-negative")
    if n_bins < 1:
        raise ValidationError(f"n_bins must be >= 1, got {n_bins}")
    bins: List[List[int]] = [[] for _ in range(n_bins)]
    loads = np.zeros(n_bins)
    # Stable sort keeps deterministic assignment among equal-cost items.
    order = np.argsort(-costs, kind="stable")
    for item in order:
        lightest = int(np.argmin(loads))
        bins[lightest].append(int(item))
        loads[lightest] += costs[item]
    return bins
