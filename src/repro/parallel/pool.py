"""Process-pool map with serial fallback and deterministic ordering."""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["ParallelConfig", "parallel_map"]

_logger = get_logger("parallel")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Execution configuration for :func:`parallel_map`.

    Attributes
    ----------
    n_workers:
        Number of worker processes.  ``0`` or ``1`` selects serial in-process
        execution; ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Number of items handed to a worker at a time (process mode only).
        ``None`` (the default) auto-computes ``ceil(len(items) / (4 *
        n_workers))`` per call, so many small items travel in few IPC
        round-trips while each worker still gets ~4 chunks for load
        balancing.  A fixed ``chunk_size=1`` previously made pickling/IPC
        overhead dominate exactly the many-small-trials sweeps the pool
        exists for.
    serial_threshold:
        Work lists shorter than this run serially even when workers are
        requested, because process start-up would dominate.
    """

    n_workers: Optional[int] = None
    chunk_size: Optional[int] = None
    serial_threshold: int = 2

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 0:
            raise ValidationError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.serial_threshold < 0:
            raise ValidationError(
                f"serial_threshold must be >= 0, got {self.serial_threshold}"
            )

    def resolved_workers(self) -> int:
        """Number of worker processes after resolving the ``None`` default."""
        if self.n_workers is None:
            return max(1, os.cpu_count() or 1)
        return self.n_workers

    def resolved_chunk_size(self, n_items: int) -> int:
        """Chunk size after resolving the ``None`` (auto) default for *n_items*."""
        if self.chunk_size is not None:
            return self.chunk_size
        workers = max(1, self.resolved_workers())
        return max(1, math.ceil(n_items / (4 * workers)))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    config: Optional[ParallelConfig] = None,
) -> List[R]:
    """Apply *fn* to every item, in order, optionally across processes.

    Results are always returned in input order regardless of completion
    order.  *fn* and the items must be picklable when process execution is
    selected; the serial path has no such requirement.

    Notes
    -----
    Exceptions raised by *fn* propagate to the caller (the first failing item
    in input order for the serial path; whichever the executor surfaces first
    for the process path).
    """
    config = config or ParallelConfig()
    items = list(items)
    n_workers = config.resolved_workers()

    if n_workers <= 1 or len(items) < config.serial_threshold:
        return [fn(item) for item in items]

    chunk_size = config.resolved_chunk_size(len(items))
    _logger.debug(
        "parallel_map: %d items across %d workers (chunk_size=%d)",
        len(items), n_workers, chunk_size,
    )
    with ProcessPoolExecutor(max_workers=n_workers) as executor:
        results = list(executor.map(fn, items, chunksize=chunk_size))
    return results
