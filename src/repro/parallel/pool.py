"""Process-pool map with serial fallback and deterministic ordering."""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["ParallelConfig", "parallel_map"]

_logger = get_logger("parallel")

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class ParallelConfig:
    """Execution configuration for :func:`parallel_map`.

    Attributes
    ----------
    n_workers:
        Number of worker processes.  ``0`` or ``1`` selects serial in-process
        execution; ``None`` uses ``os.cpu_count()``.
    chunk_size:
        Number of items handed to a worker at a time (process mode only).
    serial_threshold:
        Work lists shorter than this run serially even when workers are
        requested, because process start-up would dominate.
    """

    n_workers: Optional[int] = None
    chunk_size: int = 1
    serial_threshold: int = 2

    def __post_init__(self) -> None:
        if self.n_workers is not None and self.n_workers < 0:
            raise ValidationError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.serial_threshold < 0:
            raise ValidationError(
                f"serial_threshold must be >= 0, got {self.serial_threshold}"
            )

    def resolved_workers(self) -> int:
        """Number of worker processes after resolving the ``None`` default."""
        if self.n_workers is None:
            return max(1, os.cpu_count() or 1)
        return self.n_workers


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    config: Optional[ParallelConfig] = None,
) -> List[R]:
    """Apply *fn* to every item, in order, optionally across processes.

    Results are always returned in input order regardless of completion
    order.  *fn* and the items must be picklable when process execution is
    selected; the serial path has no such requirement.

    Notes
    -----
    Exceptions raised by *fn* propagate to the caller (the first failing item
    in input order for the serial path; whichever the executor surfaces first
    for the process path).
    """
    config = config or ParallelConfig()
    items = list(items)
    n_workers = config.resolved_workers()

    if n_workers <= 1 or len(items) < config.serial_threshold:
        return [fn(item) for item in items]

    _logger.debug("parallel_map: %d items across %d workers", len(items), n_workers)
    with ProcessPoolExecutor(max_workers=n_workers) as executor:
        results = list(executor.map(fn, items, chunksize=config.chunk_size))
    return results
