"""Parallel execution harness for experiment sweeps.

The paper's Figure 3 sweep covers 200 graphs x 4 methods; each cell is an
independent work item, so the natural parallelisation is a process pool over
cells with deterministic per-item seeds.  The harness degrades gracefully to
serial execution (useful in tests and on single-core CI machines) and keeps
the mapping deterministic regardless of the execution mode or chunk size.
"""

from repro.parallel.pool import ParallelConfig, parallel_map
from repro.parallel.partition import chunk_indices, partition_work, balance_by_cost
from repro.parallel.seeds import seeded_tasks, SeededTask

__all__ = [
    "ParallelConfig",
    "parallel_map",
    "chunk_indices",
    "partition_work",
    "balance_by_cost",
    "seeded_tasks",
    "SeededTask",
]
