"""Deterministic per-task seeding for parallel sweeps.

Each work item receives its own :class:`numpy.random.SeedSequence` child, so a
sweep produces identical results whether it runs serially, across processes,
or with a different chunk size — the property the reproducibility tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.utils.rng import SeedStream

__all__ = ["SeededTask", "seeded_tasks"]

T = TypeVar("T")


@dataclass(frozen=True)
class SeededTask(Generic[T]):
    """A work item paired with its task index and dedicated seed material.

    The seed is stored as the integer entropy of a child ``SeedSequence`` so
    the object pickles cheaply across process boundaries.  ``base_key`` is an
    optional spawn-key prefix: sweeps that are themselves one unit of a larger
    grid (e.g. one Figure 3 cell) pass the grid coordinates here, so task *i*
    receives ``SeedSequence(root, spawn_key=base_key + (i,))`` — the library's
    paired ``(graph, trial)`` convention (see
    :func:`repro.utils.rng.paired_seed`).
    """

    index: int
    payload: T
    root_seed: Optional[int]
    base_key: Tuple[int, ...] = ()

    def seed_sequence(self) -> np.random.SeedSequence:
        """Reconstruct the child ``SeedSequence`` for this task."""
        return np.random.SeedSequence(
            entropy=self.root_seed, spawn_key=self.base_key + (self.index,)
        )

    def generator(self) -> np.random.Generator:
        """A fresh generator seeded for this task."""
        return np.random.default_rng(self.seed_sequence())


def seeded_tasks(
    payloads: Sequence[T],
    root_seed: Optional[int] = None,
    base_key: Tuple[int, ...] = (),
) -> List[SeededTask[T]]:
    """Wrap *payloads* into :class:`SeededTask` items sharing a root seed.

    The construction mirrors :class:`repro.utils.rng.SeedStream`: task *i*
    always receives the child with ``spawn_key=base_key + (i,)``.
    """
    # Materialise the stream once so invalid root seeds fail fast here.
    SeedStream(root_seed)
    base_key = tuple(int(k) for k in base_key)
    return [
        SeededTask(index=i, payload=payload, root_seed=root_seed, base_key=base_key)
        for i, payload in enumerate(payloads)
    ]
