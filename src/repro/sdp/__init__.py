"""Semidefinite-programming substrate for the Goemans-Williamson algorithm.

The paper solves the MAXCUT SDP with PyManopt (a Riemannian-manifold
optimisation toolbox).  This package provides an equivalent solver written
from scratch: the Burer-Monteiro low-rank factorisation ``X = W W^T`` with
rows of ``W`` constrained to the unit sphere (the *oblique manifold*),
optimised by Riemannian gradient ascent with backtracking line search.
"""

from repro.sdp.manifold import (
    project_rows_to_sphere,
    tangent_project,
    random_oblique_point,
    retract,
)
from repro.sdp.burer_monteiro import (
    SDPResult,
    solve_maxcut_sdp,
    sdp_objective,
)
from repro.sdp.rounding import (
    hyperplane_rounding,
    gaussian_rounding,
    best_hyperplane_cut,
)
from repro.sdp.bounds import sdp_upper_bound, spectral_upper_bound, trivial_upper_bound

__all__ = [
    "project_rows_to_sphere",
    "tangent_project",
    "random_oblique_point",
    "retract",
    "SDPResult",
    "solve_maxcut_sdp",
    "sdp_objective",
    "hyperplane_rounding",
    "gaussian_rounding",
    "best_hyperplane_cut",
    "sdp_upper_bound",
    "spectral_upper_bound",
    "trivial_upper_bound",
]
