"""Rounding schemes that turn SDP vectors into ±1 cuts.

Two equivalent schemes are provided (paper §II.A):

* **Hyperplane rounding** (Goemans-Williamson): draw a random hyperplane
  through the origin and label vertices by the side of the hyperplane their
  unit vector falls on.
* **Gaussian rounding** (Bertsimas-Ye): sample correlated standard normals
  ``X = W g`` with ``g ~ N(0, I_r)`` and label vertices by ``sign(X_i)``.

The two are the same distribution over cuts; the Gaussian form is the one the
LIF-GW circuit physically implements (the membrane potentials play the role
of the correlated Gaussians), so both are exposed for cross-validation.
"""

from __future__ import annotations

import numpy as np

from repro.cuts.cut import Cut, cut_weights_batch
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = ["hyperplane_rounding", "gaussian_rounding", "best_hyperplane_cut"]


def _check_vectors(graph: Graph, vectors: np.ndarray) -> np.ndarray:
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2 or vectors.shape[0] != graph.n_vertices:
        raise ValidationError(
            f"vectors must have shape ({graph.n_vertices}, r), got {vectors.shape}"
        )
    return vectors


def hyperplane_rounding(
    graph: Graph,
    vectors: np.ndarray,
    n_samples: int = 1,
    seed: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample cuts by random-hyperplane rounding of the SDP *vectors*.

    Returns
    -------
    (assignments, weights):
        ``(k, n)`` ±1 assignments and ``(k,)`` cut weights.
    """
    vectors = _check_vectors(graph, vectors)
    if n_samples < 0:
        raise ValidationError(f"n_samples must be non-negative, got {n_samples}")
    rng = as_generator(seed)
    r = vectors.shape[1]
    normals = rng.standard_normal((n_samples, r))
    projections = normals @ vectors.T  # (k, n)
    assignments = np.where(projections >= 0.0, 1, -1).astype(np.int8)
    weights = cut_weights_batch(graph, assignments) if n_samples else np.zeros(0)
    return assignments, weights


def gaussian_rounding(
    graph: Graph,
    vectors: np.ndarray,
    n_samples: int = 1,
    seed: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample cuts by thresholding correlated Gaussians ``X = W g`` at zero.

    This is the Bertsimas-Ye formulation the LIF-GW circuit realises in
    hardware: ``Cov(X_i, X_j) = <w_i, w_j>``.
    """
    # Mathematically identical to hyperplane rounding; implemented through the
    # same projection but kept as a separate entry point because the circuits
    # and the tests reference the Gaussian formulation explicitly.
    return hyperplane_rounding(graph, vectors, n_samples=n_samples, seed=seed)


def best_hyperplane_cut(
    graph: Graph,
    vectors: np.ndarray,
    n_samples: int,
    seed: RandomState = None,
) -> Cut:
    """Best cut among *n_samples* hyperplane roundings (n_samples >= 1)."""
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    assignments, weights = hyperplane_rounding(graph, vectors, n_samples, seed)
    best = int(np.argmax(weights))
    return Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
