"""Oblique-manifold primitives for the Burer-Monteiro MAXCUT SDP.

The oblique manifold OB(n, r) is the set of ``n x r`` matrices whose rows are
unit vectors, i.e. the product of n copies of the (r-1)-sphere.  The MAXCUT
SDP relaxation constrains the Gram matrix ``X = W W^T`` to have unit diagonal,
which is exactly the statement ``W in OB(n, r)``.

All operations are vectorised over rows.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "project_rows_to_sphere",
    "tangent_project",
    "random_oblique_point",
    "retract",
    "is_on_manifold",
]

_EPS = 1e-12


def project_rows_to_sphere(W: np.ndarray) -> np.ndarray:
    """Normalise every row of *W* to unit Euclidean norm.

    Rows with (numerically) zero norm are replaced by the first basis vector,
    which keeps the projection total and deterministic.
    """
    W = np.asarray(W, dtype=np.float64)
    if W.ndim != 2:
        raise ValidationError(f"W must be 2-D, got shape {W.shape}")
    norms = np.linalg.norm(W, axis=1, keepdims=True)
    out = np.empty_like(W)
    safe = norms[:, 0] > _EPS
    out[safe] = W[safe] / norms[safe]
    if np.any(~safe):
        out[~safe] = 0.0
        out[~safe, 0] = 1.0
    return out


def is_on_manifold(W: np.ndarray, atol: float = 1e-8) -> bool:
    """True if every row of *W* has unit norm within *atol*."""
    norms = np.linalg.norm(np.asarray(W, dtype=np.float64), axis=1)
    return bool(np.allclose(norms, 1.0, atol=atol))


def tangent_project(W: np.ndarray, G: np.ndarray) -> np.ndarray:
    """Project an ambient gradient *G* onto the tangent space of OB(n, r) at *W*.

    The tangent space at a point with unit rows consists of matrices whose
    rows are orthogonal to the corresponding rows of *W*:

        P_W(G) = G - diag(<g_i, w_i>) W
    """
    W = np.asarray(W, dtype=np.float64)
    G = np.asarray(G, dtype=np.float64)
    if W.shape != G.shape:
        raise ValidationError(f"W and G must have the same shape, got {W.shape} vs {G.shape}")
    inner = np.sum(W * G, axis=1, keepdims=True)
    return G - inner * W


def retract(W: np.ndarray, step: np.ndarray) -> np.ndarray:
    """Retraction: move from *W* along tangent direction *step* and renormalise rows."""
    return project_rows_to_sphere(np.asarray(W) + np.asarray(step))


def random_oblique_point(n: int, r: int, seed: RandomState = None) -> np.ndarray:
    """Uniformly random point on OB(n, r): i.i.d. Gaussian rows, normalised."""
    if n < 0 or r < 1:
        raise ValidationError(f"need n >= 0 and r >= 1, got n={n}, r={r}")
    rng = as_generator(seed)
    return project_rows_to_sphere(rng.standard_normal((n, r)))
