"""Burer-Monteiro low-rank solver for the MAXCUT semidefinite program.

The Goemans-Williamson relaxation is

    maximise   (1/2) * sum_ij A_ij (1 - <w_i, w_j>)
    subject to ||w_i|| = 1  for every vertex i,

with the vectors ``w_i`` forming the rows of an ``n x r`` matrix ``W``
(the paper fixes r = 4).  Equivalently, with the Laplacian ``L = D - A``,

    maximise  (1/4) * <L, W W^T>.

This module maximises that objective by Riemannian gradient ascent on the
oblique manifold with an Armijo backtracking line search.  For ranks
``r >= ceil(sqrt(2n))`` the Burer-Monteiro landscape has no spurious local
optima, and in practice rank 4 already recovers SDP-quality solutions on the
graph sizes used in the paper — the same regime PyManopt was used in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.sdp.manifold import (
    project_rows_to_sphere,
    random_oblique_point,
    retract,
    tangent_project,
)
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = ["SDPResult", "solve_maxcut_sdp", "sdp_objective"]

_logger = get_logger("sdp")


def sdp_objective(graph: Graph, W: np.ndarray) -> float:
    """SDP objective ``(1/2) sum_{ij in E} A_ij (1 - <w_i, w_j>)`` for unit-row W.

    Evaluated over the edge list so the cost is ``O(m r)`` rather than
    ``O(n^2 r)``.
    """
    W = np.asarray(W, dtype=np.float64)
    if W.shape[0] != graph.n_vertices:
        raise ValidationError(
            f"W must have {graph.n_vertices} rows, got {W.shape[0]}"
        )
    if graph.n_edges == 0:
        return 0.0
    edges = graph.edges
    inner = np.sum(W[edges[:, 0]] * W[edges[:, 1]], axis=1)
    return float(0.5 * np.dot(graph.edge_weights, 1.0 - inner))


def _euclidean_gradient(graph: Graph, W: np.ndarray) -> np.ndarray:
    """Euclidean gradient of the SDP objective with respect to W.

    With the objective summed over the full symmetric adjacency,
    d/dW [ (1/2) sum_ij A_ij (1 - w_i.w_j) ] = -A W (row i gets
    ``-sum_j A_ij w_j``).  Using the sparse adjacency keeps this O(m r).
    """
    return -(graph.adjacency_sparse() @ W)


@dataclass
class SDPResult:
    """Result of a Burer-Monteiro MAXCUT SDP solve.

    Attributes
    ----------
    vectors:
        ``(n, r)`` matrix with unit rows — the relaxed solution consumed by
        the LIF-GW circuit as its device-to-neuron weight matrix.
    objective:
        Final SDP objective value (an upper bound estimate of MAXCUT when the
        solve converges to the global optimum).
    n_iterations:
        Number of gradient-ascent iterations performed.
    converged:
        True if the Riemannian gradient norm fell below tolerance.
    objective_history:
        Objective value after every iteration (monotone non-decreasing).
    rank:
        The factorisation rank used.
    """

    vectors: np.ndarray
    objective: float
    n_iterations: int
    converged: bool
    rank: int
    objective_history: List[float] = field(default_factory=list)

    @property
    def gram_matrix(self) -> np.ndarray:
        """The PSD Gram matrix ``X = W W^T`` with unit diagonal."""
        return self.vectors @ self.vectors.T


def solve_maxcut_sdp(
    graph: Graph,
    rank: int = 4,
    max_iterations: int = 2000,
    tolerance: float = 1e-6,
    initial_step: float = 1.0,
    seed: RandomState = None,
    initial_vectors: Optional[np.ndarray] = None,
) -> SDPResult:
    """Solve the MAXCUT SDP relaxation with a rank-*rank* factorisation.

    Parameters
    ----------
    graph:
        Graph whose MAXCUT SDP is solved.
    rank:
        Factorisation rank r (the paper fixes 4).  Must be >= 1.
    max_iterations:
        Iteration cap for the gradient ascent.
    tolerance:
        Convergence threshold on the Riemannian gradient norm, scaled by the
        total edge weight so the criterion is graph-size independent.
    initial_step:
        Initial step size for the Armijo backtracking line search.
    seed:
        Randomness for the initial point (ignored when *initial_vectors* given).
    initial_vectors:
        Optional warm start; rows are renormalised onto the manifold.

    Returns
    -------
    SDPResult
    """
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    if max_iterations < 0:
        raise ValidationError(f"max_iterations must be >= 0, got {max_iterations}")
    n = graph.n_vertices

    if initial_vectors is not None:
        W = np.asarray(initial_vectors, dtype=np.float64)
        if W.shape != (n, rank):
            raise ValidationError(
                f"initial_vectors must have shape ({n}, {rank}), got {W.shape}"
            )
        W = project_rows_to_sphere(W)
    else:
        W = random_oblique_point(n, rank, seed=seed)

    if n == 0 or graph.n_edges == 0:
        return SDPResult(
            vectors=W, objective=0.0, n_iterations=0, converged=True, rank=rank,
            objective_history=[0.0],
        )

    scale = max(graph.total_weight, 1.0)
    objective = sdp_objective(graph, W)
    history = [objective]
    step = float(initial_step)
    converged = False
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        euclidean_grad = _euclidean_gradient(graph, W)
        # Riemannian ascent direction: the Euclidean gradient of the objective
        # projected onto the tangent space of the oblique manifold.
        riemannian_grad = tangent_project(W, euclidean_grad)
        grad_norm = float(np.linalg.norm(riemannian_grad))
        if grad_norm <= tolerance * scale:
            converged = True
            break

        # Armijo backtracking line search along the ascent direction.
        improved = False
        trial_step = step
        for _ in range(40):
            candidate = retract(W, trial_step * riemannian_grad)
            candidate_objective = sdp_objective(graph, candidate)
            if candidate_objective >= objective + 1e-4 * trial_step * grad_norm**2 / scale:
                W = candidate
                objective = candidate_objective
                # Gentle step growth keeps the search adaptive in both directions.
                step = min(trial_step * 2.0, 1e3)
                improved = True
                break
            trial_step *= 0.5
        if not improved:
            # No ascent possible at any tried step: treat as converged.
            converged = True
            history.append(objective)
            break
        history.append(objective)

    _logger.debug(
        "SDP solve on %s: objective=%.4f iterations=%d converged=%s",
        graph.name, objective, iteration, converged,
    )
    return SDPResult(
        vectors=W,
        objective=objective,
        n_iterations=iteration,
        converged=converged,
        rank=rank,
        objective_history=history,
    )
