"""Upper bounds on the maximum cut, used for approximation-ratio reporting.

Because OPT(G) is unknown for most evaluation graphs, experiment reports use
an upper bound as the denominator where an exact value is unavailable:

* ``trivial_upper_bound`` — total edge weight (every edge cut).
* ``spectral_upper_bound`` — the eigenvalue bound
  ``m/2 + (n/4) * lambda_max(L)`` truncated at the trivial bound.
* ``sdp_upper_bound`` — the SDP objective value, which upper-bounds OPT when
  the Burer-Monteiro solve reaches the global optimum of the relaxation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graphs.graph import Graph
from repro.sdp.burer_monteiro import SDPResult, solve_maxcut_sdp
from repro.utils.rng import RandomState

__all__ = ["trivial_upper_bound", "spectral_upper_bound", "sdp_upper_bound"]


def trivial_upper_bound(graph: Graph) -> float:
    """Total edge weight — an upper bound attained exactly by bipartite graphs."""
    return graph.total_weight


def spectral_upper_bound(graph: Graph) -> float:
    """Eigenvalue bound ``W(E)/2 + (n/4) * lambda_max(L)``, capped at the trivial bound.

    This is the classical bound of Mohar & Poljak; ``lambda_max`` is the
    largest eigenvalue of the combinatorial Laplacian.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return 0.0
    laplacian = sp.csgraph.laplacian(graph.adjacency_sparse())
    if n <= 3:
        lam_max = float(np.linalg.eigvalsh(laplacian.toarray()).max())
    else:
        lam_max = float(
            spla.eigsh(laplacian.asfptype(), k=1, which="LA", return_eigenvectors=False)[0]
        )
    bound = graph.total_weight / 2.0 + n * lam_max / 4.0
    return float(min(bound, trivial_upper_bound(graph)))


def sdp_upper_bound(
    graph: Graph, rank: int | None = None, seed: RandomState = None, **solver_kwargs
) -> float:
    """SDP objective value as an upper bound estimate on MAXCUT.

    A generously large rank (``ceil(sqrt(2n)) + 1``) is used by default so the
    Burer-Monteiro landscape is benign and the value is a true bound up to
    solver tolerance.
    """
    n = graph.n_vertices
    if n == 0 or graph.n_edges == 0:
        return 0.0
    if rank is None:
        rank = int(np.ceil(np.sqrt(2.0 * n))) + 1
    result: SDPResult = solve_maxcut_sdp(graph, rank=rank, seed=seed, **solver_kwargs)
    return float(min(result.objective, trivial_upper_bound(graph)))
