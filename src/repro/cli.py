"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run         Run any registered workload (the unified entry point):
            ``repro run <workload> [--param k=v] [--trials N] [--samples N]``.
            ``--plan`` previews the execution without running; ``--save``
            persists the uniform RunReport JSON.  ``--shards N`` splits the
            run into checkpointable shards (``--checkpoint-dir`` persists
            them; ``--resume`` skips completed shards after a crash).
workloads   List the registered workloads and their parameters.
merge       Merge a shard checkpoint directory into a report without
            re-running anything (``repro merge <dir>``).
bench       Run the performance benchmark workload and write the schema'd
            BENCH artifact; ``--check benchmarks/baseline.json`` gates the
            measured speedups against committed floors (CI's bench-smoke).
solve       Run one solver (circuit or classical) on a graph and print the cut.
            With ``--problem {qubo,ising,dicut,2sat}`` the instance (random,
            or loaded with ``--from FILE``) is lowered to MAXCUT through the
            problem compiler, solved (batchable circuits ride the batched
            engine), lifted back, and certified for value preservation.
engine      Run trial-parallel batched circuit simulation (repro.engine):
            many independent trials of one circuit on one graph in a single
            vectorised solve, with dense/sparse weight backends and optional
            early stopping; ``--compare`` also times the sequential path.
serve       Run the solver as a daemon (repro.serve): an async request queue
            over HTTP or a unix socket that coalesces same-shape requests
            into single engine batches, caches served results by content,
            and exposes queue/batching/cache metrics on ``/stats`` plus
            Prometheus text on ``/metrics``.  SIGTERM drains the queue
            before exiting.
profile     Run any registered workload under the tracer (repro.obs) and
            print an ASCII per-phase breakdown; ``--format chrome`` writes
            a Perfetto-loadable Chrome trace-event JSON, ``--format
            summary`` the per-phase aggregate JSON.
graphs      List the empirical graphs in the Table I registry.

Deprecated shims (still functional, emit ``DeprecationWarning``)
----------------------------------------------------------------
compare     → ``repro run arena``
figure3     → ``repro run figure3``
figure4     → ``repro run figure4``
table1      → ``repro run table1``
ablation    → ``repro run ablation``

Each shim maps its historical flags onto the corresponding workload's
parameters and delegates to the exact same session path as ``repro run``, so
outputs (including ``--save`` JSON, modulo timestamp) are identical.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Any, Dict, Optional, Sequence

import numpy as np

import repro.problems  # registers problem-native solvers and problem suites
import repro.portfolio  # registers the portfolio meta-solver ("auto")
from repro.algorithms.registry import get_solver, get_spec, list_solvers
from repro.arena.suite import list_suites
from repro.experiments.runner import save_results
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import read_edge_list, read_matrix_market
from repro.graphs.repository import EMPIRICAL_GRAPHS, list_empirical_graphs, load_empirical_graph
from repro.utils.logging import configure_logging
from repro.utils.validation import ValidationError

__all__ = ["main", "build_parser"]


def _load_graph(args: argparse.Namespace):
    """Resolve the graph requested by --graph / --er options."""
    if args.graph is not None:
        name = args.graph
        if name in EMPIRICAL_GRAPHS:
            return load_empirical_graph(name, seed=args.seed)
        if name.endswith(".mtx"):
            return read_matrix_market(name)
        return read_edge_list(name)
    n, p = args.er
    return erdos_renyi(int(n), float(p), seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stochastic neuromorphic MAXCUT circuits (paper reproduction CLI)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument("--save", type=str, default=None, help="write results to this JSON file")
    parser.add_argument("--verbose", action="store_true", help="enable library logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # run --------------------------------------------------------------------
    run = subparsers.add_parser(
        "run",
        help="run a registered workload (the unified entry point)",
        description=(
            "Run any workload from the registry (see `repro workloads`). "
            "Workload-specific parameters are passed as repeated --param k=v "
            "(values coerced to the declared default's type; comma-separated "
            "lists for sequence parameters). --trials/--samples/--workers "
            "are shorthand for the parameters of the same name."
        ),
    )
    run.add_argument("workload", metavar="WORKLOAD",
                     help="registered workload name (see `repro workloads`)")
    run.add_argument("--param", "-p", action="append", default=[], metavar="K=V",
                     help="override one workload parameter (repeatable)")
    run.add_argument("--trials", type=int, default=None,
                     help="shorthand for --param trials=N")
    run.add_argument("--samples", type=int, default=None,
                     help="shorthand for --param samples=N")
    run.add_argument("--workers", type=int, default=None,
                     help="shorthand for --param workers=N")
    run.add_argument("--backend", type=str, default=None, metavar="SPEC",
                     help="shorthand for --param backend=SPEC (engine backend "
                          "spec: auto, dense, sparse, numpy, torch, cupy, or "
                          "<array>:<weight> like torch:dense)")
    run.add_argument("--plan", action="store_true",
                     help="print the execution plan and exit without running")
    run.add_argument("--plot", action="store_true",
                     help="render the workload's ASCII plot, if it has one")
    run.add_argument("--shards", type=int, default=1, metavar="N",
                     help="split the run into N checkpointable shards "
                          "(results are identical to an unsharded run)")
    run.add_argument("--checkpoint-dir", type=str, default=None, metavar="DIR",
                     help="directory for the shard manifest and per-shard "
                          "atomic checkpoint files")
    run.add_argument("--resume", action="store_true",
                     help="skip shards already completed in --checkpoint-dir "
                          "(rerun the same command after a crash/kill)")
    run.add_argument("--shard-index", type=int, default=None, metavar="K",
                     help="worker mode: execute only shard K of --shards N "
                          "into --checkpoint-dir and exit without merging — "
                          "run one worker per shard (on any machine sharing "
                          "the directory), then `repro merge DIR`")
    # SUPPRESS (not a value) so the global `repro --seed/--save ... run ...`
    # spellings keep working while `repro run <w> --seed N --save F` is also
    # accepted (the subcommand-position spelling the docs use).
    run.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                     help="root random seed (same as the global --seed)")
    run.add_argument("--save", type=str, default=argparse.SUPPRESS, metavar="FILE",
                     help="write the RunReport to this JSON file (same as the global --save)")

    # workloads --------------------------------------------------------------
    subparsers.add_parser("workloads", help="list the registered workloads")

    # backends ---------------------------------------------------------------
    subparsers.add_parser(
        "backends",
        help="list the engine's array and weight backends with availability",
        description=(
            "Probe the two backend registries of the batched engine: array "
            "backends (the tensor namespace a batch runs on — numpy always, "
            "torch/cupy when installed) and weight backends (how the weight "
            "matrix is applied — dense GEMM or sparse CSR). Any listed pair "
            "combines as --backend <array>:<weight>."
        ),
    )

    # merge ------------------------------------------------------------------
    merge = subparsers.add_parser(
        "merge",
        help="merge a shard checkpoint directory into a report",
        description=(
            "Fold the completed shard checkpoints written by "
            "`repro run <workload> --shards N --checkpoint-dir DIR` into the "
            "workload's report, without re-running anything. Incomplete "
            "directories fail and name the missing shards (rerun with "
            "--resume to complete them)."
        ),
    )
    merge.add_argument("directory", metavar="DIR",
                       help="checkpoint directory (contains manifest.json)")
    merge.add_argument("--plot", action="store_true",
                       help="render the workload's ASCII plot, if it has one")
    merge.add_argument("--save", type=str, default=argparse.SUPPRESS, metavar="FILE",
                       help="write the merged RunReport to this JSON file")

    # bench ------------------------------------------------------------------
    bench = subparsers.add_parser(
        "bench",
        help="run the performance benchmark workload (perf-gating artifact)",
        description=(
            "Time engine-vs-sequential and sharded-vs-monolithic execution "
            "on an arena suite, print the speedup leaderboard, and write the "
            "schema'd benchmark artifact. With --check, exit non-zero when "
            "any measured speedup falls below the committed baseline floors."
        ),
    )
    bench.add_argument("--quick", action="store_true",
                       help="reduced budgets for CI smoke runs (~seconds)")
    bench.add_argument("--suite", type=str, default=None,
                       help="graph suite to benchmark on (default: er-small)")
    bench.add_argument("--trials", type=int, default=None,
                       help="trials per scenario (default: 16, quick: 6)")
    bench.add_argument("--samples", type=int, default=None,
                       help="read-outs per trial (default: 128, quick: 48)")
    bench.add_argument("--out", type=str, default="BENCH_4.json", metavar="FILE",
                       help="benchmark artifact path (default: BENCH_4.json)")
    bench.add_argument("--check", type=str, default=None, metavar="BASELINE",
                       help="baseline JSON with per-scenario min_speedup floors; "
                            "exit 1 when the gate fails")

    # solve ------------------------------------------------------------------
    solve = subparsers.add_parser(
        "solve",
        help="run one solver on one graph or one compiled problem instance",
        description=(
            "Run one solver on one graph and print the cut. With --problem, "
            "the instance is lowered to MAXCUT through the problem compiler "
            "(repro.problems), solved — batchable circuits through the "
            "batched engine — lifted back to a native solution, and checked "
            "against a value-preservation certificate."
        ),
    )
    solve.add_argument("--solver", choices=list_solvers(), default="lif_gw")
    solve.add_argument("--graph", type=str, default=None,
                       help="Table I graph name or an edge-list / .mtx file path")
    solve.add_argument("--er", type=float, nargs=2, metavar=("N", "P"), default=(50, 0.25),
                       help="Erdős–Rényi parameters used when --graph is not given")
    solve.add_argument("--samples", type=int, default=512)
    solve.add_argument("--problem", type=str, default=None,
                       choices=["qubo", "ising", "dicut", "2sat"],
                       help="solve a problem instance compiled to MAXCUT "
                            "instead of a raw graph")
    solve.add_argument("--from", dest="from_file", type=str, default=None,
                       metavar="FILE",
                       help="JSON problem instance to load (default: a "
                            "seed-deterministic random instance of --problem)")
    solve.add_argument("--vertices", type=int, default=16, metavar="N",
                       help="size of the random instance when --from is not given")
    solve.add_argument("--trials", type=int, default=4,
                       help="engine batch trials for batchable solvers "
                            "(--problem mode)")
    solve.add_argument("--model", type=str, default=None, metavar="FILE",
                       help="portfolio model for --solver auto (from "
                            "`repro portfolio fit`); without one, auto "
                            "races its candidate pool cold")
    solve.add_argument("--backend", type=str, default="auto", metavar="SPEC",
                       help="engine backend spec for batchable solvers: auto, "
                            "a weight backend (dense/sparse), an array "
                            "backend (numpy/torch/cupy), or <array>:<weight> "
                            "(see `repro backends`)")

    # engine -----------------------------------------------------------------
    engine = subparsers.add_parser(
        "engine",
        help="batched trial-parallel circuit simulation (repro.engine)",
        description=(
            "Run many independent trials of one circuit on one graph through "
            "the batched solver engine. Trial i is seeded with "
            "SeedSequence(seed, spawn_key=(i,)), so results are reproducible "
            "and (dense backend, no early stop) bit-identical to running the "
            "sequential circuit once per trial."
        ),
    )
    engine.add_argument("--circuit", choices=["lif_gw", "lif_tr"], default="lif_gw")
    engine.add_argument("--graph", type=str, default=None,
                        help="Table I graph name or an edge-list / .mtx file path")
    engine.add_argument("--er", type=float, nargs=2, metavar=("N", "P"), default=(100, 0.25),
                        help="Erdős–Rényi parameters used when --graph is not given")
    engine.add_argument("--trials", type=int, default=64,
                        help="number of independent trials in the batch")
    engine.add_argument("--samples", type=int, default=256,
                        help="cut read-outs per trial")
    engine.add_argument("--backend", type=str, default="auto", metavar="SPEC",
                        help="backend spec: auto, a weight backend "
                             "(dense/sparse), an array backend "
                             "(numpy/torch/cupy), or <array>:<weight> "
                             "(see `repro backends`)")
    engine.add_argument("--early-stop-patience", type=int, default=0, metavar="ROUNDS",
                        help="stop after this many non-improving read-out rounds "
                             "(0 disables early stopping)")
    engine.add_argument("--compare", action="store_true",
                        help="also run the sequential per-trial path and report speedup")

    # serve ------------------------------------------------------------------
    serve = subparsers.add_parser(
        "serve",
        help="run the solver as a daemon (async queue + cross-request batching)",
        description=(
            "Start the solve service (repro.serve): a JSON-over-HTTP daemon "
            "that queues solve requests (graphs, or any compiled problem "
            "class), coalesces same-shape requests into single engine "
            "batches, and answers bit-identically to standalone engine runs "
            "with the same seed. GET /stats exposes queue/batching/cache "
            "metrics. SIGTERM (or Ctrl-C) drains the queue — pending "
            "requests finish, new admissions are refused — then exits."
        ),
    )
    serve.add_argument("--host", type=str, default="127.0.0.1",
                       help="TCP bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 binds an ephemeral port; the bound "
                            "port is printed either way)")
    serve.add_argument("--socket", type=str, default=None, metavar="PATH",
                       help="serve on an AF_UNIX socket path instead of TCP")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission limit on queued requests")
    serve.add_argument("--batch-trials", type=int, default=64,
                       help="trial-axis ceiling of one coalesced engine batch")
    serve.add_argument("--max-trials", type=int, default=256,
                       help="per-request trial budget cap")
    serve.add_argument("--max-vertices", type=int, default=4096,
                       help="largest admissible instance (compiled size for "
                            "problem requests)")
    serve.add_argument("--timeout", type=float, default=60.0,
                       help="default per-request queue timeout in seconds")
    serve.add_argument("--model", type=str, default=None, metavar="FILE",
                       help="portfolio model used to route \"solver\": "
                            "\"auto\" requests (from `repro portfolio fit`)")

    # profile ----------------------------------------------------------------
    profile = subparsers.add_parser(
        "profile",
        help="run a workload under the tracer and break down where time went",
        description=(
            "Run any registered workload with span collection enabled "
            "(repro.obs) and print an ASCII per-phase breakdown: a table of "
            "every span name with inclusive/exclusive seconds plus bar "
            "charts of the top-N phases. --format chrome (the default) "
            "additionally writes a Chrome trace-event JSON file loadable in "
            "Perfetto / chrome://tracing; --format summary writes the "
            "per-phase aggregate as JSON instead. Tracing never perturbs "
            "seeding, so the profiled run's results are identical to "
            "`repro run` with the same parameters."
        ),
    )
    profile.add_argument("workload", metavar="WORKLOAD",
                         help="registered workload name (see `repro workloads`)")
    profile.add_argument("--param", "-p", action="append", default=[], metavar="K=V",
                         help="override one workload parameter (repeatable)")
    profile.add_argument("--trials", type=int, default=None,
                         help="shorthand for --param trials=N")
    profile.add_argument("--samples", type=int, default=None,
                         help="shorthand for --param samples=N")
    profile.add_argument("--shards", type=int, default=1, metavar="N",
                         help="profile the sharded execution path (per-shard "
                              "timings are folded into the merge)")
    profile.add_argument("--out", type=str, default=None, metavar="FILE",
                         help="trace file path (default: trace.json for "
                              "--format chrome; summary is print-only "
                              "without --out)")
    profile.add_argument("--format", choices=["chrome", "summary"],
                         default="chrome", dest="trace_format",
                         help="trace file format: Chrome trace-event JSON "
                              "(default) or the per-phase summary JSON")
    profile.add_argument("--top", type=int, default=10,
                         help="span names shown in the ASCII bar charts")
    profile.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                         help="root random seed (same as the global --seed)")
    profile.add_argument("--save", type=str, default=argparse.SUPPRESS, metavar="FILE",
                         help="write the RunReport (with its timing block) to "
                              "this JSON file (same as the global --save)")

    # portfolio --------------------------------------------------------------
    portfolio = subparsers.add_parser(
        "portfolio",
        help="fit/inspect the portfolio meta-solver's routing priors",
        description=(
            "Mine persisted arena/workload result files (repro --save, "
            "repro run arena, the sharded executor's merge output) into a "
            "PortfolioModel: per-feature-bucket solver rankings by mean "
            "arena-relative cut ratio. The model drives `--solver auto` "
            "routing in `repro solve`, workloads, and the serve daemon."
        ),
    )
    portfolio.add_argument("action", choices=["fit", "explain"],
                           help="fit: mine result files into a model; "
                                "explain: render a saved model's rankings")
    portfolio.add_argument("paths", nargs="+", metavar="FILE",
                           help="result JSON files (fit) or one model file "
                                "(explain)")
    portfolio.add_argument("--out", type=str, default=None, metavar="FILE",
                           help="fit: write the model to this JSON file")
    portfolio.add_argument("--top", type=int, default=3,
                           help="solvers shown per bucket in the rendering")

    # compare (deprecated shim for `run arena`) ------------------------------
    compare = subparsers.add_parser(
        "compare",
        help="[deprecated: use `repro run arena`] race solvers over a suite",
        description=(
            "Deprecated alias of `repro run arena`. Runs a subset of the "
            "solver registry head-to-head over a named graph suite under one "
            "shared trial/sample budget, through the unified workload path."
        ),
    )
    compare.add_argument("--solvers", type=str, default="lif_gw,lif_tr,gw,trevisan,random",
                         help="comma-separated registry keys (see `repro solve --help`)")
    compare.add_argument("--suite", choices=list_suites(), default="er-small",
                         help="graph suite to race on")
    compare.add_argument("--budget", type=int, default=256, metavar="SAMPLES",
                         help="per-trial n_samples budget shared by every solver")
    compare.add_argument("--trials", type=int, default=4,
                         help="independent trials per stochastic solver and graph")
    compare.add_argument("--max-seconds", type=float, default=None, metavar="S",
                         help="optional wall-clock cap per (solver, graph) cell "
                              "(capped cells run trials serially, overriding --workers)")
    compare.add_argument("--backend", type=str, default="auto", metavar="SPEC",
                         help="engine backend spec for batchable solvers "
                              "(auto, dense, sparse, numpy, torch, cupy, or "
                              "<array>:<weight>)")
    compare.add_argument("--workers", type=int, default=1,
                         help="process workers for sequential solvers' trials")
    compare.add_argument("--no-engine", action="store_true",
                         help="run batchable circuits through the sequential path too")
    compare.add_argument("--plot", action="store_true",
                         help="render an ASCII bar chart of the leaderboard")
    # SUPPRESS (not None) so a global `repro --save out.json compare ...`
    # isn't clobbered by this subparser's default when the flag is omitted.
    compare.add_argument("--save", type=str, default=argparse.SUPPRESS, metavar="FILE",
                         help="write results to this JSON file (same as the global --save)")

    # figure3 (deprecated shim) ----------------------------------------------
    figure3 = subparsers.add_parser(
        "figure3",
        help="[deprecated: use `repro run figure3`] Erdős–Rényi sweep (Figure 3)",
    )
    figure3.add_argument("--sizes", type=int, nargs="+", default=[50])
    figure3.add_argument("--probabilities", type=float, nargs="+", default=[0.25])
    figure3.add_argument("--graphs-per-cell", type=int, default=3)
    figure3.add_argument("--samples", type=int, default=512)
    figure3.add_argument("--workers", type=int, default=1)
    figure3.add_argument("--plot", action="store_true", help="render ASCII convergence plots")

    # figure4 (deprecated shim) ----------------------------------------------
    figure4 = subparsers.add_parser(
        "figure4",
        help="[deprecated: use `repro run figure4`] empirical-graph curves (Figure 4)",
    )
    figure4.add_argument("--graphs", nargs="+", default=["hamming6-2"],
                         choices=list_empirical_graphs(), metavar="GRAPH")
    figure4.add_argument("--samples", type=int, default=512)
    figure4.add_argument("--plot", action="store_true")

    # table1 (deprecated shim) -----------------------------------------------
    table1 = subparsers.add_parser(
        "table1",
        help="[deprecated: use `repro run table1`] maximum cut values (Table I)",
    )
    table1.add_argument("--graphs", nargs="+", default=None,
                        choices=list_empirical_graphs(), metavar="GRAPH")
    table1.add_argument("--samples", type=int, default=1024)

    # ablation (deprecated shim) ---------------------------------------------
    ablation = subparsers.add_parser(
        "ablation",
        help="[deprecated: use `repro run ablation`] device / rank / learning-rate ablations",
    )
    ablation.add_argument("--kind", choices=["devices", "rank", "learning-rate"], default="devices")
    ablation.add_argument("--circuit", choices=["lif_gw", "lif_tr"], default="lif_gw")
    ablation.add_argument("--vertices", type=int, default=50)
    ablation.add_argument("--samples", type=int, default=256)

    # graphs -----------------------------------------------------------------
    subparsers.add_parser("graphs", help="list the Table I empirical graph registry")

    return parser


# ---------------------------------------------------------------------------
# Workload execution (shared by `run` and the deprecated shims)
# ---------------------------------------------------------------------------


def _render_report(workload, report, plot: bool) -> None:
    """Print a workload report: formatted body, optional plot, winner line.

    *workload* may be ``None`` (e.g. merging checkpoints of an unregistered
    ad-hoc spec) — the generic leaderboard table is used.
    """
    from repro.experiments.reporting import format_table

    if workload is not None and workload.formatter is not None:
        print(workload.formatter(report))
    else:
        rows = [
            [row.get("solver", "?"), row.get("score", float("nan"))]
            for row in report.leaderboard
        ]
        print(format_table(["competitor", "score"], rows))
    if plot and workload is not None and workload.plotter is not None:
        print()
        print(workload.plotter(report))
    winner = report.winner()
    if winner is not None:
        print(f"\nwinner: {winner}  ({report.elapsed_seconds:.3f}s total)")


def _execute_workload(
    name: str,
    overrides: Dict[str, Any],
    save: Optional[str],
    plot: bool = False,
    plan_only: bool = False,
    shards: int = 1,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> int:
    """Build a session for workload *name*, run it, render, persist."""
    from repro.workloads import Session, get_workload

    try:
        workload = get_workload(name)
        session = Session.from_workload(name, **overrides)
        if plan_only:
            print(session.plan().describe())
            return 0
        report = session.run(
            shards=shards, checkpoint_dir=checkpoint_dir, resume=resume
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    distrib = report.metadata.get("distrib")
    if distrib:
        print(
            f"shards: {distrib['n_shards']} over {distrib['n_units']} unit(s)"
            + (f", resumed {len(distrib['resumed_shards'])} completed shard(s)"
               if distrib["resumed_shards"] else "")
            + (f", checkpoints in {distrib['checkpoint_dir']}"
               if distrib["checkpoint_dir"] else "")
            + "\n"
        )
    _render_report(workload, report, plot=plot)
    if save:
        report.save(save)
        print(f"\nresults written to {save}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    from repro.workloads import get_workload
    from repro.workloads.registry import coerce_param_strings

    try:
        workload = get_workload(args.workload)
        raw: Dict[str, Any] = {}
        for item in args.param:
            if "=" not in item:
                raise ValidationError(
                    f"--param expects K=V, got {item!r}"
                )
            key, text = item.split("=", 1)
            raw[key.strip()] = text
        for key in ("trials", "samples", "workers", "backend"):
            value = getattr(args, key)
            if value is not None:
                raw[key] = value
        overrides = {"seed": args.seed, **coerce_param_strings(workload, raw)}
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --plan wins over worker mode: a routing preview must never execute or
    # write anything, whatever other flags are present.
    if args.shard_index is not None and not args.plan:
        if args.save or args.plot:
            print(
                "note: --save/--plot apply to merged reports; ignored in "
                "worker mode (run `repro merge` when all shards are done)",
                file=sys.stderr,
            )
        return _execute_single_shard(
            args.workload, overrides, n_shards=args.shards,
            shard_index=args.shard_index, checkpoint_dir=args.checkpoint_dir,
        )
    return _execute_workload(
        args.workload, overrides, save=args.save, plot=args.plot,
        plan_only=args.plan, shards=args.shards,
        checkpoint_dir=args.checkpoint_dir, resume=args.resume,
    )


def _execute_single_shard(
    name: str,
    overrides: Dict[str, Any],
    n_shards: int,
    shard_index: int,
    checkpoint_dir: Optional[str],
) -> int:
    """Worker mode: run exactly one shard into the checkpoint directory."""
    from repro.distrib import execute_single_shard
    from repro.workloads import Session

    try:
        if checkpoint_dir is None:
            raise ValidationError("--shard-index requires --checkpoint-dir")
        session = Session.from_workload(name, **overrides)
        status = execute_single_shard(
            session.spec, n_shards, shard_index, checkpoint_dir,
            workload=session.workload,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verb = "already complete (skipped)" if status["skipped"] else "completed"
    print(f"shard {shard_index}/{status['n_shards']} {verb} "
          f"({status['n_units']} unit(s)) -> {checkpoint_dir}")
    if status["complete"]:
        print(f"all {status['n_shards']} shards complete — merge with: "
              f"repro merge {checkpoint_dir}")
    else:
        print(f"waiting on shard(s) {status['missing_shards']}")
    return 0


def _command_merge(args: argparse.Namespace) -> int:
    from repro import __version__
    from repro.distrib import merge_checkpoints
    from repro.workloads.registry import WORKLOADS
    from repro.workloads.report import RunReport

    try:
        outcome, manifest = merge_checkpoints(args.directory)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    name = str(manifest.get("workload", "workload"))
    spec_dict = dict(manifest.get("spec") or {})
    distrib = outcome.metadata.get("distrib", {})
    report = RunReport(
        workload=name,
        seed=spec_dict.get("seed"),
        params=dict(spec_dict.get("params") or {}),
        records=list(outcome.records),
        leaderboard=list(outcome.leaderboard),
        elapsed_seconds=float(sum(distrib.get("shard_elapsed_seconds", []))),
        metadata=dict(outcome.metadata),
        version=__version__,
    )
    print(
        f"merged {distrib.get('n_shards', '?')} shard(s) / "
        f"{distrib.get('n_units', '?')} unit(s) of workload {name!r} "
        f"from {args.directory}\n"
    )
    _render_report(WORKLOADS.get(name), report, plot=args.plot)
    if args.save:
        report.save(args.save)
        print(f"\nresults written to {args.save}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.workloads import Session, check_baseline, get_workload
    from repro.workloads.bench import load_baseline

    overrides: Dict[str, Any] = {
        "seed": args.seed,
        "trials": args.trials if args.trials is not None else (6 if args.quick else 16),
        "samples": args.samples if args.samples is not None else (48 if args.quick else 128),
    }
    if args.suite is not None:
        overrides["suite"] = args.suite
    try:
        workload = get_workload("bench")
        report = Session.from_workload("bench", **overrides).run()
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Always render the bar-chart leaderboard: the bench's whole point is
    # the at-a-glance speedup trajectory.
    _render_report(workload, report, plot=True)
    report.save(args.out)
    print(f"\nbenchmark artifact written to {args.out}")
    if args.save and args.save != args.out:
        # Honor the global --save contract like every other subcommand.
        report.save(args.save)
        print(f"results written to {args.save}")
    if args.check:
        try:
            baseline = load_baseline(args.check)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {args.check!r}: {exc}", file=sys.stderr)
            return 2
        failures = check_baseline(report, baseline)
        if failures:
            print(f"\nbaseline gate FAILED against {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        floors = dict(baseline.get("min_speedup", {}))
        print(f"baseline gate: OK ({len(floors)} floor(s) from {args.check})")
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import capture, chrome_trace, profile_summary, render_profile
    from repro.workloads import Session, get_workload
    from repro.workloads.registry import coerce_param_strings

    try:
        workload = get_workload(args.workload)
        raw: Dict[str, Any] = {}
        for item in args.param:
            if "=" not in item:
                raise ValidationError(f"--param expects K=V, got {item!r}")
            key, text = item.split("=", 1)
            raw[key.strip()] = text
        for key in ("trials", "samples"):
            value = getattr(args, key)
            if value is not None:
                raw[key] = value
        overrides = {"seed": args.seed, **coerce_param_strings(workload, raw)}
        session = Session.from_workload(args.workload, **overrides)
        with capture() as trace:
            report = session.run(shards=args.shards)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spans = trace.spans
    print(render_profile(
        spans, top=args.top,
        title=(f"profile: workload {args.workload!r} — "
               f"{report.elapsed_seconds:.3f}s wall, {len(spans)} span(s)"),
    ))
    out = args.out
    if args.trace_format == "chrome":
        out = out or "trace.json"
        payload = chrome_trace(spans)
    else:
        payload = profile_summary(spans)
    if out is not None:
        from repro.experiments.runner import atomic_write_json

        atomic_write_json(out, payload)
        kind = ("Chrome trace-event" if args.trace_format == "chrome"
                else "profile summary")
        print(f"\n{kind} JSON written to {out}")
    if args.save:
        report.save(args.save)
        print(f"results written to {args.save}")
    return 0


def _command_workloads(_args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table
    from repro.workloads import get_workload, list_workloads

    rows = []
    for name in list_workloads():
        workload = get_workload(name)
        defaults = ", ".join(f"{k}={v!r}" for k, v in workload.defaults.items())
        rows.append([name, workload.summary, defaults])
    print(format_table(["workload", "summary", "parameters (defaults)"], rows))
    print("\nrun one with: repro run <workload> [--param k=v ...]")
    return 0


def _command_backends(_args: argparse.Namespace) -> int:
    from repro.engine import probe_array_backends, probe_weight_backends
    from repro.experiments.reporting import format_table

    def rows(probes):
        return [
            [
                probe["name"],
                "yes" if probe["available"] else "no",
                probe["device"] if probe["available"] else "-",
                probe["reason"],
            ]
            for probe in probes
        ]

    print("array backends (tensor namespace the engine batch runs on):")
    print(format_table(["name", "available", "device", "notes"],
                       rows(probe_array_backends())))
    print("\nweight backends (how the weight matrix is applied):")
    print(format_table(["name", "available", "device", "notes"],
                       rows(probe_weight_backends())))
    print("\nselect with: repro engine|solve|run ... --backend "
          "<name> or <array>:<weight>   (e.g. --backend torch:dense)")
    return 0


def _deprecated(old: str, new: str) -> None:
    # stacklevel=2 attributes the warning to the shim command itself (the
    # _command_<old> frame) rather than the generic dispatch line, so the
    # reported location names which deprecated entry point was used.
    warnings.warn(
        f"`repro {old}` is deprecated; use `repro {new}` instead",
        DeprecationWarning,
        stacklevel=2,
    )


# ---------------------------------------------------------------------------
# Plain commands
# ---------------------------------------------------------------------------


def _command_solve(args: argparse.Namespace) -> int:
    if args.problem is not None:
        return _solve_problem(args)
    graph = _load_graph(args)
    spec = get_spec(args.solver)
    engine_note = ""
    if args.backend != "auto":
        # An explicit backend routes batchable solvers through the engine
        # (the sequential circuit path has no backend seam).  Non-batchable
        # solvers cannot honour the request — say so instead of ignoring it.
        if not spec.batchable:
            print(
                f"error: --backend applies to batchable solvers "
                f"(lif_gw, lif_tr); {args.solver!r} runs sequentially",
                file=sys.stderr,
            )
            return 2
        try:
            from repro.engine import resolve_backend
            from repro.experiments.runner import run_circuit_trials

            resolve_backend(args.backend)  # fail fast, before the SDP solve
            result = run_circuit_trials(
                graph=graph, circuit=spec.circuit, n_trials=1,
                n_samples=args.samples, seed=args.seed, backend=args.backend,
            )
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cut = result.best_cut
        engine_note = (f" (batched engine, backend {result.backend_name}"
                       f" on {result.metadata.get('array_backend', 'numpy')})")
    else:
        solver = get_solver(args.solver)
        extra: Dict[str, Any] = {}
        if spec.key == "portfolio" and args.model is not None:
            extra["model"] = args.model
        cut = solver(graph, n_samples=args.samples, seed=args.seed, **extra)
    print(f"graph      : {graph.name} ({graph.n_vertices} vertices, {graph.n_edges} edges)")
    print(f"solver     : {args.solver}{engine_note}")
    print(f"cut weight : {cut.weight:g}  (of total edge weight {graph.total_weight:g})")
    sides = cut.side_sizes
    print(f"partition  : {sides[0]} / {sides[1]} vertices")
    return 0


def _solve_problem(args: argparse.Namespace) -> int:
    """``repro solve --problem``: compile → solve → lift → certify."""
    from repro.experiments.runner import run_circuit_trials
    from repro.problems import (
        compile_to_maxcut,
        load_problem,
        random_problem,
        verify_certificate,
    )
    from repro.workloads.problems import (
        PROBLEM_KIND_ALIASES,
        check_solver_compatibility,
    )

    kind = PROBLEM_KIND_ALIASES[args.problem]
    try:
        if args.from_file is not None:
            problem = load_problem(args.from_file)
            if problem.kind != kind:
                raise ValidationError(
                    f"{args.from_file!r} holds a {problem.kind!r} instance, "
                    f"but --problem {args.problem} was requested"
                )
        else:
            problem = random_problem(
                kind, seed=args.seed, n_variables=args.vertices
            )
        graph, lifter = compile_to_maxcut(problem, seed=args.seed)
        spec = check_solver_compatibility(args.solver, kind)
        print(f"problem    : {problem.describe()}")
        print(f"compiled   : {graph.name} ({graph.n_vertices} vertices, "
              f"{graph.n_edges} edges)")
        if spec.batchable:
            result = run_circuit_trials(
                graph=graph, circuit=spec.circuit, n_trials=args.trials,
                n_samples=args.samples, seed=args.seed,
                backend=args.backend,
            )
            cut = result.best_cut
            print(f"solver     : {spec.key} (batched engine, "
                  f"{result.n_trials} trials x {result.n_rounds} read-outs, "
                  f"backend {result.backend_name})")
        else:
            cut = spec.fn(graph, n_samples=args.samples, seed=args.seed)
            print(f"solver     : {spec.key}")
        solution = lifter.lift(cut.assignment)
        certificate = verify_certificate(
            problem, graph, lifter, assignment=cut.assignment, seed=args.seed
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    direction = "maximise" if problem.direction == "max" else "minimise"
    print(f"cut weight : {cut.weight:g}")
    print(f"objective  : {problem.objective(solution):g}  ({direction}, "
          f"native {problem.kind})")
    print(f"certificate: OK — value preservation verified on "
          f"{certificate.n_probes} probes + the solved cut "
          f"(max |error| {certificate.max_abs_error:.2e})")
    if args.save:
        from repro.experiments.runner import atomic_write_json

        atomic_write_json(args.save, {
            "problem": problem.to_dict(),
            "solver": spec.key,
            "cut_weight": float(cut.weight),
            "objective": float(problem.objective(solution)),
            "assignment": np.asarray(cut.assignment).tolist(),
            "solution": np.asarray(solution).tolist(),
            "certificate": {
                "n_probes": certificate.n_probes,
                "max_abs_error": certificate.max_abs_error,
            },
            "seed": args.seed,
        })
        print(f"\nresults written to {args.save}")
    return 0


def _command_engine(args: argparse.Namespace) -> int:
    from repro.circuits.lif_gw import LIFGWCircuit
    from repro.circuits.lif_trevisan import LIFTrevisanCircuit
    from repro.engine import EarlyStopConfig, resolve_backend
    from repro.experiments.runner import run_circuit_trials

    # Fail fast on a bad or unavailable backend spec, before the (possibly
    # expensive) graph load and offline SDP solve.
    try:
        resolve_backend(args.backend)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    graph = _load_graph(args)
    early_stop = None
    if args.early_stop_patience > 0:
        # Let the rule fire as soon as `patience` rounds have been seen —
        # EarlyStopConfig's default min_rounds floor (64) would silently
        # disable the flag for short runs.
        early_stop = EarlyStopConfig(
            patience=args.early_stop_patience,
            min_rounds=args.early_stop_patience,
        )
    # Build the circuit once (the LIF-GW SDP solve is the offline stage) so
    # the reported throughput — and any --compare speedup — measures the
    # simulation itself, not a repeated SDP solve.
    if args.circuit == "lif_gw":
        circuit = LIFGWCircuit(graph, seed=args.seed)
    else:
        circuit = LIFTrevisanCircuit(graph)
    result = run_circuit_trials(
        circuit=circuit,
        graph=None,
        n_trials=args.trials,
        n_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        early_stop=early_stop,
    )
    print(f"graph      : {graph.name} ({graph.n_vertices} vertices, {graph.n_edges} edges)")
    print(f"circuit    : {result.circuit_name}  backend: {result.backend_name}")
    print(f"batch      : {result.n_trials} trials x {result.n_rounds} read-outs"
          + (f" (early-stopped at {result.n_rounds}/{result.n_samples})"
             if result.early_stopped else ""))
    print(f"best cut   : {result.best_weight:g}  (of total edge weight {graph.total_weight:g})")
    if result.n_trials:
        mean = float(result.trial_best_weights.mean())
        print(f"trial best : mean {mean:g}  min {result.trial_best_weights.min():g}  "
              f"max {result.trial_best_weights.max():g}")
    print(f"throughput : {result.samples_per_second:,.0f} read-outs/s "
          f"({result.elapsed_seconds:.3f}s wall)")
    if args.compare:
        reference = run_circuit_trials(
            circuit=circuit,
            graph=None,
            n_trials=args.trials,
            n_samples=args.samples,
            seed=args.seed,
            use_engine=False,
        )
        # Per-read-out throughput ratio, so an early-stopped (truncated)
        # engine run is not credited for the rounds it skipped.
        speedup = (result.samples_per_second / reference.samples_per_second
                   if reference.samples_per_second > 0 else float("inf"))
        print(f"sequential : {reference.samples_per_second:,.0f} read-outs/s "
              f"({reference.elapsed_seconds:.3f}s wall)")
        if result.n_rounds == reference.n_rounds:
            match = bool(
                (result.trial_best_weights == reference.trial_best_weights).all()
            )
            print(f"speedup    : {speedup:.1f}x  per-trial bests match: {match}")
        else:
            print(f"speedup    : {speedup:.1f}x per read-out "
                  f"(engine truncated to {result.n_rounds}/{reference.n_rounds} rounds)")
    if args.save:
        save_results(
            args.save, "engine", [result],
            config={
                "circuit": args.circuit, "n_trials": args.trials,
                "n_samples": args.samples, "backend": args.backend,
                "seed": args.seed,
            },
        )
        print(f"\nresults written to {args.save}")
    return 0


def _command_graphs(_args: argparse.Namespace) -> int:
    from repro.experiments.reporting import format_table

    rows = []
    for name in list_empirical_graphs():
        spec = EMPIRICAL_GRAPHS[name]
        rows.append([name, spec.n_vertices, spec.n_edges, spec.kind, spec.family, spec.description])
    print(format_table(["graph", "n", "m", "kind", "family", "description"], rows))
    return 0


# ---------------------------------------------------------------------------
# Deprecated shims (delegate to the unified workload path)
# ---------------------------------------------------------------------------


def _command_compare(args: argparse.Namespace) -> int:
    _deprecated("compare", "run arena")
    solvers = tuple(name.strip() for name in args.solvers.split(",") if name.strip())
    overrides = {
        "solvers": solvers, "suite": args.suite, "trials": args.trials,
        "samples": args.budget, "max_seconds": args.max_seconds,
        "backend": args.backend, "use_engine": not args.no_engine,
        "workers": args.workers, "seed": args.seed,
    }
    return _execute_workload("arena", overrides, save=args.save, plot=args.plot)


def _command_figure3(args: argparse.Namespace) -> int:
    _deprecated("figure3", "run figure3")
    overrides = {
        "sizes": tuple(args.sizes), "probabilities": tuple(args.probabilities),
        "trials": args.graphs_per_cell, "samples": args.samples,
        "workers": args.workers, "seed": args.seed,
    }
    return _execute_workload("figure3", overrides, save=args.save, plot=args.plot)


def _command_figure4(args: argparse.Namespace) -> int:
    _deprecated("figure4", "run figure4")
    overrides = {
        "graphs": tuple(args.graphs), "samples": args.samples, "seed": args.seed,
    }
    return _execute_workload("figure4", overrides, save=args.save, plot=args.plot)


def _command_table1(args: argparse.Namespace) -> int:
    _deprecated("table1", "run table1")
    overrides = {
        "graphs": tuple(args.graphs or ()), "samples": args.samples, "seed": args.seed,
    }
    return _execute_workload("table1", overrides, save=args.save)


def _command_ablation(args: argparse.Namespace) -> int:
    _deprecated("ablation", "run ablation")
    overrides = {
        "kind": args.kind, "circuit": args.circuit, "vertices": args.vertices,
        "samples": args.samples, "seed": args.seed,
    }
    return _execute_workload("ablation", overrides, save=args.save)


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import ServiceConfig, SolverService, serve_http, serve_unix

    try:
        config = ServiceConfig(
            max_queue_depth=args.max_queue,
            max_batch_trials=args.batch_trials,
            max_trials_per_request=args.max_trials,
            max_request_vertices=args.max_vertices,
            default_timeout_seconds=args.timeout,
            portfolio_model=args.model,
        )
        service = SolverService(config)
        if args.socket is not None:
            server = serve_unix(service, args.socket)
            endpoint = f"unix:{args.socket}"
        else:
            server = serve_http(service, host=args.host, port=args.port)
            host, port = server.server_address[:2]
            endpoint = f"http://{host}:{port}"
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Printed unconditionally (and flushed) so wrappers binding --port 0 can
    # parse the ephemeral endpoint from the first stdout line.
    print(f"serving on {endpoint}", flush=True)

    def _drain(signum, frame):  # noqa: ARG001 - signal handler signature
        # shutdown() blocks until serve_forever() returns, and the handler
        # interrupts the very thread running serve_forever() — so it must be
        # issued from a helper thread or the two deadlock.
        import threading

        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.shutdown(drain=True)
        stats = service.stats()
        print(
            f"drained: {stats['completed']} completed, "
            f"{stats['engine']['invocations']} engine invocation(s), "
            f"coalesce ratio {stats['engine']['coalesce_ratio']:.2f}",
            flush=True,
        )
    return 0


def _command_portfolio(args: argparse.Namespace) -> int:
    from repro.portfolio import explain_model, fit_from_paths, load_model, save_model

    try:
        if args.action == "fit":
            model = fit_from_paths(args.paths)
            if args.out is not None:
                save_model(args.out, model)
                print(f"wrote portfolio model to {args.out}")
        else:
            if len(args.paths) != 1:
                raise ValidationError(
                    "portfolio explain takes exactly one model file, got "
                    f"{len(args.paths)}"
                )
            model = load_model(args.paths[0])
        print(explain_model(model, top=args.top))
    except (ValidationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


_COMMANDS = {
    "run": _command_run,
    "workloads": _command_workloads,
    "backends": _command_backends,
    "merge": _command_merge,
    "bench": _command_bench,
    "profile": _command_profile,
    "solve": _command_solve,
    "engine": _command_engine,
    "serve": _command_serve,
    "portfolio": _command_portfolio,
    "compare": _command_compare,
    "figure3": _command_figure3,
    "figure4": _command_figure4,
    "table1": _command_table1,
    "ablation": _command_ablation,
    "graphs": _command_graphs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
