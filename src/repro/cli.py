"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve       Run one solver (circuit or classical) on a graph and print the cut.
engine      Run trial-parallel batched circuit simulation (repro.engine):
            many independent trials of one circuit on one graph in a single
            vectorised solve, with dense/sparse weight backends and optional
            early stopping; ``--compare`` also times the sequential path.
compare     Race several registered solvers head-to-head over a graph suite
            under one shared budget (repro.arena) and print per-graph tables
            plus the aggregate leaderboard.
figure3     Run a (reduced) Figure 3 Erdős–Rényi sweep.
figure4     Run Figure 4 panels on empirical graphs.
table1      Regenerate Table I rows.
ablation    Run the device-imperfection / rank / learning-rate ablations.
graphs      List the empirical graphs in the Table I registry.

The experiment commands and ``engine`` accept ``--save results.json`` to
persist results through :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.algorithms.registry import get_solver, list_solvers
from repro.arena.suite import list_suites
from repro.experiments.ablations import (
    run_device_imperfection_ablation,
    run_learning_rate_ablation,
    run_rank_ablation,
)
from repro.experiments.config import AblationConfig, Figure3Config, Figure4Config, Table1Config
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.reporting import (
    format_figure3_report,
    format_figure4_report,
    format_table,
    format_table1_report,
)
from repro.experiments.runner import save_results
from repro.experiments.table1 import run_table1
from repro.graphs.generators import erdos_renyi
from repro.graphs.io import read_edge_list, read_matrix_market
from repro.graphs.repository import EMPIRICAL_GRAPHS, list_empirical_graphs, load_empirical_graph
from repro.parallel.pool import ParallelConfig
from repro.plotting.ascii import render_curves
from repro.utils.logging import configure_logging

__all__ = ["main", "build_parser"]


def _load_graph(args: argparse.Namespace):
    """Resolve the graph requested by --graph / --er options."""
    if args.graph is not None:
        name = args.graph
        if name in EMPIRICAL_GRAPHS:
            return load_empirical_graph(name, seed=args.seed)
        if name.endswith(".mtx"):
            return read_matrix_market(name)
        return read_edge_list(name)
    n, p = args.er
    return erdos_renyi(int(n), float(p), seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stochastic neuromorphic MAXCUT circuits (paper reproduction CLI)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument("--save", type=str, default=None, help="write results to this JSON file")
    parser.add_argument("--verbose", action="store_true", help="enable library logging")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # solve ------------------------------------------------------------------
    solve = subparsers.add_parser("solve", help="run one solver on one graph")
    solve.add_argument("--solver", choices=list_solvers(), default="lif_gw")
    solve.add_argument("--graph", type=str, default=None,
                       help="Table I graph name or an edge-list / .mtx file path")
    solve.add_argument("--er", type=float, nargs=2, metavar=("N", "P"), default=(50, 0.25),
                       help="Erdős–Rényi parameters used when --graph is not given")
    solve.add_argument("--samples", type=int, default=512)

    # engine -----------------------------------------------------------------
    engine = subparsers.add_parser(
        "engine",
        help="batched trial-parallel circuit simulation (repro.engine)",
        description=(
            "Run many independent trials of one circuit on one graph through "
            "the batched solver engine. Trial i is seeded with "
            "SeedSequence(seed, spawn_key=(i,)), so results are reproducible "
            "and (dense backend, no early stop) bit-identical to running the "
            "sequential circuit once per trial."
        ),
    )
    engine.add_argument("--circuit", choices=["lif_gw", "lif_tr"], default="lif_gw")
    engine.add_argument("--graph", type=str, default=None,
                        help="Table I graph name or an edge-list / .mtx file path")
    engine.add_argument("--er", type=float, nargs=2, metavar=("N", "P"), default=(100, 0.25),
                        help="Erdős–Rényi parameters used when --graph is not given")
    engine.add_argument("--trials", type=int, default=64,
                        help="number of independent trials in the batch")
    engine.add_argument("--samples", type=int, default=256,
                        help="cut read-outs per trial")
    engine.add_argument("--backend", type=str, default="auto",
                        help="weight backend: auto, dense, or sparse")
    engine.add_argument("--early-stop-patience", type=int, default=0, metavar="ROUNDS",
                        help="stop after this many non-improving read-out rounds "
                             "(0 disables early stopping)")
    engine.add_argument("--compare", action="store_true",
                        help="also run the sequential per-trial path and report speedup")

    # compare ----------------------------------------------------------------
    compare = subparsers.add_parser(
        "compare",
        help="race registered solvers over a graph suite (repro.arena)",
        description=(
            "Run a subset of the solver registry head-to-head over a named "
            "graph suite under one shared trial/sample budget. Batchable "
            "circuit solvers ride the trial-parallel batched engine; "
            "sequential solvers run their trials through parallel_map. "
            "Prints one table per graph plus the aggregate leaderboard."
        ),
    )
    compare.add_argument("--solvers", type=str, default="lif_gw,lif_tr,gw,trevisan,random",
                         help="comma-separated registry keys (see `repro solve --help`)")
    compare.add_argument("--suite", choices=list_suites(), default="er-small",
                         help="graph suite to race on")
    compare.add_argument("--budget", type=int, default=256, metavar="SAMPLES",
                         help="per-trial n_samples budget shared by every solver")
    compare.add_argument("--trials", type=int, default=4,
                         help="independent trials per stochastic solver and graph")
    compare.add_argument("--max-seconds", type=float, default=None, metavar="S",
                         help="optional wall-clock cap per (solver, graph) cell "
                              "(capped cells run trials serially, overriding --workers)")
    compare.add_argument("--backend", type=str, default="auto",
                         help="engine weight backend for batchable solvers")
    compare.add_argument("--workers", type=int, default=1,
                         help="process workers for sequential solvers' trials")
    compare.add_argument("--no-engine", action="store_true",
                         help="run batchable circuits through the sequential path too")
    compare.add_argument("--plot", action="store_true",
                         help="render an ASCII bar chart of the leaderboard")
    # SUPPRESS (not None) so a global `repro --save out.json compare ...`
    # isn't clobbered by this subparser's default when the flag is omitted.
    compare.add_argument("--save", type=str, default=argparse.SUPPRESS, metavar="FILE",
                         help="write results to this JSON file (same as the global --save)")

    # figure3 ----------------------------------------------------------------
    figure3 = subparsers.add_parser("figure3", help="Erdős–Rényi convergence sweep (Figure 3)")
    figure3.add_argument("--sizes", type=int, nargs="+", default=[50])
    figure3.add_argument("--probabilities", type=float, nargs="+", default=[0.25])
    figure3.add_argument("--graphs-per-cell", type=int, default=3)
    figure3.add_argument("--samples", type=int, default=512)
    figure3.add_argument("--workers", type=int, default=1)
    figure3.add_argument("--plot", action="store_true", help="render ASCII convergence plots")

    # figure4 ----------------------------------------------------------------
    figure4 = subparsers.add_parser("figure4", help="empirical-graph convergence curves (Figure 4)")
    figure4.add_argument("--graphs", nargs="+", default=["hamming6-2"],
                         choices=list_empirical_graphs(), metavar="GRAPH")
    figure4.add_argument("--samples", type=int, default=512)
    figure4.add_argument("--plot", action="store_true")

    # table1 -----------------------------------------------------------------
    table1 = subparsers.add_parser("table1", help="maximum cut values table (Table I)")
    table1.add_argument("--graphs", nargs="+", default=None,
                        choices=list_empirical_graphs(), metavar="GRAPH")
    table1.add_argument("--samples", type=int, default=1024)

    # ablation ---------------------------------------------------------------
    ablation = subparsers.add_parser("ablation", help="device / rank / learning-rate ablations")
    ablation.add_argument("--kind", choices=["devices", "rank", "learning-rate"], default="devices")
    ablation.add_argument("--circuit", choices=["lif_gw", "lif_tr"], default="lif_gw")
    ablation.add_argument("--vertices", type=int, default=50)
    ablation.add_argument("--samples", type=int, default=256)

    # graphs -----------------------------------------------------------------
    subparsers.add_parser("graphs", help="list the Table I empirical graph registry")

    return parser


def _command_solve(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    solver = get_solver(args.solver)
    cut = solver(graph, n_samples=args.samples, seed=args.seed)
    print(f"graph      : {graph.name} ({graph.n_vertices} vertices, {graph.n_edges} edges)")
    print(f"solver     : {args.solver}")
    print(f"cut weight : {cut.weight:g}  (of total edge weight {graph.total_weight:g})")
    sides = cut.side_sizes
    print(f"partition  : {sides[0]} / {sides[1]} vertices")
    return 0


def _command_engine(args: argparse.Namespace) -> int:
    from repro.circuits.lif_gw import LIFGWCircuit
    from repro.circuits.lif_trevisan import LIFTrevisanCircuit
    from repro.engine import EarlyStopConfig, list_backends
    from repro.experiments.runner import run_circuit_trials

    # Fail fast on a bad backend name, before the (possibly expensive)
    # graph load and offline SDP solve.
    known_backends = list_backends()
    if args.backend != "auto" and args.backend not in known_backends:
        print(
            f"error: unknown backend {args.backend!r}; "
            f"choose from: auto, {', '.join(known_backends)}",
            file=sys.stderr,
        )
        return 2

    graph = _load_graph(args)
    early_stop = None
    if args.early_stop_patience > 0:
        # Let the rule fire as soon as `patience` rounds have been seen —
        # EarlyStopConfig's default min_rounds floor (64) would silently
        # disable the flag for short runs.
        early_stop = EarlyStopConfig(
            patience=args.early_stop_patience,
            min_rounds=args.early_stop_patience,
        )
    # Build the circuit once (the LIF-GW SDP solve is the offline stage) so
    # the reported throughput — and any --compare speedup — measures the
    # simulation itself, not a repeated SDP solve.
    if args.circuit == "lif_gw":
        circuit = LIFGWCircuit(graph, seed=args.seed)
    else:
        circuit = LIFTrevisanCircuit(graph)
    result = run_circuit_trials(
        circuit=circuit,
        graph=None,
        n_trials=args.trials,
        n_samples=args.samples,
        seed=args.seed,
        backend=args.backend,
        early_stop=early_stop,
    )
    print(f"graph      : {graph.name} ({graph.n_vertices} vertices, {graph.n_edges} edges)")
    print(f"circuit    : {result.circuit_name}  backend: {result.backend_name}")
    print(f"batch      : {result.n_trials} trials x {result.n_rounds} read-outs"
          + (f" (early-stopped at {result.n_rounds}/{result.n_samples})"
             if result.early_stopped else ""))
    print(f"best cut   : {result.best_weight:g}  (of total edge weight {graph.total_weight:g})")
    if result.n_trials:
        mean = float(result.trial_best_weights.mean())
        print(f"trial best : mean {mean:g}  min {result.trial_best_weights.min():g}  "
              f"max {result.trial_best_weights.max():g}")
    print(f"throughput : {result.samples_per_second:,.0f} read-outs/s "
          f"({result.elapsed_seconds:.3f}s wall)")
    if args.compare:
        reference = run_circuit_trials(
            circuit=circuit,
            graph=None,
            n_trials=args.trials,
            n_samples=args.samples,
            seed=args.seed,
            use_engine=False,
        )
        # Per-read-out throughput ratio, so an early-stopped (truncated)
        # engine run is not credited for the rounds it skipped.
        speedup = (result.samples_per_second / reference.samples_per_second
                   if reference.samples_per_second > 0 else float("inf"))
        print(f"sequential : {reference.samples_per_second:,.0f} read-outs/s "
              f"({reference.elapsed_seconds:.3f}s wall)")
        if result.n_rounds == reference.n_rounds:
            match = bool(
                (result.trial_best_weights == reference.trial_best_weights).all()
            )
            print(f"speedup    : {speedup:.1f}x  per-trial bests match: {match}")
        else:
            print(f"speedup    : {speedup:.1f}x per read-out "
                  f"(engine truncated to {result.n_rounds}/{reference.n_rounds} rounds)")
    if args.save:
        save_results(
            args.save, "engine", [result],
            config={
                "circuit": args.circuit, "n_trials": args.trials,
                "n_samples": args.samples, "backend": args.backend,
                "seed": args.seed,
            },
        )
        print(f"\nresults written to {args.save}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.arena import ArenaBudget, run_arena
    from repro.experiments.reporting import format_arena_report
    from repro.plotting.ascii import render_leaderboard
    from repro.utils.validation import ValidationError

    solvers = [name.strip() for name in args.solvers.split(",") if name.strip()]
    try:
        result = run_arena(
            solvers,
            suite=args.suite,
            budget=ArenaBudget(
                n_trials=args.trials,
                n_samples=args.budget,
                max_seconds=args.max_seconds,
            ),
            seed=args.seed,
            backend=args.backend,
            use_engine=not args.no_engine,
            parallel=ParallelConfig(n_workers=args.workers),
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_arena_report(result))
    if args.plot:
        print()
        print(render_leaderboard(result))
    winner = result.winner()
    if winner is not None:
        print(f"\nwinner: {winner}  ({result.elapsed_seconds:.3f}s total)")
    if args.save:
        save_results(
            args.save, "compare", result.entries,
            config={
                "suite": result.suite, "solvers": list(result.solvers),
                "graphs": list(result.graph_names), "n_trials": result.n_trials,
                "n_samples": result.n_samples, "seed": result.seed,
                "backend": args.backend, "use_engine": not args.no_engine,
            },
        )
        print(f"\nresults written to {args.save}")
    return 0


def _command_figure3(args: argparse.Namespace) -> int:
    config = Figure3Config(
        sizes=tuple(args.sizes),
        probabilities=tuple(args.probabilities),
        n_graphs_per_cell=args.graphs_per_cell,
        n_samples=args.samples,
        seed=args.seed,
    )
    cells = run_figure3(config=config, parallel=ParallelConfig(n_workers=args.workers))
    print(format_figure3_report(cells))
    if args.plot:
        for cell in cells:
            print()
            print(render_curves(
                cell.sample_counts, cell.curves,
                title=f"G({cell.n_vertices}, {cell.probability:g}) relative cut weight",
            ))
    if args.save:
        save_results(args.save, "figure3", cells, config={"n_samples": args.samples})
        print(f"\nresults written to {args.save}")
    return 0


def _command_figure4(args: argparse.Namespace) -> int:
    config = Figure4Config(n_samples=args.samples, seed=args.seed)
    panels = run_figure4(args.graphs, config=config)
    print(format_figure4_report(panels))
    if args.plot:
        for panel in panels:
            print()
            print(render_curves(
                panel.sample_counts, panel.curves,
                title=f"{panel.graph_name} relative cut weight",
            ))
    if args.save:
        save_results(args.save, "figure4", panels, config={"n_samples": args.samples})
        print(f"\nresults written to {args.save}")
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    config = Table1Config(n_samples=args.samples, seed=args.seed)
    rows = run_table1(args.graphs, config=config)
    print(format_table1_report(rows))
    if args.save:
        save_results(args.save, "table1", rows, config={"n_samples": args.samples})
        print(f"\nresults written to {args.save}")
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    config = AblationConfig(n_vertices=args.vertices, n_samples=args.samples, seed=args.seed)
    if args.kind == "devices":
        points = run_device_imperfection_ablation(config=config, circuit=args.circuit)
    elif args.kind == "rank":
        points = run_rank_ablation(config=config)
    else:
        points = run_learning_rate_ablation(config=config)
    rows = [[p.setting, p.mean_relative_cut, p.sem] for p in points]
    print(format_table(["setting", "relative cut", "sem"], rows))
    if args.save:
        save_results(args.save, f"ablation-{args.kind}", points, config={"circuit": args.circuit})
        print(f"\nresults written to {args.save}")
    return 0


def _command_graphs(_args: argparse.Namespace) -> int:
    rows = []
    for name in list_empirical_graphs():
        spec = EMPIRICAL_GRAPHS[name]
        rows.append([name, spec.n_vertices, spec.n_edges, spec.kind, spec.family, spec.description])
    print(format_table(["graph", "n", "m", "kind", "family", "description"], rows))
    return 0


_COMMANDS = {
    "solve": _command_solve,
    "engine": _command_engine,
    "compare": _command_compare,
    "figure3": _command_figure3,
    "figure4": _command_figure4,
    "table1": _command_table1,
    "ablation": _command_ablation,
    "graphs": _command_graphs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging()
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
