"""HTTP shell around :class:`repro.serve.service.SolverService`.

Stdlib-only (``http.server``): a :class:`ThreadingHTTPServer` whose handler
threads block on their job's completion event while the service's single
batching worker coalesces across them — which is exactly how concurrent
requests end up in one engine batch.

Endpoints
---------
``POST /solve``
    Body: one request JSON object (:mod:`repro.serve.protocol`).  Replies
    200 with the response payload, 400 on malformed payloads, 429 when the
    queue is full, 503 while draining, 504 on queue/wait timeout.
``GET /stats``
    Service metrics (:meth:`SolverService.stats`).
``GET /metrics``
    The same registry in Prometheus text exposition format (counters,
    queue-depth gauge, cache gauges, latency histogram) — point a scraper
    at it; ``/stats`` stays the JSON view.
``GET /healthz``
    ``{"status": "ok", "draining": false}`` — the probe endpoint.

:func:`serve_http` binds a TCP port (0 = ephemeral); :func:`serve_unix`
binds an ``AF_UNIX`` socket path for same-host callers.  Both return the
bound server; run :meth:`~socketserver.BaseServer.serve_forever` yourself
(the CLI does, with SIGTERM mapped to a draining shutdown).
"""

from __future__ import annotations

import json
import os
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.exposition import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.serve.protocol import error_payload
from repro.serve.service import AdmissionError, SolverService
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["ServeHTTPServer", "ServeUnixServer", "serve_http", "serve_unix"]

_logger = get_logger("serve.http")

#: Extra wait granted on top of a request's own admission timeout, so the
#: service (not the transport) is what times requests out.
_WAIT_SLACK_SECONDS = 5.0

#: Request-body size cap: a dense float matrix for the largest admissible
#: instance fits comfortably; anything bigger is a client error, not a job.
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> SolverService:
        return self.server.service

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _logger.debug("%s %s", self.address_string(), format % args)

    def address_string(self) -> str:
        # AF_UNIX peers have no (host, port) pair.
        if isinstance(self.client_address, (tuple, list)) and self.client_address:
            return str(self.client_address[0])
        return "local"

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._reply_raw(status, body, "application/json")

    def _reply_raw(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- endpoints ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/stats":
            self._reply(200, self.service.stats())
        elif self.path == "/metrics":
            body = render_prometheus(self.service.registry).encode("utf-8")
            self._reply_raw(200, body, PROMETHEUS_CONTENT_TYPE)
        elif self.path == "/healthz":
            self._reply(200, {"status": "ok", "draining": self.service.draining})
        else:
            self._reply(404, error_payload("not_found", f"no such endpoint: {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        if self.path != "/solve":
            self._reply(404, error_payload("not_found", f"no such endpoint: {self.path}"))
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if not (0 < length <= _MAX_BODY_BYTES):
            self._reply(400, error_payload(
                "bad_request",
                f"Content-Length must be in (0, {_MAX_BODY_BYTES}]",
            ))
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, error_payload("bad_request", f"body is not JSON: {exc}"))
            return
        try:
            job = self.service.submit(payload)
        except AdmissionError as exc:
            status = {"queue_full": 429, "draining": 503}.get(exc.reason, 400)
            self._reply(status, error_payload(exc.reason, str(exc)))
            return
        except ValidationError as exc:
            self._reply(400, error_payload("bad_request", str(exc)))
            return
        timeout = (
            job.spec.timeout_seconds
            or self.service.config.default_timeout_seconds
        ) + _WAIT_SLACK_SECONDS
        response = job.wait(timeout)
        if response is None:
            self._reply(504, error_payload("timeout", "timed out waiting for the solve"))
            return
        self._reply(200 if response.get("status") == "ok" else
                    (504 if response.get("reason") == "timeout" else 503),
                    response)


class ServeHTTPServer(ThreadingHTTPServer):
    """TCP transport; one handler thread per in-flight request."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: SolverService) -> None:
        self.service = service
        super().__init__(address, _Handler)


class ServeUnixServer(ThreadingHTTPServer):
    """Same protocol over an ``AF_UNIX`` socket path (same-host clients)."""

    daemon_threads = True
    address_family = socket.AF_UNIX

    def __init__(self, path: str, service: SolverService) -> None:
        self.service = service
        if os.path.exists(path):
            os.unlink(path)  # stale socket from a previous run
        super().__init__(path, _Handler)

    def server_bind(self) -> None:
        # The stock implementation derives server_name/port from a TCP
        # getsockname(); a unix path has neither.
        self.socket.bind(self.server_address)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def server_close(self) -> None:
        super().server_close()
        try:
            os.unlink(self.server_address)
        except OSError:
            pass


def serve_http(
    service: SolverService, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """Bind the service on ``host:port`` (0 = ephemeral) and return the server."""
    server = ServeHTTPServer((host, port), service)
    _logger.info("serving on http://%s:%d", *server.server_address[:2])
    return server


def serve_unix(service: SolverService, path: str) -> ServeUnixServer:
    """Bind the service on a unix socket *path* and return the server."""
    server = ServeUnixServer(path, service)
    _logger.info("serving on unix socket %s", path)
    return server
