"""Stdlib client for a running ``repro serve`` daemon.

:class:`ServeClient` speaks the JSON protocol of :mod:`repro.serve.http`
over TCP (``host``/``port``) or an ``AF_UNIX`` socket (``socket_path``)
using nothing beyond ``http.client``:

.. code-block:: python

    from repro.graphs.generators import erdos_renyi
    from repro.serve.client import ServeClient

    client = ServeClient(port=8765)
    response = client.solve_graph(erdos_renyi(24, 0.3, seed=1), trials=8, seed=7)
    print(response["best_weight"])

Every method returns the decoded response payload; non-2xx statuses raise
:class:`ServeClientError` carrying the server's reason code.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Optional

from repro.serve.protocol import solve_payload
from repro.utils.validation import ValidationError

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ValidationError):
    """A non-2xx response, with the server's HTTP status and reason code."""

    def __init__(self, status: int, reason: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` path instead of host:port."""

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self._path)


class ServeClient:
    """One serve endpoint; connections are opened per call (stateless)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
        timeout: Optional[float] = 120.0,
    ) -> None:
        if (port is None) == (socket_path is None):
            raise ValidationError("pass exactly one of port / socket_path")
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        connection = self._connection()
        try:
            payload = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            decoded = json.loads(response.read().decode("utf-8"))
            if not 200 <= response.status < 300:
                raise ServeClientError(
                    response.status,
                    str(decoded.get("reason", "error")),
                    str(decoded.get("error", f"HTTP {response.status}")),
                )
            return decoded
        finally:
            connection.close()

    # -- endpoints ---------------------------------------------------------

    def solve(self, payload: dict) -> dict:
        """POST an already-shaped request payload to ``/solve``."""
        return self._request("POST", "/solve", payload)

    def solve_graph(self, graph, **options: Any) -> dict:
        """Solve a :class:`repro.graphs.graph.Graph`; options are wire keys
        (``circuit``, ``trials``, ``samples``, ``seed``, ``backend``, ...)."""
        return self.solve(solve_payload(graph=graph, **options))

    def solve_problem(self, problem, **options: Any) -> dict:
        """Solve any :class:`repro.problems.base.Problem` via the compiler."""
        return self.solve(solve_payload(problem=problem, **options))

    def stats(self) -> dict:
        """GET ``/stats`` — the service metrics payload."""
        return self._request("GET", "/stats")

    def health(self) -> dict:
        """GET ``/healthz``."""
        return self._request("GET", "/healthz")
