"""Wire format of the solve service: request parsing, response shaping.

One request = one JSON object describing a solve:

.. code-block:: json

    {"graph": {"n_vertices": 4, "edges": [[0, 1, 1.0], ...]},
     "circuit": "lif_tr", "trials": 8, "samples": 64, "seed": 7}

or, for any compiled problem class (QUBO, Ising, MAXDICUT, MAX2SAT):

.. code-block:: json

    {"problem": {"kind": "qubo", "matrix": [[...], ...]},
     "trials": 8, "samples": 64, "seed": 7}

Exactly one of ``graph`` / ``problem`` must be present.  The parsed form is
a :class:`SolveSpec`; unknown keys are rejected so client typos fail loudly
instead of silently running defaults.

Seeding and identity
--------------------
``seed`` is the request's *sampling* root: trial *i* runs with
``SeedSequence(seed, spawn_key=(i,))``, the engine's standard derivation, so
a served answer is bit-identical to ``repro solve`` / a direct engine run
with the same seed — regardless of which batch the service coalesced the
request into.  ``setup_seed`` (default 0) seeds the *offline* stages instead:
the LIF-GW circuit's SDP solve and the problem compiler's certificate probes.
It is part of the coalescing shape key, never of the per-trial sampling, so
requests with different sampling seeds still share one batch.

Portfolio routing
-----------------
``"circuit"`` (or its client-friendly alias ``"solver"``) also accepts
``"auto"`` / ``"portfolio"``: the spec parses with ``circuit="auto"`` and
the service resolves the actual engine circuit per instance at admission
time via :func:`repro.portfolio.solver.route_circuit` — *before* the job
enters the queue, so the routed request coalesces, caches, and answers
bit-identically to one that named the chosen circuit directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.graphs.graph import Graph
from repro.graphs.io import graph_from_dict
from repro.problems.base import Problem
from repro.problems.io import problem_from_dict
from repro.utils.validation import ValidationError

__all__ = [
    "SolveSpec",
    "parse_solve_payload",
    "solve_payload",
    "error_payload",
    "KNOWN_CIRCUITS",
    "DEFAULT_CIRCUIT",
]

KNOWN_CIRCUITS = ("lif_gw", "lif_tr")
DEFAULT_CIRCUIT = "lif_gw"
#: Sentinel circuit meaning "route per instance via the portfolio".
AUTO_CIRCUIT = "auto"
#: Wire spellings that resolve to :data:`AUTO_CIRCUIT`.
_AUTO_NAMES = ("auto", "portfolio")

_KNOWN_KEYS = frozenset({
    "graph", "problem", "circuit", "solver", "trials", "samples", "seed",
    "backend", "setup_seed", "timeout_seconds", "deadline_seconds",
})


def _parse_count(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{key} must be an integer, got {value!r}")
    if value < 1:
        raise ValidationError(f"{key} must be >= 1, got {value}")
    return value


def _parse_seed(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{key} must be an integer, got {value!r}")
    if value < 0:
        raise ValidationError(f"{key} must be >= 0, got {value}")
    return value


def _parse_seconds(payload: Mapping[str, Any], key: str) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{key} must be a number, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{key} must be positive, got {value}")
    return float(value)


@dataclass(frozen=True)
class SolveSpec:
    """A parsed, validated solve request (see the module docstring).

    Attributes
    ----------
    graph:
        The graph to cut.  For problem requests this stays ``None`` at parse
        time; the service fills in the *compiled* graph (cached by problem
        fingerprint).
    problem:
        The native problem instance of a ``problem`` request, else ``None``.
    circuit, backend:
        Engine routing — part of the coalescing shape key.
    n_trials, n_samples:
        Batch geometry of this request (trials are what coalescing
        concatenates; samples must match across a batch).
    seed:
        Per-trial sampling root (see module docstring).
    setup_seed:
        Offline-stage root: LIF-GW SDP build, compile certificate probes.
    timeout_seconds:
        Queue-admission deadline: if the request has not *started* executing
        within this window it is answered with a timeout error instead of
        occupying a batch slot.
    deadline_seconds:
        Engine wall-clock deadline forwarded to
        :attr:`repro.engine.SolveRequest.deadline_seconds` (partial-but-valid
        truncation).  The tightest deadline in a coalesced batch applies.
    """

    graph: Optional[Graph]
    problem: Optional[Problem]
    circuit: str = DEFAULT_CIRCUIT
    n_trials: int = 8
    n_samples: int = 64
    seed: int = 0
    backend: str = "auto"
    setup_seed: int = 0
    timeout_seconds: Optional[float] = None
    deadline_seconds: Optional[float] = None


def parse_solve_payload(payload: Any) -> SolveSpec:
    """Validate a request JSON object into a :class:`SolveSpec`."""
    if not isinstance(payload, Mapping):
        raise ValidationError(
            f"solve request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - _KNOWN_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown request key(s) {unknown}; known keys: {sorted(_KNOWN_KEYS)}"
        )
    has_graph = payload.get("graph") is not None
    has_problem = payload.get("problem") is not None
    if has_graph == has_problem:
        raise ValidationError(
            "a solve request needs exactly one of 'graph' or 'problem'"
        )
    graph = graph_from_dict(payload["graph"]) if has_graph else None
    problem = problem_from_dict(payload["problem"]) if has_problem else None
    # "solver" is the client-friendly alias for "circuit" (it is what the
    # CLI calls the same concept); when both appear they must agree.
    circuit_given = payload.get("circuit")
    solver_given = payload.get("solver")
    if circuit_given is not None and solver_given is not None \
            and str(circuit_given) != str(solver_given):
        raise ValidationError(
            f"'circuit' ({circuit_given!r}) and 'solver' ({solver_given!r}) "
            "disagree; pass one of them"
        )
    chosen = circuit_given if circuit_given is not None else solver_given
    circuit = str(chosen) if chosen is not None else DEFAULT_CIRCUIT
    if circuit in _AUTO_NAMES:
        circuit = AUTO_CIRCUIT
    elif circuit not in KNOWN_CIRCUITS:
        raise ValidationError(
            f"unknown circuit {circuit!r}; known circuits: "
            f"{list(KNOWN_CIRCUITS) + [AUTO_CIRCUIT]}"
        )
    return SolveSpec(
        graph=graph,
        problem=problem,
        circuit=circuit,
        n_trials=_parse_count(payload, "trials", 8),
        n_samples=_parse_count(payload, "samples", 64),
        seed=_parse_seed(payload, "seed", 0),
        backend=str(payload.get("backend", "auto")),
        setup_seed=_parse_seed(payload, "setup_seed", 0),
        timeout_seconds=_parse_seconds(payload, "timeout_seconds"),
        deadline_seconds=_parse_seconds(payload, "deadline_seconds"),
    )


def solve_payload(
    graph: Optional[Graph] = None,
    problem: Optional[Problem] = None,
    **options: Any,
) -> dict:
    """Render a request payload dict (the client-side inverse of parsing).

    ``options`` are the wire keys (``circuit``, ``trials``, ``samples``,
    ``seed``, ...); ``None`` values are dropped so defaults stay
    server-side.
    """
    from repro.graphs.io import graph_to_dict

    if (graph is None) == (problem is None):
        raise ValidationError("pass exactly one of graph / problem")
    payload: dict = {}
    if graph is not None:
        payload["graph"] = graph_to_dict(graph)
    else:
        payload["problem"] = problem.to_dict()
    for key, value in options.items():
        if key not in _KNOWN_KEYS or key in ("graph", "problem"):
            raise ValidationError(f"unknown request option {key!r}")
        if value is not None:
            payload[key] = value
    # Round-trip through the validator so client-side mistakes surface
    # before anything crosses the wire.
    parse_solve_payload(payload)
    return payload


def error_payload(reason: str, message: str) -> dict:
    """The uniform error response body (paired with an HTTP status)."""
    return {"status": "error", "reason": reason, "error": message}
