"""The solve service: admission, cross-request batching, result caching.

:class:`SolverService` is the transport-independent heart of ``repro serve``
(the HTTP/Unix-socket layer in :mod:`repro.serve.http` is a thin shell over
it).  A request's life:

1. **Admission** (caller's thread).  The payload is parsed
   (:mod:`repro.serve.protocol`), problem requests are compiled to MAXCUT
   through a content-addressed compile cache (certificate verified once per
   distinct instance), and the admission policy is enforced: queue depth
   bound, per-request trial budget, instance size cap, drain state.
   Violations raise :class:`AdmissionError` with a machine-readable reason.
2. **Result cache.**  A content key over (graph fingerprint, circuit,
   backend, seeds, batch geometry) indexes previously served responses —
   an identical re-ask is answered immediately without touching the queue.
3. **Batching** (worker thread).  The scheduler pops the oldest queued job
   and coalesces every other queued job sharing its *shape* — (graph
   fingerprint, circuit, backend, setup seed, sample count) — into one
   engine batch along the (trials, neurons) axis, up to
   ``max_batch_trials`` trials, via :func:`repro.engine.coalesce_requests`.
   Jobs that merely share the *fuse* shape (same circuit, backend, sample
   count, and vertex count on **different** graphs) join the batch too, as
   separate instance lanes stacked along the graph axis by
   :func:`repro.engine.solve_instance_block` — one fused kernel invocation
   when the lanes' engine plans agree exactly, with a bit-identical
   per-lane fallback when they do not.  Each request keeps its own
   per-trial seeds, so the split responses are bit-identical to standalone
   engine runs with the same seed (deadline requests run solo: wall-clock
   truncation is the one thing batch-mates could perturb).
4. **Response.**  Split results are shaped into JSON-safe payloads (problem
   requests additionally lift the best assignment back to a native solution
   with its certificate constants), stored in the result cache, and handed
   to the waiting caller.

Metrics for every stage (queue depth, batch occupancy, coalesce ratio,
cache hit rates, latency percentiles) are served by :meth:`SolverService.stats`
— the ``/stats`` endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.engine import (
    SolveRequest,
    SolveResult,
    coalesce_requests,
    solve,
    solve_instance_block,
    split_result,
)
from repro.engine.xp import parse_backend_spec
from repro.obs.metrics import MetricsRegistry, nearest_rank_percentile
from repro.obs.trace import span
from repro.serve.cache import ContentAddressedCache, content_key
from repro.serve.protocol import (
    AUTO_CIRCUIT,
    SolveSpec,
    error_payload,
    parse_solve_payload,
)
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["AdmissionError", "ServiceConfig", "ServeJob", "SolverService"]

_logger = get_logger("serve")


class AdmissionError(ValidationError):
    """A request refused at the door, with a machine-readable *reason*.

    Reasons: ``"queue_full"``, ``"budget"``, ``"too_large"``, ``"draining"``,
    ``"bad_backend"``.
    The HTTP layer maps these onto status codes (429 for ``queue_full``,
    503 for ``draining``, 400 otherwise).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ServiceConfig:
    """Admission policy and batching/caching knobs of a :class:`SolverService`.

    Attributes
    ----------
    max_queue_depth:
        Jobs allowed to wait; submissions beyond it are rejected
        (``queue_full``) so clients back off instead of piling on.
    max_batch_trials:
        Trial-axis ceiling of one coalesced engine batch.  A single job may
        exceed it (it then rides alone); coalescing never does.
    max_trials_per_request:
        Per-request trial budget cap (``budget`` rejection above it).
    max_request_vertices:
        Instance size cap, checked on the graph actually solved (the
        *compiled* graph for problem requests).
    default_timeout_seconds:
        Admission deadline applied when a request carries no
        ``timeout_seconds``: a job still queued past it is answered with a
        timeout error instead of occupying a batch slot.
    circuit_cache_entries / compile_cache_entries / result_cache_entries:
        Bounds of the three content-addressed caches (built circuits —
        including the LIF-GW SDP stage — compiled problems, and served
        responses).
    latency_window:
        Completed-request latencies kept for the p50/p95 stats.
    portfolio_model:
        Optional path to a persisted :class:`repro.portfolio.priors.PortfolioModel`
        used to route ``"solver": "auto"`` requests (loaded lazily on the
        first auto request).  Without one, auto requests use the
        deterministic cold heuristic of
        :func:`repro.portfolio.solver.route_circuit`.
    """

    max_queue_depth: int = 64
    max_batch_trials: int = 64
    max_trials_per_request: int = 256
    max_request_vertices: int = 4096
    default_timeout_seconds: float = 60.0
    circuit_cache_entries: int = 16
    compile_cache_entries: int = 32
    result_cache_entries: int = 256
    latency_window: int = 512
    portfolio_model: Optional[str] = None

    def __post_init__(self) -> None:
        for name in (
            "max_queue_depth", "max_batch_trials", "max_trials_per_request",
            "max_request_vertices", "circuit_cache_entries",
            "compile_cache_entries", "result_cache_entries", "latency_window",
        ):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValidationError(f"{name} must be a positive integer, got {value!r}")
        if not self.default_timeout_seconds > 0:
            raise ValidationError(
                f"default_timeout_seconds must be positive, "
                f"got {self.default_timeout_seconds!r}"
            )


class ServeJob:
    """One admitted request: its spec, resolution state, and completion event."""

    __slots__ = (
        "job_id", "spec", "graph", "problem", "lifter", "certificate",
        "shape_key", "fuse_key", "result_key", "submitted_at",
        "admission_deadline", "_event", "response", "routed",
    )

    def __init__(
        self,
        job_id: str,
        spec: SolveSpec,
        graph,
        problem,
        lifter,
        certificate,
        admission_deadline: float,
        routed: bool = False,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        # True when an "auto" request had its circuit resolved by the
        # portfolio router at admission; keys below use the resolved
        # circuit, so routed jobs coalesce/cache exactly like direct ones.
        self.routed = routed
        self.graph = graph
        self.problem = problem
        self.lifter = lifter
        self.certificate = certificate
        self.submitted_at = time.perf_counter()
        self.admission_deadline = admission_deadline
        self._event = threading.Event()
        self.response: Optional[dict] = None
        # Coalescing shape: jobs sharing this key run as one engine batch.
        # Deadline jobs get a unique shape (their wall-clock truncation must
        # not bleed into batch-mates), enforced via coalescable below.
        self.shape_key = content_key(
            "shape", graph.fingerprint(), spec.circuit, spec.backend,
            spec.setup_seed, spec.n_samples,
        )
        # Fusion shape: jobs sharing this key but *differing* in shape_key
        # may still ride one batch as separate instance lanes, stacked along
        # the graph axis by repro.engine.solve_instance_block.  The key is a
        # cheap pre-filter (same circuit/backend/sample-count/vertex-count);
        # the engine's exact shape comparison is the safety net and falls
        # back to per-lane solves when the plans turn out incompatible.
        self.fuse_key = content_key(
            "fuse", spec.circuit, spec.backend, spec.n_samples,
            graph.n_vertices,
        )
        self.result_key = content_key(
            "result", graph.fingerprint(), spec.circuit, spec.backend,
            spec.setup_seed, spec.n_samples, spec.n_trials, spec.seed,
            spec.deadline_seconds,
        )

    @property
    def coalescable(self) -> bool:
        return self.spec.deadline_seconds is None

    def expired(self, now: float) -> bool:
        return now >= self.admission_deadline

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def complete(self, response: dict) -> None:
        self.response = response
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Block until the response is ready; ``None`` on wait timeout."""
        if not self._event.wait(timeout):
            return None
        return self.response


class SolverService:
    """Asynchronous solve queue with cross-request batching (module docstring).

    Parameters
    ----------
    config:
        Admission/batching policy; defaults to :class:`ServiceConfig`.
    autostart:
        Start the batching worker immediately.  Pass ``False`` to stage jobs
        first and :meth:`start` later — with the worker parked, every
        compatible submission is guaranteed to land in the same batch, which
        is what the coalescing tests and the bench scenario rely on.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, autostart: bool = True) -> None:
        self.config = config or ServiceConfig()
        self._condition = threading.Condition()
        self._queue: deque = deque()
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._drain = True
        self._draining = False
        self._job_counter = 0
        self._circuits = ContentAddressedCache(
            max_entries=self.config.circuit_cache_entries, name="circuits"
        )
        self._compiles = ContentAddressedCache(
            max_entries=self.config.compile_cache_entries, name="compiles"
        )
        self._results = ContentAddressedCache(
            max_entries=self.config.result_cache_entries, name="results"
        )
        # Every counter lives on a per-service obs registry (one registry
        # per service keeps tests isolated); self.registry.lock replaces the
        # old hand-rolled _metrics_lock, and multi-metric updates hold it so
        # a concurrent stats()/snapshot() never observes them half-applied.
        # Lock ordering: _condition (when needed) strictly outside
        # registry.lock, never the reverse.
        self.registry = MetricsRegistry()
        reg = self.registry
        self._m_admitted = reg.counter(
            "repro_serve_admitted_total", "Requests admitted (cached or queued)")
        self._m_completed = reg.counter(
            "repro_serve_completed_total", "Requests answered with a result")
        self._m_timed_out = reg.counter(
            "repro_serve_timed_out_total", "Requests expired in the queue")
        self._m_routed = reg.counter(
            "repro_serve_routed_total", "Auto requests resolved by the portfolio router")
        self._m_rejected = reg.counter(
            "repro_serve_rejected_total", "Requests refused at admission, by reason")
        self._m_engine_invocations = reg.counter(
            "repro_serve_engine_invocations_total", "Engine kernel invocations")
        self._m_engine_jobs = reg.counter(
            "repro_serve_engine_jobs_total", "Jobs solved through the engine")
        self._m_engine_trials = reg.counter(
            "repro_serve_engine_trials_total", "Trials solved through the engine")
        self._m_coalesced_jobs = reg.counter(
            "repro_serve_coalesced_jobs_total", "Jobs that shared a batch with others")
        self._m_fused_invocations = reg.counter(
            "repro_serve_fused_invocations_total", "Batches run as one fused instance block")
        self._m_fused_lanes = reg.counter(
            "repro_serve_fused_lanes_total", "Instance lanes stacked into fused batches")
        self._m_latency = reg.histogram(
            "repro_serve_request_latency_seconds",
            "Admission-to-response latency of completed requests",
            window=self.config.latency_window,
        )
        # len() on a deque is safe without the condition; a gauge read is a
        # point-in-time sample anyway (callbacks run outside registry.lock).
        reg.gauge(
            "repro_serve_queue_depth", "Jobs waiting for a batch slot"
        ).set_function(lambda: float(len(self._queue)))
        cache_hit_rate = reg.gauge(
            "repro_serve_cache_hit_rate", "Hit rate per content-addressed cache")
        cache_entries = reg.gauge(
            "repro_serve_cache_entries", "Current entries per content-addressed cache")
        cache_hits = reg.gauge(
            "repro_serve_cache_hits", "Lifetime hits per content-addressed cache")
        cache_misses = reg.gauge(
            "repro_serve_cache_misses", "Lifetime misses per content-addressed cache")
        for cache in (self._results, self._circuits, self._compiles):
            stats_of = cache.stats
            cache_hit_rate.set_function(
                lambda s=stats_of: float(s()["hit_rate"]), cache=cache.name)
            cache_entries.set_function(
                lambda s=stats_of: float(s()["size"]), cache=cache.name)
            cache_hits.set_function(
                lambda s=stats_of: float(s()["hits"]), cache=cache.name)
            cache_misses.set_function(
                lambda s=stats_of: float(s()["misses"]), cache=cache.name)
        self._portfolio_model: Any = None
        self._portfolio_loaded = False
        if autostart:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the batching worker (idempotent)."""
        with self._condition:
            if self._thread is not None or self._stopping:
                return
            self._thread = threading.Thread(
                target=self._worker_loop, name="serve-worker", daemon=True
            )
            self._thread.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop the service: refuse new admissions, then stop the worker.

        With ``drain=True`` (the SIGTERM path) the worker finishes every
        queued job first; with ``drain=False`` queued jobs are answered with
        a shutdown error immediately.
        """
        with self._condition:
            self._draining = True
            self._stopping = True
            self._drain = drain
            thread = self._thread
            if thread is None:
                # No worker was ever started; nothing will drain the queue.
                orphans = list(self._queue)
                self._queue.clear()
            else:
                orphans = []
            self._condition.notify_all()
        for job in orphans:
            self._fail(job, "shutdown", "service stopped before the request ran")
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    # -- admission ---------------------------------------------------------

    def submit(self, payload: Any) -> ServeJob:
        """Admit one request; returns the job to :meth:`ServeJob.wait` on.

        *payload* is a request JSON object (or an already-parsed
        :class:`SolveSpec`).  Raises :class:`AdmissionError` on policy
        rejection and :class:`ValidationError` on a malformed payload.
        """
        with span("serve.admit"):
            return self._submit(payload)

    def _submit(self, payload: Any) -> ServeJob:
        spec = payload if isinstance(payload, SolveSpec) else parse_solve_payload(payload)
        problem = lifter = certificate = None
        if spec.problem is not None:
            problem = spec.problem
            graph, lifter, certificate = self._compile(spec)
        else:
            graph = spec.graph
        routed = False
        if spec.circuit == AUTO_CIRCUIT:
            # Resolve "auto" before the job (and its shape/result keys)
            # exists: downstream, a routed request is indistinguishable from
            # one that named the chosen circuit — identical coalescing,
            # caching, and bit-identical answers.
            spec = replace(spec, circuit=self._route(graph))
            routed = True
            self._m_routed.inc()
        if self._draining:
            self._count_rejection("draining")
            raise AdmissionError("draining", "service is draining; not accepting requests")
        try:
            # Reject unknown backend specs at the door with a machine-readable
            # reason — availability (e.g. torch not installed) is probed when
            # the batch runs, but a name that can never resolve should not
            # occupy a queue slot only to fail in the worker.
            parse_backend_spec(spec.backend)
        except ValidationError as exc:
            self._count_rejection("bad_backend")
            raise AdmissionError("bad_backend", str(exc)) from exc
        if spec.n_trials > self.config.max_trials_per_request:
            self._count_rejection("budget")
            raise AdmissionError(
                "budget",
                f"trials {spec.n_trials} exceeds the per-request cap "
                f"{self.config.max_trials_per_request}",
            )
        if graph.n_vertices > self.config.max_request_vertices:
            self._count_rejection("too_large")
            raise AdmissionError(
                "too_large",
                f"instance has {graph.n_vertices} vertices; the service caps "
                f"requests at {self.config.max_request_vertices}",
            )
        timeout = spec.timeout_seconds or self.config.default_timeout_seconds
        with self._condition:
            self._job_counter += 1
            job_id = f"job-{self._job_counter}"
        job = ServeJob(
            job_id, spec, graph, problem, lifter, certificate,
            admission_deadline=time.perf_counter() + timeout,
            routed=routed,
        )
        cached = self._results.get(job.result_key)
        if cached is not None:
            response = dict(cached)
            response["job_id"] = job.job_id
            response["cached"] = True
            response["routed"] = job.routed
            response["wait_seconds"] = 0.0
            job.complete(response)
            with self.registry.lock:
                self._m_admitted.inc()
                self._m_completed.inc()
                self._m_latency.observe(0.0)
            return job
        with self._condition:
            if self._draining:
                self._count_rejection("draining")
                raise AdmissionError(
                    "draining", "service is draining; not accepting requests"
                )
            if len(self._queue) >= self.config.max_queue_depth:
                self._count_rejection("queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"queue depth {len(self._queue)} is at the admission "
                    f"limit {self.config.max_queue_depth}",
                )
            self._queue.append(job)
            # Counted while still holding the condition: the old code
            # admitted after releasing it, so a concurrent stats() could see
            # the job queued but not yet admitted (queue_depth > admitted).
            self._m_admitted.inc()
            self._condition.notify_all()
        return job

    def solve(self, payload: Any, timeout: Optional[float] = None) -> dict:
        """Submit and wait: the one-call convenience used by tests/examples."""
        job = self.submit(payload)
        response = job.wait(timeout)
        if response is None:
            return error_payload("timeout", "timed out waiting for the response")
        return response

    def _compile(self, spec: SolveSpec) -> Tuple[Any, Any, Any]:
        from repro.problems import compile_to_maxcut
        from repro.problems.base import verify_certificate

        key = content_key("compile", spec.problem.fingerprint(), spec.setup_seed)

        def build():
            # The span sits inside the cache's get_or_build, so a trace
            # shows only true compiles — cache hits cost no compile span.
            with span("serve.compile", kind=spec.problem.kind):
                graph, lifter = compile_to_maxcut(
                    spec.problem, verify=False, seed=spec.setup_seed
                )
                # Certify once per distinct instance — the certificate rides
                # the cache with the compiled graph, so responses can claim
                # it without paying the probes per request.
                certificate = verify_certificate(
                    spec.problem, graph, lifter, seed=spec.setup_seed
                )
                return graph, lifter, certificate

        return self._compiles.get_or_build(key, build)

    def _route(self, graph) -> str:
        """Resolve an ``"auto"`` request to a concrete engine circuit."""
        from repro.portfolio.solver import route_circuit

        if not self._portfolio_loaded:
            # Benign under concurrent admission: two threads may both load
            # the model; both land on the same object semantics.
            if self.config.portfolio_model is not None:
                from repro.portfolio.priors import load_model

                self._portfolio_model = load_model(self.config.portfolio_model)
            self._portfolio_loaded = True
        return route_circuit(graph, model=self._portfolio_model)

    def _count_rejection(self, reason: str) -> None:
        self._m_rejected.inc(reason=reason)

    # -- batching worker ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            rejected: List[ServeJob] = []
            expired: List[ServeJob] = []
            batch: List[ServeJob] = []
            stop = False
            with self._condition:
                while not self._queue and not self._stopping:
                    self._condition.wait(0.05)
                if self._stopping and not self._drain:
                    rejected = list(self._queue)
                    self._queue.clear()
                    stop = True
                elif not self._queue:
                    stop = True  # stopping with the queue drained
                else:
                    expired, batch = self._pop_batch_locked(time.perf_counter())
            for job in rejected:
                self._fail(job, "shutdown", "service stopped before the request ran")
            for job in expired:
                self._expire(job)
            if batch:
                try:
                    self._run_batch(batch)
                except Exception as exc:  # noqa: BLE001 - served as a response
                    _logger.exception("batch failed: %s", exc)
                    for job in batch:
                        self._fail(job, "internal", f"solve failed: {exc}")
            if stop:
                return

    def _pop_batch_locked(
        self, now: float
    ) -> Tuple[List[ServeJob], List[ServeJob]]:
        """Pop the oldest job plus every queued fusable job that fits.

        Same-``shape_key`` mates coalesce along the trials axis exactly as
        before; jobs that merely share the head's ``fuse_key`` (same circuit
        family and geometry on *different* graphs) join as additional
        instance lanes for graph-axis batching.  ``max_batch_trials`` caps
        the combined trial count across all lanes.
        """
        expired: List[ServeJob] = []
        while self._queue and self._queue[0].expired(now):
            expired.append(self._queue.popleft())
        if not self._queue:
            return expired, []
        head = self._queue.popleft()
        batch = [head]
        trials = head.spec.n_trials
        keep: deque = deque()
        while self._queue:
            job = self._queue.popleft()
            if job.expired(now):
                expired.append(job)
            elif (
                head.coalescable
                and job.coalescable
                and job.fuse_key == head.fuse_key
                and trials + job.spec.n_trials <= self.config.max_batch_trials
            ):
                batch.append(job)
                trials += job.spec.n_trials
            else:
                keep.append(job)
        self._queue = keep
        return expired, batch

    def _circuit_for(self, job: ServeJob):
        spec = job.spec
        key = content_key(
            "circuit", job.graph.fingerprint(), spec.circuit, spec.setup_seed
        )

        def build():
            if spec.circuit == "lif_gw":
                from repro.circuits.lif_gw import LIFGWCircuit

                # The SDP solve is the expensive offline stage; seeding it
                # from setup_seed (not the sampling seed) is what lets
                # different-seed requests share one cached circuit.
                return LIFGWCircuit(job.graph, seed=spec.setup_seed)
            from repro.circuits.lif_trevisan import LIFTrevisanCircuit

            return LIFTrevisanCircuit(job.graph)

        return self._circuits.get_or_build(key, build)

    def _run_batch(self, batch: List[ServeJob]) -> None:
        with span("serve.batch", batch_jobs=len(batch)) as batch_span:
            self._run_batch_traced(batch, batch_span)

    def _run_batch_traced(self, batch: List[ServeJob], batch_span) -> None:
        # Two batching axes.  Jobs sharing a shape_key (same graph/circuit/
        # seed geometry) form a *lane* and coalesce along the trials axis;
        # distinct lanes in the same batch share the fuse_key and stack
        # along the graph axis through solve_instance_block, which runs one
        # fused kernel when the lanes' engine plans agree exactly and falls
        # back to per-lane solves (bit-identically) when they do not.
        lanes: List[List[ServeJob]] = []
        lane_index: Dict[str, int] = {}
        for job in batch:
            index = lane_index.get(job.shape_key)
            if index is None:
                lane_index[job.shape_key] = len(lanes)
                lanes.append([job])
            else:
                lanes[index].append(job)
        merged_requests: List[SolveRequest] = []
        lane_slices = []
        for lane in lanes:
            circuit = self._circuit_for(lane[0])
            requests = [
                SolveRequest(
                    circuit=circuit,
                    n_trials=job.spec.n_trials,
                    n_samples=job.spec.n_samples,
                    seed=job.spec.seed,
                    backend=job.spec.backend,
                    deadline_seconds=job.spec.deadline_seconds,
                )
                for job in lane
            ]
            merged, slices = coalesce_requests(requests)
            merged_requests.append(merged)
            lane_slices.append(slices)
        with span("serve.solve", lanes=len(lanes)):
            if len(merged_requests) == 1:
                lane_results = [solve(merged_requests[0])]
            else:
                lane_results = solve_instance_block(merged_requests)
        fused = len(lanes) > 1 and all(
            r.metadata.get("instance_block") for r in lane_results
        )
        batch_span.set(lanes=len(lanes), fused=fused)
        now = time.perf_counter()
        with self.registry.lock:
            # A fused batch is one kernel invocation; a fallback ran one
            # invocation per lane.  Keeping the count honest keeps the
            # coalesce/occupancy ratios meaningful.  All counters move under
            # one registry lock hold so stats() sees them together.
            self._m_engine_invocations.inc(
                1 if fused or len(lanes) == 1 else len(lanes)
            )
            self._m_engine_jobs.inc(len(batch))
            self._m_engine_trials.inc(sum(m.n_trials for m in merged_requests))
            if len(batch) > 1:
                self._m_coalesced_jobs.inc(len(batch))
            if fused:
                self._m_fused_invocations.inc()
                self._m_fused_lanes.inc(len(lanes))
            self._m_completed.inc(len(batch))
            for job in batch:
                self._m_latency.observe(now - job.submitted_at)
        for lane, result, slices in zip(lanes, lane_results, lane_slices):
            parts = split_result(result, slices)
            for job, part in zip(lane, parts):
                response = self._shape_response(
                    job, part, batch_jobs=len(batch),
                    fused_lanes=len(lanes) if fused else 1,
                )
                self._results.put(job.result_key, response)
                final = dict(response)
                final["routed"] = job.routed
                final["wait_seconds"] = float(now - job.submitted_at)
                job.complete(final)

    def _shape_response(
        self, job: ServeJob, part: SolveResult, batch_jobs: int,
        fused_lanes: int = 1,
    ) -> dict:
        spec = job.spec
        best = part.best_cut
        response = {
            "status": "ok",
            "job_id": job.job_id,
            "graph_name": job.graph.name,
            "graph_fingerprint": job.graph.fingerprint(),
            "circuit": spec.circuit,
            "backend": part.backend_name,
            "seed": spec.seed,
            "n_trials": int(part.n_trials),
            "n_samples": int(spec.n_samples),
            "n_rounds": int(part.n_rounds),
            "best_weight": float(best.weight),
            "assignment": np.asarray(best.assignment).astype(int).tolist(),
            "trial_best_weights": [float(w) for w in part.trial_best_weights],
            "elapsed_seconds": float(part.elapsed_seconds),
            "coalesced": batch_jobs > 1,
            "batch_jobs": int(batch_jobs),
            "batch_trials": int(part.metadata.get("batch_trials", part.n_trials)),
            "fused_lanes": int(fused_lanes),
            "deadline_exceeded": bool(part.metadata.get("deadline_exceeded", False)),
            "cached": False,
            "wait_seconds": 0.0,
        }
        if job.problem is not None:
            solution = job.lifter.lift(best.assignment)
            response["problem"] = {
                "kind": job.problem.kind,
                "n_variables": int(job.problem.n_variables),
                "objective": float(job.problem.objective(solution)),
                "solution": np.asarray(solution).tolist(),
                "certified": True,
                "certificate_max_abs_error": float(job.certificate.max_abs_error),
                "value_scale": float(job.lifter.value_scale),
                "value_offset": float(job.lifter.value_offset),
            }
        return response

    def _fail(self, job: ServeJob, reason: str, message: str) -> None:
        response = error_payload(reason, message)
        response["job_id"] = job.job_id
        job.complete(response)

    def _expire(self, job: ServeJob) -> None:
        self._m_timed_out.inc()
        self._fail(
            job, "timeout",
            "request timed out in the queue before a batch slot opened",
        )

    # -- metrics -----------------------------------------------------------

    @staticmethod
    def _percentile(values: List[float], fraction: float) -> float:
        """Nearest-rank percentile — now lives in :mod:`repro.obs.metrics`."""
        return nearest_rank_percentile(values, fraction)

    def stats(self) -> dict:
        """JSON-safe service metrics (the ``/stats`` endpoint body).

        Payload shape is pinned (clients and tests depend on it); the values
        now come from the obs registry, read coherently: the condition
        (queue state) is taken first and the registry lock nested inside it
        — the same order every writer uses — so queue depth, drain state,
        and every counter are one consistent observation.
        """
        with self._condition:
            queue_depth = len(self._queue)
            draining = self._draining
            with self.registry.lock:
                latencies = self._m_latency.window_values()
                invocations = int(self._m_engine_invocations.value())
                jobs = int(self._m_engine_jobs.value())
                trials = int(self._m_engine_trials.value())
                stats = {
                    "queue_depth": queue_depth,
                    "draining": draining,
                    "admitted": int(self._m_admitted.value()),
                    "completed": int(self._m_completed.value()),
                    "timed_out": int(self._m_timed_out.value()),
                    "routed": int(self._m_routed.value()),
                    "rejected": {
                        reason: int(count)
                        for reason, count in self._m_rejected.as_dict("reason").items()
                    },
                    "engine": {
                        "invocations": invocations,
                        "jobs": jobs,
                        "trials": trials,
                        "coalesced_jobs": int(self._m_coalesced_jobs.value()),
                        "fused_invocations": int(self._m_fused_invocations.value()),
                        "fused_lanes": int(self._m_fused_lanes.value()),
                        "coalesce_ratio": (jobs / invocations) if invocations else 0.0,
                        "mean_batch_trials": (trials / invocations) if invocations else 0.0,
                        "batch_occupancy": (
                            trials / (invocations * self.config.max_batch_trials)
                        ) if invocations else 0.0,
                    },
                    "caches": {
                        "results": self._results.stats(),
                        "circuits": self._circuits.stats(),
                        "compiles": self._compiles.stats(),
                    },
                    "latency": {
                        "count": len(latencies),
                        "p50_seconds": nearest_rank_percentile(latencies, 0.50),
                        "p95_seconds": nearest_rank_percentile(latencies, 0.95),
                    },
                }
        return stats
