"""Solver-as-a-service: async queue, cross-request batching, content caches.

``repro serve`` turns the solver stack into a long-lived daemon: requests
(a graph, or any compiled problem class) are admitted into a queue, coalesced
with other same-shape requests into single engine batches along the
(trials, neurons) axis, and answered bit-identically to standalone engine
runs with the same seed.  See DESIGN.md §"Solver service".

Layering (each importable without the ones above it):

:mod:`repro.serve.cache`
    :class:`ContentAddressedCache` — the bounded, thread-safe LRU keyed by
    content fingerprints (also backs the workload executor's suite cache).
:mod:`repro.serve.protocol`
    Wire format: request parsing/validation, payload shaping.
:mod:`repro.serve.service`
    :class:`SolverService` — admission policy, batching scheduler, caches,
    metrics; transport-independent.
:mod:`repro.serve.http` / :mod:`repro.serve.client`
    Stdlib HTTP (TCP or unix-socket) shell and the matching client.
"""

from repro.serve.cache import (
    ContentAddressedCache,
    content_key,
    graph_key,
    problem_key,
)
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import (
    ServeHTTPServer,
    ServeUnixServer,
    serve_http,
    serve_unix,
)
from repro.serve.protocol import (
    SolveSpec,
    error_payload,
    parse_solve_payload,
    solve_payload,
)
from repro.serve.service import (
    AdmissionError,
    ServeJob,
    ServiceConfig,
    SolverService,
)

__all__ = [
    "AdmissionError",
    "ContentAddressedCache",
    "ServeClient",
    "ServeClientError",
    "ServeHTTPServer",
    "ServeJob",
    "ServeUnixServer",
    "ServiceConfig",
    "SolveSpec",
    "SolverService",
    "content_key",
    "error_payload",
    "graph_key",
    "parse_solve_payload",
    "problem_key",
    "serve_http",
    "serve_unix",
    "solve_payload",
]
