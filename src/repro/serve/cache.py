"""Content-addressed caching for the solve service (and the executor).

A :class:`ContentAddressedCache` is a bounded, thread-safe LRU mapping
*content keys* — stable hashes of what a value was built from — to built
values.  The point of content addressing is that the key names the inputs,
not the requester: any request that hashes to the same key can reuse the
value, whoever built it.  The library derives keys from three fingerprints:

* :meth:`repro.graphs.graph.Graph.fingerprint` — hash of the graph structure
  (vertex count + canonical edge/weight arrays, name excluded);
* :meth:`repro.problems.base.Problem.fingerprint` — hash of a problem
  instance's canonical JSON form (the same form ``distrib`` checkpoints and
  :mod:`repro.problems.io` persist);
* :func:`content_key` — a generic hash over JSON-safe parts, for composite
  keys such as ``(circuit kind, graph fingerprint, setup seed)``.

Consumers:

* the generic workload executor's suite-build cache
  (:data:`repro.workloads.executor._GRAPH_CACHE`) — materialised graph
  suites, keyed by the source description + seed;
* the solve service (:mod:`repro.serve.service`) — built circuits (the
  LIF-GW SDP solve is the expensive offline stage) and compiled problems
  (``compile_to_maxcut`` output), so repeated instances skip compile and
  setup entirely.

Every cache keeps hit/miss/eviction counters; :meth:`ContentAddressedCache.stats`
renders them JSON-safe for the service's ``/stats`` endpoint and the bench
workload's ``serve-batching`` scenario.

This module deliberately depends on nothing above the standard library, so
any layer of the stack may import it without cycles.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.utils.validation import ValidationError

__all__ = [
    "ContentAddressedCache",
    "content_key",
    "graph_key",
    "problem_key",
]


def content_key(*parts: Any) -> str:
    """Stable hash of JSON-safe *parts* — the generic content address.

    Parts are rendered as a sorted-key JSON list, so equal values produce
    equal keys across processes.  Non-JSON-safe parts raise ``TypeError``;
    hash objects (graphs, problems) should contribute their ``fingerprint()``
    string instead of themselves.
    """
    canonical = json.dumps(list(parts), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def graph_key(graph, *parts: Any) -> str:
    """Content key of a graph plus extra JSON-safe qualifiers."""
    return content_key(graph.fingerprint(), *parts)


def problem_key(problem, *parts: Any) -> str:
    """Content key of a problem instance plus extra JSON-safe qualifiers."""
    return content_key(problem.fingerprint(), *parts)


_MISSING = object()


class ContentAddressedCache:
    """A bounded, thread-safe LRU cache keyed by content hashes.

    Parameters
    ----------
    max_entries:
        Size bound; inserting beyond it evicts the least-recently-used
        entry.  Must be >= 1 (a cache that can hold nothing is a bug, not a
        configuration).
    name:
        Label used in :meth:`stats` renderings.
    """

    def __init__(self, max_entries: int = 64, name: str = "cache") -> None:
        if not isinstance(max_entries, int) or isinstance(max_entries, bool) \
                or max_entries < 1:
            raise ValidationError(
                f"max_entries must be an integer >= 1, got {max_entries!r}"
            )
        self.name = str(name)
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core mapping ------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Return the cached value for *key* (refreshing its recency)."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key -> value``, evicting LRU entries."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value, building and inserting it on a miss.

        The builder runs under the cache lock, so concurrent requests for
        the same key build once — exactly the behaviour the solve service
        wants for its expensive circuit/compile builds (a second request for
        the same content blocks briefly instead of duplicating the work).
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            value = builder()
            self.put(key, value)
            return value

    def invalidate(self, key: str) -> bool:
        """Drop *key* if present; returns whether anything was removed."""
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- introspection -----------------------------------------------------

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    def hit_rate(self) -> float:
        """Lifetime hit rate (0.0 before any lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-safe counters for ``/stats`` and bench detail payloads."""
        with self._lock:
            return {
                "name": self.name,
                "size": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": round(self.hit_rate(), 4),
            }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (
            f"ContentAddressedCache(name={self.name!r}, "
            f"size={len(self)}/{self.max_entries}, "
            f"hits={self._hits}, misses={self._misses})"
        )
