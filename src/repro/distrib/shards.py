"""Deterministic shard planning + the resumable sharded run driver.

``plan_shards`` partitions a workload into shards, ``run_sharded`` executes
(or resumes) them with per-shard atomic checkpoints, and ``merge_checkpoints``
folds a directory of completed shards back into the workload's uniform
outcome.

Shard plan
----------
A plan is a pure function of ``(spec, n_shards)``:

1. the workload's :class:`~repro.distrib.adapters.ShardAdapter` enumerates
   the run's atomic *units* in canonical order (e.g. ``(graph, solver,
   trial_lo, trial_hi)`` cells for the generic executor, ``(cell, graph)``
   for Figure 3);
2. unit *j* is assigned round-robin to shard ``j % n_shards``, so work
   spreads evenly even when unit costs correlate with position (e.g. suites
   ordered by graph size).

Because every unit seeds itself with the paired
``SeedSequence(seed, spawn_key=...)`` convention, shard boundaries never
change results: the merged output equals the monolithic run record for
record (modulo timing metadata).

Fingerprint
-----------
``fingerprint(spec, n_shards)`` hashes the canonical spec JSON plus the
shard count.  It names the run: checkpoints carry it, resume only accepts
checkpoints that match it, and a checkpoint directory refuses to mix runs.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.distrib.adapters import ShardAdapter, get_shard_adapter
from repro.distrib.checkpoint import CheckpointStore, ShardCheckpoint, unit_key
from repro.obs.trace import (
    mark,
    merge_summaries,
    span,
    spans_since,
    summarize_spans,
    tracing_enabled,
)
from repro.utils.validation import ValidationError
from repro.workloads.registry import Workload
from repro.workloads.report import WorkloadOutcome
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "ShardPlan",
    "fingerprint",
    "plan_shards",
    "run_shard",
    "run_sharded",
    "execute_single_shard",
    "merge_checkpoints",
]


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic split of one workload run into shards.

    Attributes
    ----------
    workload:
        The workload name.
    n_shards:
        Number of shards (shards may be empty when units < shards).
    fingerprint:
        The run identity hash (spec + shard count).
    units:
        Every unit key, in the adapter's canonical order.
    assignments:
        Per shard, the indices into ``units`` it executes (round-robin).
    """

    workload: str
    n_shards: int
    fingerprint: str
    units: Tuple[Tuple, ...]
    assignments: Tuple[Tuple[int, ...], ...]

    def shard_units(self, shard_index: int) -> List[Tuple]:
        """The unit keys shard *shard_index* executes, in execution order."""
        return [self.units[j] for j in self.assignments[shard_index]]


def fingerprint(spec: WorkloadSpec, n_shards: int) -> str:
    """Stable identity hash of one sharded run (spec + shard count)."""
    canonical = json.dumps(
        {"spec": spec.to_dict(), "n_shards": int(n_shards)},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def plan_shards(
    spec: WorkloadSpec,
    n_shards: int,
    workload: Optional[Workload] = None,
) -> ShardPlan:
    """Partition *spec* into *n_shards* deterministic shards."""
    if not isinstance(n_shards, int) or isinstance(n_shards, bool) or n_shards < 1:
        raise ValidationError(f"n_shards must be an integer >= 1, got {n_shards!r}")
    adapter = get_shard_adapter(spec, workload)
    units = tuple(tuple(unit) for unit in adapter.units(spec, n_shards))
    assignments: List[List[int]] = [[] for _ in range(n_shards)]
    for j in range(len(units)):
        assignments[j % n_shards].append(j)
    return ShardPlan(
        workload=spec.workload,
        n_shards=n_shards,
        fingerprint=fingerprint(spec, n_shards),
        units=units,
        assignments=tuple(tuple(a) for a in assignments),
    )


def run_shard(
    spec: WorkloadSpec,
    plan: ShardPlan,
    shard_index: int,
    workload: Optional[Workload] = None,
) -> ShardCheckpoint:
    """Execute one shard of *plan* and return its checkpoint (not yet saved)."""
    if not (0 <= shard_index < plan.n_shards):
        raise ValidationError(
            f"shard_index must be in [0, {plan.n_shards}), got {shard_index}"
        )
    adapter = get_shard_adapter(spec, workload)
    units = plan.shard_units(shard_index)
    # Under active tracing the shard's per-phase timing summary rides the
    # checkpoint metadata, so a later `repro merge` can fold timings across
    # shards even when the shards ran in separate processes.
    trace_mark = mark() if tracing_enabled() else None
    started = time.perf_counter()
    with span(
        "distrib.shard", shard_index=shard_index, n_units=len(units)
    ):
        payloads = adapter.run_units(spec, units) if units else []
    if len(payloads) != len(units):
        raise ValidationError(
            f"shard adapter for {spec.workload!r} returned {len(payloads)} "
            f"payloads for {len(units)} units"
        )
    metadata: Dict[str, Any] = {}
    if trace_mark is not None:
        metadata["timing"] = summarize_spans(spans_since(trace_mark))
    # Round-trip through JSON so the in-memory path is semantically identical
    # to the resume-from-disk path (and non-JSON-safe payloads fail loudly at
    # the shard that produced them, not at a later resume).
    payloads = json.loads(json.dumps(payloads))
    return ShardCheckpoint(
        workload=spec.workload,
        shard_index=shard_index,
        n_shards=plan.n_shards,
        fingerprint=plan.fingerprint,
        units=[list(unit) for unit in units],
        payloads=payloads,
        elapsed_seconds=float(time.perf_counter() - started),
        metadata=metadata,
    )


def _manifest(spec: WorkloadSpec, plan: ShardPlan) -> Dict[str, Any]:
    return {
        "kind": "repro-shards/v1",
        "workload": plan.workload,
        "n_shards": plan.n_shards,
        "fingerprint": plan.fingerprint,
        "spec": spec.to_dict(),
        "units": [list(unit) for unit in plan.units],
    }


def _merge_plan(
    spec: WorkloadSpec,
    plan: ShardPlan,
    checkpoints: Sequence[ShardCheckpoint],
    workload: Optional[Workload] = None,
) -> WorkloadOutcome:
    adapter = get_shard_adapter(spec, workload)
    payload_by_unit: Dict[Tuple, Any] = {}
    for checkpoint in checkpoints:
        for unit, payload in zip(checkpoint.units, checkpoint.payloads):
            payload_by_unit[unit_key(unit)] = payload
    missing = [unit for unit in plan.units if unit_key(unit) not in payload_by_unit]
    if missing:
        raise ValidationError(
            f"cannot merge: {len(missing)} of {len(plan.units)} units have no "
            f"payload (first missing: {missing[0]!r})"
        )
    ordered = [payload_by_unit[unit_key(unit)] for unit in plan.units]
    return adapter.merge(spec, list(plan.units), ordered)


def run_sharded(
    spec: WorkloadSpec,
    n_shards: int,
    workload: Optional[Workload] = None,
    checkpoint_dir: Union[str, None] = None,
    resume: bool = False,
) -> WorkloadOutcome:
    """Execute *spec* as *n_shards* checkpointed shards and merge the outcome.

    Parameters
    ----------
    spec:
        The workload spec (seed already resolved — run through a
        :class:`~repro.workloads.session.Session`).
    n_shards:
        How many shards to split into.
    workload:
        The registered workload (for adapter resolution), if any.
    checkpoint_dir:
        Directory for the manifest + per-shard checkpoint files.  ``None``
        runs fully in memory (no files, nothing to resume).
    resume:
        Skip shards whose checkpoint file already exists and matches this
        run's fingerprint; requires *checkpoint_dir*.  Corrupt or foreign
        checkpoint files are treated as missing and re-run.

    Returns the merged :class:`~repro.workloads.report.WorkloadOutcome`; its
    metadata carries a ``"distrib"`` header recording the split and which
    shards were executed vs resumed.
    """
    if resume and checkpoint_dir is None:
        raise ValidationError("resume=True requires a checkpoint_dir")
    plan = plan_shards(spec, n_shards, workload)
    store: Optional[CheckpointStore] = None
    if checkpoint_dir is not None:
        store = CheckpointStore(checkpoint_dir)
        store.prepare(_manifest(spec, plan), resume=resume)

    checkpoints: List[ShardCheckpoint] = []
    executed: List[int] = []
    resumed: List[int] = []
    for shard_index in range(plan.n_shards):
        checkpoint = None
        if store is not None and resume:
            checkpoint = store.load_shard(shard_index, plan.fingerprint)
        if checkpoint is None:
            checkpoint = run_shard(spec, plan, shard_index, workload)
            if store is not None:
                store.save_shard(checkpoint)
            executed.append(shard_index)
        else:
            resumed.append(shard_index)
        checkpoints.append(checkpoint)

    with span("distrib.merge", n_shards=plan.n_shards):
        outcome = _merge_plan(spec, plan, checkpoints, workload)
    outcome.metadata["distrib"] = {
        "n_shards": plan.n_shards,
        "n_units": len(plan.units),
        "fingerprint": plan.fingerprint,
        "checkpoint_dir": checkpoint_dir,
        "executed_shards": executed,
        "resumed_shards": resumed,
        "shard_elapsed_seconds": [c.elapsed_seconds for c in checkpoints],
        **_fold_shard_timings(checkpoints),
    }
    return outcome


def _fold_shard_timings(
    checkpoints: Sequence[ShardCheckpoint],
) -> Dict[str, Any]:
    """Per-shard trace summaries from checkpoint metadata, plus their sum.

    Empty when no shard carried timing (tracing was off when it ran) — the
    ``distrib`` metadata block then stays exactly its historical shape.
    """
    timings = [
        checkpoint.metadata.get("timing")
        for checkpoint in checkpoints
        if isinstance(checkpoint.metadata, dict)
        and checkpoint.metadata.get("timing")
    ]
    if not timings:
        return {}
    return {
        "shard_timings": timings,
        "timing": merge_summaries(timings),
    }


def execute_single_shard(
    spec: WorkloadSpec,
    n_shards: int,
    shard_index: int,
    checkpoint_dir: str,
    workload: Optional[Workload] = None,
    resume: bool = True,
) -> Dict[str, Any]:
    """Execute exactly one shard into *checkpoint_dir* — the worker-process mode.

    This is how a run is actually split across processes or machines: N
    workers each call this (or ``repro run <w> --shards N --shard-index K
    --checkpoint-dir D``) with their own *shard_index* against a shared
    directory, then anyone runs :func:`merge_checkpoints` (``repro merge D``)
    once every shard file exists.  With *resume* (the default here — a worker
    re-running its own shard is the common crash case) an already-valid
    checkpoint is skipped.

    Returns a status dictionary: ``shard_index``, ``n_shards``, ``skipped``
    (checkpoint already valid), ``n_units`` (this shard's unit count),
    ``completed_shards`` / ``missing_shards`` across the directory, and
    ``complete`` (ready to merge).  The directory-wide counts are *advisory*
    and based on file presence only (atomic writes make present ≈ complete)
    — a worker never re-reads the other shards' payloads, so fleet status
    stays O(1) stat calls per shard instead of O(total payload bytes);
    :func:`merge_checkpoints` does the authoritative validation.
    """
    import os

    if checkpoint_dir is None:
        raise ValidationError("execute_single_shard requires a checkpoint_dir")
    plan = plan_shards(spec, n_shards, workload)
    if not (0 <= shard_index < plan.n_shards):
        raise ValidationError(
            f"shard_index must be in [0, {plan.n_shards}), got {shard_index}"
        )
    store = CheckpointStore(checkpoint_dir)
    store.prepare(_manifest(spec, plan), resume=resume)
    skipped = False
    if resume and store.load_shard(shard_index, plan.fingerprint) is not None:
        skipped = True
    else:
        store.save_shard(run_shard(spec, plan, shard_index, workload))
    present = [
        i for i in range(plan.n_shards)
        if os.path.exists(store.shard_path(i))
    ]
    return {
        "shard_index": shard_index,
        "n_shards": plan.n_shards,
        "skipped": skipped,
        "n_units": len(plan.assignments[shard_index]),
        "fingerprint": plan.fingerprint,
        "completed_shards": present,
        "missing_shards": [i for i in range(plan.n_shards) if i not in present],
        "complete": len(present) == plan.n_shards,
    }


def merge_checkpoints(
    checkpoint_dir: str,
    workload: Optional[Workload] = None,
    spec: Optional[WorkloadSpec] = None,
) -> Tuple[WorkloadOutcome, Dict[str, Any]]:
    """Merge a checkpoint directory written by :func:`run_sharded`.

    Reconstructs the spec from the stored manifest (unless an explicit *spec*
    is given), validates that every shard is complete, and folds the shard
    payloads into the workload outcome.  Incomplete directories raise a
    :class:`ValidationError` naming the missing shards — rerun with
    ``resume=True`` to fill them in.

    Returns ``(outcome, manifest)``.
    """
    store = CheckpointStore(checkpoint_dir)
    manifest = store.read_manifest()
    if manifest is None:
        raise ValidationError(
            f"no readable {store.manifest_path!r}; not a checkpoint directory?"
        )
    if spec is None:
        spec = WorkloadSpec.from_dict(manifest.get("spec") or {})
    if workload is None:
        from repro.workloads.registry import WORKLOADS

        workload = WORKLOADS.get(str(manifest.get("workload", "")))
    n_shards = int(manifest["n_shards"])
    run_fingerprint = str(manifest["fingerprint"])
    if fingerprint(spec, n_shards) != run_fingerprint:
        raise ValidationError(
            f"manifest fingerprint {run_fingerprint!r} does not match its "
            f"own spec; the checkpoint directory is corrupt"
        )
    plan = plan_shards(spec, n_shards, workload)
    checkpoints: List[ShardCheckpoint] = []
    missing: List[int] = []
    for shard_index in range(n_shards):
        checkpoint = store.load_shard(shard_index, run_fingerprint)
        if checkpoint is None:
            missing.append(shard_index)
        else:
            checkpoints.append(checkpoint)
    if missing:
        raise ValidationError(
            f"checkpoint directory {checkpoint_dir!r} is missing shard(s) "
            f"{missing}; rerun with --resume to complete them"
        )
    with span("distrib.merge", n_shards=n_shards):
        outcome = _merge_plan(spec, plan, checkpoints, workload)
    outcome.metadata["distrib"] = {
        "n_shards": n_shards,
        "n_units": len(plan.units),
        "fingerprint": run_fingerprint,
        "checkpoint_dir": checkpoint_dir,
        "executed_shards": [],
        "resumed_shards": list(range(n_shards)),
        "shard_elapsed_seconds": [c.elapsed_seconds for c in checkpoints],
        **_fold_shard_timings(checkpoints),
    }
    return outcome, manifest
