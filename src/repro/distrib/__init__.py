"""Sharded, resumable workload execution.

This package makes every workload in the library horizontally splittable and
crash-safe at once:

* :func:`plan_shards` deterministically partitions any
  :class:`~repro.workloads.WorkloadSpec` into shards of independent *units*
  (graph x solver x trial-range cells for the generic executor; per-graph /
  per-setting units for the paper workloads) — because every unit seeds
  itself with the library's paired ``SeedSequence(seed, spawn_key=...)``
  convention, shard boundaries never change results;
* :func:`run_sharded` executes (or resumes) the shards with per-shard
  **atomic** JSON checkpoints and merges the payloads into an outcome whose
  records and leaderboard equal the monolithic run (modulo timing metadata);
* :func:`merge_checkpoints` folds a checkpoint directory written by an
  earlier (possibly killed) run back into a report.

The user-facing surface is ``Session(spec).run(shards=N, resume=...)``,
``repro run <workload> --shards N [--resume]`` and ``repro merge <dir>``;
this package is the machinery behind them.  New workloads with custom
executors become shardable by registering a
:class:`~repro.distrib.adapters.ShardAdapter`.
"""

from repro.distrib.adapters import (
    GENERIC_ADAPTER,
    SHARD_ADAPTERS,
    ShardAdapter,
    get_shard_adapter,
    register_shard_adapter,
)
from repro.distrib.checkpoint import CheckpointStore, ShardCheckpoint
from repro.distrib.shards import (
    ShardPlan,
    execute_single_shard,
    fingerprint,
    merge_checkpoints,
    plan_shards,
    run_shard,
    run_sharded,
)

__all__ = [
    "ShardAdapter",
    "SHARD_ADAPTERS",
    "GENERIC_ADAPTER",
    "register_shard_adapter",
    "get_shard_adapter",
    "CheckpointStore",
    "ShardCheckpoint",
    "ShardPlan",
    "fingerprint",
    "plan_shards",
    "run_shard",
    "run_sharded",
    "execute_single_shard",
    "merge_checkpoints",
]
