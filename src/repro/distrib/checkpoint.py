"""Atomic, resumable shard checkpointing.

A sharded run (:func:`repro.distrib.run_sharded`) owns one checkpoint
directory::

    <dir>/manifest.json       # the run's identity: spec, units, fingerprint
    <dir>/shard-0000.json     # one completed shard, atomically written
    <dir>/shard-0001.json
    ...

Every file goes through :func:`repro.experiments.runner.save_results`, which
writes via a temp file + ``os.replace`` — so a killed shard never leaves a
truncated JSON behind, and an *existing* shard file is always a *complete*
shard.  That invariant is what makes resume trivial: a shard file that loads
and matches the manifest fingerprint is done; anything else (missing,
corrupt, foreign) is re-run.

:class:`ShardCheckpoint` is a registered result type
(:func:`repro.experiments.runner.register_result_type`), so shard files are
ordinary experiment records — loadable with
:func:`repro.experiments.runner.load_results` and diffable like any other
persisted result.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.runner import (
    atomic_write_json,
    load_results,
    register_result_type,
    save_results,
)
from repro.utils.validation import ValidationError

__all__ = ["ShardCheckpoint", "CheckpointStore", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"


@register_result_type
@dataclass(frozen=True)
class ShardCheckpoint:
    """One completed shard: its unit keys and their JSON-safe payloads.

    Attributes
    ----------
    workload:
        Workload name of the owning run.
    shard_index, n_shards:
        This shard's position in the split.
    fingerprint:
        The run fingerprint (hash of spec + shard count); a checkpoint only
        counts as complete for a run with the same fingerprint.
    units:
        The unit keys this shard executed, in execution order (JSON-safe
        tuples, stored as lists).
    payloads:
        One JSON-safe payload per unit, aligned with ``units`` — the
        adapter-defined partial results the merge step folds.
    elapsed_seconds:
        Wall-clock time the shard's execution took.
    """

    workload: str
    shard_index: int
    n_shards: int
    fingerprint: str
    units: List[Any]
    payloads: List[Any]
    elapsed_seconds: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Filesystem layout + atomic IO for one sharded run's checkpoints."""

    def __init__(self, directory: Union[str, os.PathLike]) -> None:
        self.directory = os.fspath(directory)

    # -- manifest -----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def read_manifest(self) -> Optional[Dict[str, Any]]:
        """The stored manifest, or ``None`` when absent/unreadable."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def prepare(self, manifest: Dict[str, Any], resume: bool) -> None:
        """Create the directory and reconcile *manifest* with any existing one.

        A fresh directory just records the manifest.  An existing manifest
        with a **different** fingerprint means the directory belongs to a
        different run (different spec or shard count) — that is always an
        error, resumable or not, so one run's checkpoints can never be merged
        into another's.
        """
        os.makedirs(self.directory, exist_ok=True)
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("fingerprint") != manifest.get("fingerprint"):
                raise ValidationError(
                    f"checkpoint directory {self.directory!r} belongs to a "
                    f"different run (fingerprint {existing.get('fingerprint')!r}"
                    f" != {manifest.get('fingerprint')!r}); use a fresh "
                    f"directory or delete the old checkpoints"
                )
            return
        atomic_write_json(self.manifest_path, manifest)

    # -- shards -------------------------------------------------------------

    def shard_path(self, shard_index: int) -> str:
        return os.path.join(self.directory, f"shard-{shard_index:04d}.json")

    def save_shard(self, checkpoint: ShardCheckpoint) -> None:
        """Persist one completed shard atomically."""
        save_results(
            self.shard_path(checkpoint.shard_index),
            f"shard:{checkpoint.workload}",
            [checkpoint],
            config={
                "workload": checkpoint.workload,
                "shard_index": checkpoint.shard_index,
                "n_shards": checkpoint.n_shards,
                "fingerprint": checkpoint.fingerprint,
            },
        )

    def load_shard(
        self, shard_index: int, fingerprint: str
    ) -> Optional[ShardCheckpoint]:
        """Load shard *shard_index* if it is complete for this run.

        Returns ``None`` — "treat as missing, re-run" — for absent, corrupt,
        or foreign (fingerprint-mismatched) files.  Never raises for bad
        files: a half-written checkpoint from a crashed run without atomic
        IO, or a stray file, must not poison resume.
        """
        path = self.shard_path(shard_index)
        try:
            record = load_results(path)
        except (OSError, json.JSONDecodeError, ValidationError, ValueError):
            return None
        if len(record.results) != 1:
            return None
        payload = record.results[0]
        if not isinstance(payload, dict) or payload.get("__type__") != "ShardCheckpoint":
            return None
        # Only copy fields the record actually carries: required-but-absent
        # fields then fail construction (TypeError → treat as missing) and
        # optional ones take their dataclass defaults, instead of every
        # absent field silently becoming None.
        fields = {
            f.name: payload[f.name]
            for f in dataclasses.fields(ShardCheckpoint)
            if f.name in payload
        }
        try:
            checkpoint = ShardCheckpoint(**fields)
        except TypeError:
            return None
        if checkpoint.fingerprint != fingerprint:
            return None
        if checkpoint.shard_index != shard_index:
            return None
        # A parseable record with malformed fields (units: null, payloads a
        # scalar, ...) is just as foreign as a corrupt file — re-run, never
        # raise, per the validate-or-redo contract above.
        if not isinstance(checkpoint.units, list) or not isinstance(
            checkpoint.payloads, list
        ):
            return None
        if len(checkpoint.units) != len(checkpoint.payloads):
            return None
        return checkpoint

    def completed_shards(self, n_shards: int, fingerprint: str) -> List[int]:
        """Indices of shards with a valid checkpoint for this run."""
        return [
            index
            for index in range(n_shards)
            if self.load_shard(index, fingerprint) is not None
        ]


def unit_key(unit: Any) -> Tuple:
    """Normalise a unit (possibly JSON-round-tripped) into a hashable key."""
    if isinstance(unit, (list, tuple)):
        return tuple(unit_key(item) for item in unit)
    return unit
