"""Shard adapters: how each workload splits into units and merges back.

A :class:`ShardAdapter` is the three-function contract a workload implements
to become shardable:

``units(spec, n_shards)``
    Enumerate the run's atomic units as JSON-safe tuples, in canonical
    order.  Units must be *seed-independent*: every unit derives its
    randomness from the spec seed and its own key (the library's paired
    ``SeedSequence(seed, spawn_key=...)`` convention), never from which
    shard runs it.
``run_units(spec, units)``
    Execute a subset of units and return one JSON-safe payload per unit
    (aligned with the input order).
``merge(spec, units, payloads)``
    Fold the payloads of **all** units (in canonical order) into the
    workload's uniform :class:`~repro.workloads.report.WorkloadOutcome`,
    reusing the exact aggregation arithmetic of the monolithic executor.

Workloads running through the generic capability-routed executor need no
registration — :data:`GENERIC_ADAPTER` shards them by (graph x solver x
trial-range) cells automatically.  Custom-executor workloads (the paper
figures/table/ablations, the bench workload) register an adapter here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import ValidationError
from repro.workloads.executor import (
    cell_units,
    entries_from_payloads,
    result_from_entries,
    run_cell_units,
)
from repro.workloads.registry import Workload
from repro.workloads.report import WorkloadOutcome
from repro.workloads.session import arena_outcome_from_result
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "ShardAdapter",
    "SHARD_ADAPTERS",
    "register_shard_adapter",
    "get_shard_adapter",
    "GENERIC_ADAPTER",
]

Unit = Tuple
UnitsFn = Callable[[WorkloadSpec, int], List[Unit]]
RunUnitsFn = Callable[[WorkloadSpec, Sequence[Unit]], List[Any]]
MergeFn = Callable[[WorkloadSpec, Sequence[Unit], Sequence[Any]], WorkloadOutcome]


@dataclass(frozen=True)
class ShardAdapter:
    """The unit-enumerate / unit-run / merge triple for one workload."""

    units: UnitsFn
    run_units: RunUnitsFn
    merge: MergeFn


#: Workload name → adapter registry (custom-executor workloads only).
SHARD_ADAPTERS: Dict[str, ShardAdapter] = {}


def register_shard_adapter(
    name: str, adapter: ShardAdapter, overwrite: bool = False
) -> ShardAdapter:
    """Register *adapter* for workload *name* (collisions raise)."""
    if name in SHARD_ADAPTERS and not overwrite:
        raise ValidationError(
            f"shard adapter for workload {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    SHARD_ADAPTERS[name] = adapter
    return adapter


def get_shard_adapter(
    spec: WorkloadSpec, workload: Optional[Workload] = None
) -> ShardAdapter:
    """Resolve the adapter for *spec*.

    Explicit registrations win; workloads without a custom executor fall back
    to the generic (graph x solver x trial-range) adapter; a custom-executor
    workload without a registration is not shardable and raises.
    """
    if spec.workload in SHARD_ADAPTERS:
        return SHARD_ADAPTERS[spec.workload]
    if workload is None or workload.execute is None:
        return GENERIC_ADAPTER
    raise ValidationError(
        f"workload {spec.workload!r} has a custom executor and no shard "
        f"adapter; register one with repro.distrib.register_shard_adapter"
    )


# ---------------------------------------------------------------------------
# Generic adapter: any spec on the capability-routed executor
# ---------------------------------------------------------------------------


def _generic_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    return [tuple(unit) for unit in cell_units(spec, n_shards=n_shards)]


def _generic_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    return run_cell_units(spec, [tuple(u) for u in units])


def _generic_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    entries = entries_from_payloads(spec, list(payloads))
    names_by_index = {
        int(p["graph_index"]): str(p["graph_name"]) for p in payloads
    }
    graph_names = [names_by_index[g] for g in sorted(names_by_index)]
    elapsed = float(sum(p["elapsed_seconds"] for p in payloads))
    result = result_from_entries(spec, graph_names, entries, elapsed)
    return arena_outcome_from_result(result)


GENERIC_ADAPTER = ShardAdapter(
    units=_generic_units, run_units=_generic_run, merge=_generic_merge
)


# ---------------------------------------------------------------------------
# figure3: unit = one graph of one (n, p) cell
# ---------------------------------------------------------------------------


def _figure3_config(spec: WorkloadSpec):
    from repro.workloads.paper import _figure3_config as build

    return build(dict(spec.params), spec.seed)


def _figure3_cells(config) -> List[Tuple[int, float]]:
    return [(n, p) for n in config.sizes for p in config.probabilities]


def _figure3_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    config = _figure3_config(spec)
    return [
        (cell_index, j)
        for cell_index in range(len(_figure3_cells(config)))
        for j in range(config.n_graphs_per_cell)
    ]


def _figure3_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.experiments.figure3 import run_figure3_graph

    config = _figure3_config(spec)
    cells = _figure3_cells(config)
    payloads = []
    for cell_index, j in units:
        n, p = cells[int(cell_index)]
        result = run_figure3_graph(n, p, int(j), config=config)
        payloads.append({
            key: np.asarray(value).tolist() for key, value in result.items()
        })
    return payloads


def _figure3_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.experiments.figure3 import figure3_cell_from_graph_results
    from repro.workloads.paper import figure3_outcome

    config = _figure3_config(spec)
    cells = _figure3_cells(config)
    by_cell: Dict[int, List[Tuple[int, Any]]] = {}
    for (cell_index, j), payload in zip(units, payloads):
        by_cell.setdefault(int(cell_index), []).append((int(j), payload))
    records = []
    for cell_index, (n, p) in enumerate(cells):
        graphs = sorted(by_cell.get(cell_index, []))
        if len(graphs) != config.n_graphs_per_cell:
            raise ValidationError(
                f"figure3 cell {cell_index} has {len(graphs)} of "
                f"{config.n_graphs_per_cell} graph payloads"
            )
        results = [
            {key: np.asarray(value) for key, value in payload.items()}
            for _, payload in graphs
        ]
        records.append(
            figure3_cell_from_graph_results(n, p, results, config=config)
        )
    return figure3_outcome(records, config)


# ---------------------------------------------------------------------------
# figure4 / table1: unit = one empirical graph (by sweep index)
# ---------------------------------------------------------------------------


def _figure4_names(spec: WorkloadSpec) -> List[str]:
    from repro.graphs.repository import list_empirical_graphs

    return list(spec.params["graphs"]) or list_empirical_graphs()


def _figure4_config(spec: WorkloadSpec):
    from repro.experiments.config import Figure4Config

    return Figure4Config(n_samples=int(spec.params["samples"]), seed=spec.seed)


def _figure4_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    return [(g,) for g in range(len(_figure4_names(spec)))]


def _figure4_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.experiments.figure4 import run_figure4_panel

    config = _figure4_config(spec)
    names = _figure4_names(spec)
    payloads = []
    for (g,) in units:
        panel = run_figure4_panel(names[int(g)], config=config, graph_index=int(g))
        payloads.append({
            "graph_name": panel.graph_name,
            "n_vertices": int(panel.n_vertices),
            "n_edges": int(panel.n_edges),
            "sample_counts": np.asarray(panel.sample_counts).tolist(),
            "curves": {
                method: np.asarray(curve).tolist()
                for method, curve in panel.curves.items()
            },
            "solver_best_weight": float(panel.solver_best_weight),
            "best_weights": {
                method: float(weight)
                for method, weight in panel.best_weights.items()
            },
            "metadata": dict(panel.metadata),
        })
    return payloads


def _figure4_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.experiments.figure4 import Figure4Panel
    from repro.workloads.paper import figure4_outcome

    config = _figure4_config(spec)
    ordered = sorted(zip(units, payloads), key=lambda item: int(item[0][0]))
    panels = [
        Figure4Panel(
            graph_name=str(p["graph_name"]),
            n_vertices=int(p["n_vertices"]),
            n_edges=int(p["n_edges"]),
            sample_counts=np.asarray(p["sample_counts"]),
            curves={
                method: np.asarray(curve, dtype=np.float64)
                for method, curve in p["curves"].items()
            },
            solver_best_weight=float(p["solver_best_weight"]),
            best_weights={
                method: float(weight)
                for method, weight in p["best_weights"].items()
            },
            metadata=dict(p["metadata"]),
        )
        for _, p in ordered
    ]
    return figure4_outcome(panels, config)


def _table1_config(spec: WorkloadSpec):
    from repro.experiments.config import Table1Config

    return Table1Config(n_samples=int(spec.params["samples"]), seed=spec.seed)


def _table1_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    return [(g,) for g in range(len(_figure4_names(spec)))]


def _table1_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.experiments.table1 import run_table1_row

    config = _table1_config(spec)
    names = _figure4_names(spec)
    payloads = []
    for (g,) in units:
        row = run_table1_row(names[int(g)], config=config, graph_index=int(g))
        payloads.append({
            "graph_name": row.graph_name,
            "n_vertices": int(row.n_vertices),
            "n_edges": int(row.n_edges),
            "measured": {k: float(v) for k, v in row.measured.items()},
            "paper": {k: int(v) for k, v in row.paper.items()},
            "is_surrogate": bool(row.is_surrogate),
        })
    return payloads


def _table1_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.experiments.table1 import Table1Row
    from repro.workloads.paper import table1_outcome

    config = _table1_config(spec)
    ordered = sorted(zip(units, payloads), key=lambda item: int(item[0][0]))
    rows = [
        Table1Row(
            graph_name=str(p["graph_name"]),
            n_vertices=int(p["n_vertices"]),
            n_edges=int(p["n_edges"]),
            measured={k: float(v) for k, v in p["measured"].items()},
            paper={k: int(v) for k, v in p["paper"].items()},
            is_surrogate=bool(p["is_surrogate"]),
        )
        for _, p in ordered
    ]
    return table1_outcome(rows, config)


# ---------------------------------------------------------------------------
# ablation: unit = one sweep setting (by global setting index)
# ---------------------------------------------------------------------------


def _ablation_config(spec: WorkloadSpec):
    from repro.experiments.config import AblationConfig

    params = dict(spec.params)
    return AblationConfig(
        n_vertices=int(params["vertices"]),
        n_graphs=int(params["n_graphs"]),
        n_samples=int(params["samples"]),
        seed=spec.seed,
    )


def _ablation_setting_count(kind: str) -> int:
    from repro.experiments.ablations import (
        DEFAULT_LEARNING_RATES,
        DEFAULT_RANKS,
        DEVICE_MODELS,
    )

    return {
        "devices": len(DEVICE_MODELS),
        "rank": len(DEFAULT_RANKS),
        "learning-rate": len(DEFAULT_LEARNING_RATES),
    }[kind]


def _ablation_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    return [(s,) for s in range(_ablation_setting_count(spec.params["kind"]))]


#: Per-config cache of the ablation's classical-solver references — the
#: expensive fixed stage every setting shares.  Keyed by the config dict, so
#: an in-process sharded run (one _ablation_run call per shard) computes the
#: references once instead of once per shard; separate worker processes
#: still each pay for it once, which is the unavoidable per-machine cost.
_ABLATION_REFERENCES: Dict[str, Any] = {}


def _ablation_references(config) -> Any:
    import json

    from repro.experiments.ablations import _ablation_graphs, _solver_references

    key = json.dumps(config.to_dict(), sort_keys=True)
    if key not in _ABLATION_REFERENCES:
        if len(_ABLATION_REFERENCES) > 8:
            _ABLATION_REFERENCES.clear()
        _ABLATION_REFERENCES[key] = _solver_references(
            _ablation_graphs(config), config
        )
    return _ABLATION_REFERENCES[key]


def _ablation_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.experiments.ablations import (
        run_device_imperfection_ablation,
        run_learning_rate_ablation,
        run_rank_ablation,
    )

    config = _ablation_config(spec)
    kind = spec.params["kind"]
    wanted = [int(s) for (s,) in units]
    only = sorted(set(wanted))
    references = _ablation_references(config)
    if kind == "devices":
        points = run_device_imperfection_ablation(
            config=config, circuit=spec.params["circuit"], only=only,
            references=references,
        )
    elif kind == "rank":
        points = run_rank_ablation(config=config, only=only, references=references)
    else:
        points = run_learning_rate_ablation(
            config=config, only=only, references=references
        )
    by_index = dict(zip(only, points))
    return [
        {
            "setting_index": s,
            "setting": by_index[s].setting,
            "mean_relative_cut": float(by_index[s].mean_relative_cut),
            "sem": float(by_index[s].sem),
            "per_graph": np.asarray(by_index[s].per_graph).tolist(),
            "metadata": dict(by_index[s].metadata),
        }
        for s in wanted
    ]


def _ablation_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.experiments.ablations import AblationPoint
    from repro.workloads.paper import ablation_outcome

    config = _ablation_config(spec)
    ordered = sorted(payloads, key=lambda p: int(p["setting_index"]))
    points = [
        AblationPoint(
            setting=str(p["setting"]),
            mean_relative_cut=float(p["mean_relative_cut"]),
            sem=float(p["sem"]),
            per_graph=np.asarray(p["per_graph"], dtype=np.float64),
            metadata=dict(p["metadata"]),
        )
        for p in ordered
    ]
    return ablation_outcome(points, config, spec.params["kind"])


# ---------------------------------------------------------------------------
# bench: unit = one timed scenario
# ---------------------------------------------------------------------------


def _bench_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    from repro.workloads.bench import bench_scenarios

    return [tuple(unit) for unit in bench_scenarios(spec)]


def _bench_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.workloads.bench import run_bench_scenario

    return [run_bench_scenario(spec, str(scenario)) for (scenario,) in units]


def _bench_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.workloads.bench import _record_from_payload, bench_outcome

    records = [_record_from_payload(payload) for payload in payloads]
    return bench_outcome(records, spec)


# ---------------------------------------------------------------------------
# evolving: unit = one (graph, trial) timeline
# ---------------------------------------------------------------------------


def _evolving_units(spec: WorkloadSpec, n_shards: int) -> List[Unit]:
    from repro.workloads.evolving import evolving_units

    return [tuple(unit) for unit in evolving_units(spec, n_shards)]


def _evolving_run(spec: WorkloadSpec, units: Sequence[Unit]) -> List[Any]:
    from repro.workloads.evolving import run_evolving_unit

    return [run_evolving_unit(spec, tuple(unit)) for unit in units]


def _evolving_merge(
    spec: WorkloadSpec, units: Sequence[Unit], payloads: Sequence[Any]
) -> WorkloadOutcome:
    from repro.workloads.evolving import evolving_outcome

    return evolving_outcome(list(payloads), spec)


for _name, _adapter in (
    ("figure3", ShardAdapter(_figure3_units, _figure3_run, _figure3_merge)),
    ("figure4", ShardAdapter(_figure4_units, _figure4_run, _figure4_merge)),
    ("table1", ShardAdapter(_table1_units, _table1_run, _table1_merge)),
    ("ablation", ShardAdapter(_ablation_units, _ablation_run, _ablation_merge)),
    ("bench", ShardAdapter(_bench_units, _bench_run, _bench_merge)),
    ("evolving", ShardAdapter(_evolving_units, _evolving_run, _evolving_merge)),
):
    register_shard_adapter(_name, _adapter)
del _name, _adapter
