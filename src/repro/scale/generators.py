"""CSR-native scale-free graph generators (vectorised, edge-list-first).

The legacy generators in :mod:`repro.graphs.generators` run a Python loop
per vertex (or per candidate edge), which caps them at a few thousand
vertices.  The family here builds the full edge list with array operations
and hands it to :meth:`repro.graphs.graph.Graph.from_edge_arrays`, so a
100k-vertex Barabási–Albert instance generates in tens of milliseconds and
the dense ``adjacency()`` path is never touched.

Seeding follows the repo's paired convention
(:func:`repro.utils.rng.paired_seed`): an integer (or ``None``) seed is
expanded to ``SeedSequence(seed, spawn_key=(tag,))`` with a per-generator
tag, so the same root seed drives statistically independent streams in each
generator while staying fully reproducible.  Passing an explicit
``Generator``/``SeedSequence`` bypasses the tagging (caller owns the
stream).

All generators return *simple* graphs: duplicate edges and self-loops
produced by the underlying random processes are dropped (not summed), which
is the standard convention for these models.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator, paired_seed
from repro.utils.validation import ValidationError, check_probability

__all__ = [
    "scale_barabasi_albert",
    "scale_configuration_model",
    "scale_watts_strogatz",
    "stochastic_kronecker",
]

#: Per-generator spawn-key tags: the same integer root seed yields
#: independent streams in each generator (paired_seed(seed, tag)).
_SPAWN_TAGS = {"ba": 9101, "config": 9102, "ws": 9103, "kron": 9104}


def _scale_rng(seed: RandomState, tag: str) -> np.random.Generator:
    """Normalise *seed* with the paired ``SeedSequence(seed, spawn_key)`` convention."""
    if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
        return as_generator(seed)
    return as_generator(paired_seed(seed, _SPAWN_TAGS[tag]))


def _simple_edge_arrays(
    n: int, u: np.ndarray, v: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Canonicalise endpoint arrays into a simple edge set (dedup, no loops)."""
    keep = u != v
    u, v = u[keep], v[keep]
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keys = np.unique(lo * np.int64(n) + hi)
    return keys // n, keys % n


def _check_count(value: int, name: str, minimum: int = 1) -> int:
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def scale_barabasi_albert(
    n: int, m: int, seed: RandomState = None, name: Optional[str] = None
) -> Graph:
    """Vectorised Barabási–Albert preferential attachment.

    Starts from a star on ``m + 1`` vertices; each subsequent vertex draws
    its *m* attachment targets uniformly from the repeated-endpoint list of
    all edges that existed *before it arrived* — exactly the degree-biased
    sampling of preferential attachment.  The draw is resolved without a
    Python loop by pointer-chasing: every random slot either names a known
    source vertex directly or points at an earlier edge's target, and the
    chains (expected ``O(log n)`` deep) are followed with whole-array steps.

    Duplicate picks within one vertex's ``m`` draws are dropped at the end
    (simultaneous attachment), so the result is a simple graph whose edge
    count can fall slightly below the sequential construction's
    ``m + (n - m - 1) * m``.
    """
    n = _check_count(n, "n")
    m = _check_count(m, "m")
    if m >= n:
        raise ValidationError(f"m must be < n, got m={m}, n={n}")
    rng = _scale_rng(seed, "ba")
    graph_name = name or f"scale-ba_n{n}_m{m}"

    total = m + max(0, n - m - 1) * m
    sources = np.empty(total, dtype=np.int64)
    targets = np.empty(total, dtype=np.int64)
    # Initial star: edge e < m is (0, e + 1).
    targets[:m] = 0
    sources[:m] = np.arange(1, m + 1, dtype=np.int64)
    if n > m + 1:
        new_vertices = np.repeat(np.arange(m + 1, n, dtype=np.int64), m)
        sources[m:] = new_vertices
        # Edge e of vertex t samples a slot of the flattened endpoint list
        # E (E[2e] = target_e, E[2e+1] = source_e) restricted to the edges
        # that predate t — hence no self-loops by construction.
        first_edge = m + (new_vertices - (m + 1)) * m
        slots = rng.integers(0, 2 * first_edge)
        # Resolve E[slot]: odd slots are known sources; even slots copy an
        # earlier edge's target — chase until the chain bottoms out in a
        # star edge or a source.  Each hop strictly decreases the edge
        # index, so the loop terminates; chains are expected O(log n).
        unresolved = np.arange(m, total, dtype=np.int64)
        ptr = slots.copy()
        while unresolved.size:
            odd = (ptr & 1) == 1
            targets[unresolved[odd]] = sources[ptr[odd] >> 1]
            unresolved = unresolved[~odd]
            edge_ref = ptr[~odd] >> 1
            known = edge_ref < m
            targets[unresolved[known]] = targets[edge_ref[known]]
            unresolved = unresolved[~known]
            ptr = slots[edge_ref[~known] - m]
    u, v = _simple_edge_arrays(n, sources, targets)
    return Graph.from_edge_arrays(n, u, v, name=graph_name)


def scale_configuration_model(
    degrees: Sequence[int], seed: RandomState = None, name: Optional[str] = None
) -> Graph:
    """Vectorised configuration model from a target degree sequence.

    Expands the degree sequence into a stub list, shuffles it once, and
    pairs consecutive stubs.  Self-loops and multi-edges produced by the
    matching are dropped, so realised degrees can fall slightly below the
    targets (the standard simple-graph projection).
    """
    degrees = np.asarray(degrees, dtype=np.int64).ravel()
    n = int(degrees.shape[0])
    if n == 0:
        raise ValidationError("degree sequence must be non-empty")
    if degrees.min() < 0:
        raise ValidationError("degrees must be non-negative")
    if int(degrees.sum()) % 2 != 0:
        raise ValidationError(
            f"degree sequence must have an even sum, got {int(degrees.sum())}"
        )
    rng = _scale_rng(seed, "config")
    stubs = np.repeat(np.arange(n, dtype=np.int64), degrees)
    stubs = rng.permutation(stubs)
    u, v = _simple_edge_arrays(n, stubs[0::2], stubs[1::2])
    return Graph.from_edge_arrays(n, u, v, name=name or f"scale-config_n{n}")


def scale_watts_strogatz(
    n: int,
    k: int,
    p: float,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Vectorised Watts–Strogatz small-world graph.

    A ring lattice (each vertex linked to its *k* nearest neighbours, *k*
    even) where every edge is independently proposed for rewiring with
    probability *p*: the far endpoint is replaced by a uniform random
    vertex.  Rewiring is *single-proposal*: a proposal that would create a
    self-loop or collide with another edge reverts to the lattice edge
    (the classic generator retries instead; at small *p* the difference is
    negligible and the single pass keeps the construction loop-free).
    """
    n = _check_count(n, "n", minimum=3)
    k = _check_count(k, "k", minimum=2)
    if k % 2 != 0:
        raise ValidationError(f"k must be even, got {k}")
    if k >= n:
        raise ValidationError(f"k must be < n, got k={k}, n={n}")
    p = check_probability(p)
    rng = _scale_rng(seed, "ws")

    base = np.arange(n, dtype=np.int64)
    sources = np.tile(base, k // 2)
    offsets = np.repeat(np.arange(1, k // 2 + 1, dtype=np.int64), n)
    lattice_targets = (sources + offsets) % n
    m = sources.shape[0]

    rewire = rng.random(m) < p
    candidates = rng.integers(0, n, size=m)
    proposed = np.where(rewire, candidates, lattice_targets)
    # Revert proposals that self-loop or collide with any other edge key.
    lo = np.minimum(sources, proposed)
    hi = np.maximum(sources, proposed)
    keys = lo * np.int64(n) + hi
    _, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    bad = (sources == proposed) | (rewire & (counts[inverse] > 1))
    final_targets = np.where(bad, lattice_targets, proposed)
    u, v = _simple_edge_arrays(n, sources, final_targets)
    return Graph.from_edge_arrays(n, u, v, name=name or f"scale-ws_n{n}_k{k}_p{p:g}")


def stochastic_kronecker(
    scale: int,
    edge_factor: int = 8,
    initiator: Sequence[float] = (0.57, 0.19, 0.19, 0.05),
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Stochastic Kronecker (R-MAT) graph on ``2**scale`` vertices.

    Each of ``edge_factor * 2**scale`` proposed edges picks one quadrant of
    the 2x2 initiator matrix ``(a, b, c, d)`` per bit level, accumulating
    the row/column bits of its endpoints — the standard Graph500 R-MAT
    sampler, vectorised over all edges at once (``scale`` rounds of
    whole-array draws).  The directed multigraph is then symmetrised and
    projected to a simple graph.
    """
    scale = _check_count(scale, "scale")
    if scale > 30:
        raise ValidationError(f"scale must be <= 30, got {scale}")
    edge_factor = _check_count(edge_factor, "edge_factor")
    probs = np.asarray(initiator, dtype=np.float64).ravel()
    if probs.shape[0] != 4:
        raise ValidationError(
            f"initiator must have 4 entries (a, b, c, d), got {probs.shape[0]}"
        )
    if probs.min() < 0 or probs.sum() <= 0:
        raise ValidationError("initiator probabilities must be non-negative and sum > 0")
    probs = probs / probs.sum()
    a, b, c, d = (float(x) for x in probs)
    rng = _scale_rng(seed, "kron")

    n = 1 << scale
    m = edge_factor * n
    u = np.zeros(m, dtype=np.int64)
    v = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        row_draw = rng.random(m)
        col_draw = rng.random(m)
        # Bottom half of the matrix with probability c + d; within the
        # chosen half, the right column with the conditional probability.
        row_bit = row_draw >= (a + b)
        right_given_top = b / (a + b) if (a + b) > 0 else 0.0
        right_given_bottom = d / (c + d) if (c + d) > 0 else 0.0
        col_threshold = np.where(row_bit, right_given_bottom, right_given_top)
        col_bit = col_draw < col_threshold
        u |= row_bit.astype(np.int64) << level
        v |= col_bit.astype(np.int64) << level
    uu, vv = _simple_edge_arrays(n, u, v)
    return Graph.from_edge_arrays(
        n, uu, vv, name=name or f"scale-kron_s{scale}_e{edge_factor}"
    )
