"""Randomized sketching for large-graph spectral rounding.

The exact spectral path of :mod:`repro.spectral.trevisan` needs the minimum
eigenpair of the normalized adjacency ``N = D^{-1/2} A D^{-1/2}``.  On large
graphs this module replaces it with a randomized subspace sketch (the
classic Halko–Martinsson–Tropp range-finder, the idiom of APGL's
``RandomisedSVD``): draw a seeded Gaussian test matrix, run a few power
iterations of the *shifted* operator ``M = I - N`` (positive semidefinite,
its dominant eigenspace is exactly ``N``'s minimum eigenspace), and solve
the tiny Rayleigh–Ritz problem ``Q^T N Q`` in the captured subspace.  Every
operation is a sparse mat-vec or a tall-skinny QR — no ``(n, n)`` dense
allocation ever happens.

Accuracy knobs: ``rank`` (subspace width kept), ``oversample`` (extra sketch
columns, cheap insurance), ``n_power_iterations`` (sharpens the subspace
toward the extreme eigenvectors; each costs one sparse mat-mat).  When
``rank + oversample >= n`` the sketch captures the whole space and the
result is exact up to floating point.

Also here: :func:`sweep_cut_from_scores`, an ``O(m + n log n)`` threshold
sweep that replaces the dense ``(n, n)`` batched sweep of
:func:`repro.spectral.trevisan.trevisan_sweep_cut` on large graphs — every
edge contributes to the contiguous run of thresholds separating its
endpoints, so all ``n - 1`` prefix cuts come from one scatter-add plus a
cumulative sum.

Test matrices are seeded with the paired ``SeedSequence(seed, spawn_key)``
convention (:func:`repro.utils.rng.paired_seed`), so sketches are
deterministic given the root seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cuts.cut import Cut, cut_weight
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator, paired_seed
from repro.utils.validation import ValidationError

__all__ = [
    "randomized_range_finder",
    "randomized_svd",
    "sketched_minimum_eigenpair",
    "sweep_cut_from_scores",
]

#: Spawn-key tag for sketch test matrices (paired seeding convention).
_SKETCH_TAG = 9201


def _sketch_rng(seed: RandomState) -> np.random.Generator:
    if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
        return as_generator(seed)
    return as_generator(paired_seed(seed, _SKETCH_TAG))


def randomized_range_finder(
    matrix,
    rank: int,
    oversample: int = 8,
    n_power_iterations: int = 2,
    seed: RandomState = None,
) -> np.ndarray:
    """Orthonormal basis approximating the dominant range of *matrix*.

    Parameters
    ----------
    matrix:
        Anything supporting ``matrix @ X`` and ``.T`` (sparse CSR, dense
        array, LinearOperator with transpose) of shape ``(rows, cols)``.
    rank, oversample:
        Number of basis columns kept is ``min(rows, rank + oversample)``.
    n_power_iterations:
        Subspace (power) iterations ``(A A^T)^q A Omega`` with a QR
        re-orthonormalisation each half-step for numerical stability.

    Returns
    -------
    numpy.ndarray
        ``(rows, l)`` orthonormal ``Q`` with ``l = min(rows, rank + oversample)``.
    """
    rows = int(matrix.shape[0])
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    if oversample < 0:
        raise ValidationError(f"oversample must be >= 0, got {oversample}")
    l = min(rows, int(rank) + int(oversample))
    if rows == 0 or l == 0:
        return np.zeros((rows, 0), dtype=np.float64)
    rng = _sketch_rng(seed)
    omega = rng.standard_normal((int(matrix.shape[1]), l))
    sample = np.asarray(matrix @ omega, dtype=np.float64)
    q, _ = np.linalg.qr(sample)
    for _ in range(int(n_power_iterations)):
        z, _ = np.linalg.qr(np.asarray(matrix.T @ q, dtype=np.float64))
        q, _ = np.linalg.qr(np.asarray(matrix @ z, dtype=np.float64))
    return q


def randomized_svd(
    matrix,
    rank: int,
    oversample: int = 8,
    n_power_iterations: int = 2,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD ``matrix ~= U @ diag(s) @ Vt``.

    Sketch the range with :func:`randomized_range_finder`, project to the
    small ``(l, cols)`` matrix ``B = Q^T A``, and take its exact SVD — the
    APGL ``RandomisedSVD`` recipe.  Returns the top *rank* triplet.
    """
    q = randomized_range_finder(
        matrix, rank, oversample=oversample,
        n_power_iterations=n_power_iterations, seed=seed,
    )
    b = np.asarray(q.T @ matrix, dtype=np.float64)
    u_small, s, vt = np.linalg.svd(b, full_matrices=False)
    keep = min(int(rank), s.shape[0])
    return np.asarray(q @ u_small)[:, :keep], s[:keep], vt[:keep]


def sketched_minimum_eigenpair(
    graph: Graph,
    rank: int = 8,
    oversample: int = 8,
    n_power_iterations: int = 6,
    seed: RandomState = None,
) -> Tuple[float, np.ndarray]:
    """Minimum eigenpair of the normalized adjacency from a randomized sketch.

    Runs subspace iteration on the shifted operator ``M = I - N`` (spectrum
    in ``[0, 2]``; its top eigenspace is ``N``'s minimum eigenspace), then
    solves the Rayleigh–Ritz problem ``Q^T N Q`` and returns the smallest
    Ritz pair.  The Ritz value upper-bounds the true minimum eigenvalue and
    converges geometrically in ``n_power_iterations``; with
    ``rank + oversample >= n`` the result is exact up to floating point.

    Never allocates a dense ``(n, n)`` matrix: the only operator touched is
    the cached sparse CSR from
    :meth:`repro.graphs.graph.Graph.normalized_adjacency_sparse`.
    """
    n = graph.n_vertices
    if n == 0:
        return 0.0, np.zeros(0)
    if graph.n_edges == 0:
        # N is the zero matrix; any unit vector is a 0-eigenvector.  Match
        # the dense path's convention (first coordinate vector).
        vector = np.zeros(n, dtype=np.float64)
        vector[0] = 1.0
        return 0.0, vector
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    operator = graph.normalized_adjacency_sparse()
    l = min(n, int(rank) + int(oversample))
    rng = _sketch_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, l)))
    for _ in range(max(1, int(n_power_iterations))):
        q, _ = np.linalg.qr(q - np.asarray(operator @ q))
    ritz = q.T @ np.asarray(operator @ q)
    ritz = 0.5 * (ritz + ritz.T)
    theta, w = np.linalg.eigh(ritz)
    vector = np.asarray(q @ w[:, 0], dtype=np.float64)
    norm = float(np.linalg.norm(vector))
    if norm > 0:
        vector = vector / norm
    return float(theta[0]), vector


def sweep_cut_from_scores(graph: Graph, scores: np.ndarray) -> Cut:
    """Best threshold cut along sorted *scores*, in ``O(m + n log n)``.

    Candidate ``k`` places the ``k`` smallest-score vertices on the ``-1``
    side (``k = 1 .. n-1``); the plain sign threshold (``scores > 0``) is
    also tried, matching the candidate set of the dense batched sweep in
    :func:`repro.spectral.trevisan.trevisan_sweep_cut`.  An edge is cut by
    exactly the thresholds strictly between its endpoints' sort positions,
    so all prefix-cut weights come from one scatter-add over edges plus a
    cumulative sum — no ``(n, n)`` assignment matrix.
    """
    n = graph.n_vertices
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape[0] != n:
        raise ValidationError(
            f"scores must have one entry per vertex, got {scores.shape[0]} for n={n}"
        )
    if n == 0:
        return Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0,
                   graph_name=graph.name)
    order = np.argsort(scores, kind="stable")
    position = np.empty(n, dtype=np.int64)
    position[order] = np.arange(n, dtype=np.int64)

    sign_assignment = np.where(scores > 0.0, 1, -1).astype(np.int8)
    sign_weight = cut_weight(graph, sign_assignment)

    best_weight = -np.inf
    best_k = 0
    if n > 1 and graph.n_edges:
        edges = graph.edges
        weights = graph.edge_weights
        lo = np.minimum(position[edges[:, 0]], position[edges[:, 1]])
        hi = np.maximum(position[edges[:, 0]], position[edges[:, 1]])
        # Edge (lo, hi) is cut by prefixes k in (lo, hi]: difference array.
        diff = np.zeros(n + 1, dtype=np.float64)
        np.add.at(diff, lo + 1, weights)
        np.add.at(diff, hi + 1, -weights)
        prefix_cuts = np.cumsum(diff)[1:n]  # weight of cut k = 1 .. n-1
        best_k = int(np.argmax(prefix_cuts)) + 1
        best_weight = float(prefix_cuts[best_k - 1])
    if sign_weight > best_weight:
        return Cut(assignment=sign_assignment, weight=float(sign_weight),
                   graph_name=graph.name)
    assignment = np.ones(n, dtype=np.int8)
    assignment[order[:best_k]] = -1
    return Cut(assignment=assignment, weight=best_weight, graph_name=graph.name)
