"""Evolving graphs: edge-delta streams, versioned snapshots, warm re-solves.

The scale subsystem's answer to graphs that change over time (the
``evolving`` workload, :mod:`repro.workloads.evolving`):

:class:`EdgeDelta` / :class:`EdgeStream`
    A delta is one ``add`` / ``remove`` / ``reweight`` of a single edge;
    a stream is a sequence of delta *batches* (steps).  Deltas are strict:
    adding an existing edge, or removing/reweighting a missing one, raises
    — silent merges would make replay fingerprints ambiguous.

:class:`GraphVersion`
    An immutable snapshot chain.  ``version.apply(batch)`` folds a batch
    into the parent's canonical edge arrays *incrementally* (vectorised
    mask + merge, no dense matrix, no per-edge Python dict rebuild) and
    returns a child whose :meth:`repro.graphs.graph.Graph.fingerprint` is
    identical to building the final graph from scratch — versions are
    content-addressed, so serve caches and shard checkpoints recognise a
    replayed graph no matter how it was reached.

Warm re-solves
    :func:`warm_resolve` reuses the previous version's best cut as the
    initial state of :func:`sparse_greedy_improve`, a CSR-native 1-flip
    local search (``O(degree)`` per flip, no dense adjacency) — after a
    small delta batch the old cut is nearly optimal and a handful of flips
    recovers it, instead of paying a full spectral solve per step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState, as_generator, paired_seed
from repro.utils.validation import ValidationError

__all__ = [
    "EdgeDelta",
    "EdgeStream",
    "GraphVersion",
    "apply_deltas",
    "sparse_greedy_improve",
    "warm_resolve",
    "warm_start_assignment",
]

#: Recognised delta operations.
DELTA_OPS = ("add", "remove", "reweight")

#: Spawn-key tag for random stream generation (paired seeding convention).
_STREAM_TAG = 9301


@dataclass(frozen=True)
class EdgeDelta:
    """One mutation of a single undirected edge.

    ``op`` is ``"add"`` (edge must not exist), ``"remove"`` (must exist;
    ``weight`` ignored), or ``"reweight"`` (must exist; weight replaced —
    not summed — so replays are unambiguous).
    """

    op: str
    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in DELTA_OPS:
            raise ValidationError(
                f"delta op must be one of {DELTA_OPS}, got {self.op!r}"
            )
        if int(self.u) == int(self.v):
            raise ValidationError(f"self-loop delta ({self.u}, {self.v}) is not allowed")
        if not np.isfinite(self.weight):
            raise ValidationError(f"delta weight must be finite, got {self.weight!r}")

    def endpoints(self) -> Tuple[int, int]:
        """Canonical (lo, hi) endpoint pair."""
        u, v = int(self.u), int(self.v)
        return (u, v) if u < v else (v, u)

    def to_dict(self) -> dict:
        return {"op": self.op, "u": int(self.u), "v": int(self.v),
                "weight": float(self.weight)}

    @classmethod
    def from_dict(cls, data: dict) -> "EdgeDelta":
        return cls(op=str(data["op"]), u=int(data["u"]), v=int(data["v"]),
                   weight=float(data.get("weight", 1.0)))


class EdgeStream:
    """An ordered sequence of delta batches (steps) for one evolving graph."""

    def __init__(self, steps: Sequence[Sequence[EdgeDelta]]) -> None:
        self._steps: Tuple[Tuple[EdgeDelta, ...], ...] = tuple(
            tuple(step) for step in steps
        )
        for step in self._steps:
            for delta in step:
                if not isinstance(delta, EdgeDelta):
                    raise ValidationError(
                        f"stream steps must contain EdgeDelta items, got {type(delta).__name__}"
                    )

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    def step(self, index: int) -> Tuple[EdgeDelta, ...]:
        """The delta batch of step *index*."""
        return self._steps[index]

    def __iter__(self) -> Iterator[Tuple[EdgeDelta, ...]]:
        return iter(self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    @classmethod
    def random(
        cls,
        graph: Graph,
        n_steps: int,
        deltas_per_step: int,
        seed: RandomState = None,
        p_add: float = 0.45,
        p_remove: float = 0.3,
    ) -> "EdgeStream":
        """A valid random stream against *graph* (deterministic in the seed).

        Each delta is an add (probability *p_add*), a remove (*p_remove*),
        or a reweight (remainder), drawn against the evolving edge set so
        every generated batch applies cleanly.  Integer seeds follow the
        paired ``SeedSequence(seed, spawn_key)`` convention.
        """
        if n_steps < 0 or deltas_per_step < 0:
            raise ValidationError("n_steps and deltas_per_step must be non-negative")
        if graph.n_vertices < 2:
            raise ValidationError("random streams need a graph with >= 2 vertices")
        if isinstance(seed, (np.random.Generator, np.random.SeedSequence)):
            rng = as_generator(seed)
        else:
            rng = as_generator(paired_seed(seed, _STREAM_TAG))
        n = graph.n_vertices
        edge_list: List[Tuple[int, int]] = [
            (int(a), int(b)) for a, b in graph.edges
        ]
        edge_set = set(edge_list)
        complete = n * (n - 1) // 2
        steps: List[List[EdgeDelta]] = []
        for _ in range(int(n_steps)):
            batch: List[EdgeDelta] = []
            for _ in range(int(deltas_per_step)):
                roll = float(rng.random())
                can_add = len(edge_set) < complete
                if (roll < p_add or not edge_list) and can_add:
                    while True:
                        a, b = (int(x) for x in rng.integers(0, n, size=2))
                        if a == b:
                            continue
                        key = (a, b) if a < b else (b, a)
                        if key not in edge_set:
                            break
                    batch.append(EdgeDelta("add", key[0], key[1], 1.0))
                    edge_set.add(key)
                    edge_list.append(key)
                elif roll < p_add + p_remove and edge_list:
                    index = int(rng.integers(0, len(edge_list)))
                    key = edge_list[index]
                    edge_list[index] = edge_list[-1]
                    edge_list.pop()
                    edge_set.discard(key)
                    batch.append(EdgeDelta("remove", key[0], key[1]))
                elif edge_list:
                    index = int(rng.integers(0, len(edge_list)))
                    key = edge_list[index]
                    batch.append(
                        EdgeDelta("reweight", key[0], key[1],
                                  float(0.5 + rng.random()))
                    )
                # A full graph with no edges to remove/reweight yields a
                # shorter batch — only possible on degenerate tiny graphs.
            steps.append(batch)
        return cls(steps)


def apply_deltas(
    graph: Graph, deltas: Sequence[EdgeDelta], name: Optional[str] = None
) -> Graph:
    """Fold a delta batch into *graph*'s canonical edge arrays (vectorised).

    Deltas apply sequentially within the batch (an ``add`` then ``remove``
    of the same edge is legal and cancels).  The result is built through
    :meth:`Graph.from_edge_arrays`, so its fingerprint equals a from-scratch
    construction of the same final edge set — no dense matrix, no per-edge
    dict rebuild of the untouched edges.
    """
    n = graph.n_vertices
    edges = graph.edges
    weights = graph.edge_weights
    base_keys = edges[:, 0] * np.int64(max(n, 1)) + edges[:, 1]

    def base_weight(key: int) -> Optional[float]:
        index = int(np.searchsorted(base_keys, key))
        if index < base_keys.shape[0] and int(base_keys[index]) == key:
            return float(weights[index])
        return None

    overlay: dict = {}   # key -> new weight (adds and reweights)
    removed: set = set()
    for delta in deltas:
        if not isinstance(delta, EdgeDelta):
            raise ValidationError(
                f"deltas must be EdgeDelta items, got {type(delta).__name__}"
            )
        lo, hi = delta.endpoints()
        if not (0 <= lo and hi < n):
            raise ValidationError(
                f"delta edge ({lo}, {hi}) out of range for n_vertices={n}"
            )
        key = lo * max(n, 1) + hi
        exists = key in overlay or (key not in removed and base_weight(key) is not None)
        if delta.op == "add":
            if exists:
                raise ValidationError(
                    f"cannot add edge ({lo}, {hi}): it already exists"
                )
            overlay[key] = float(delta.weight)
            removed.discard(key)
        elif delta.op == "remove":
            if not exists:
                raise ValidationError(
                    f"cannot remove edge ({lo}, {hi}): it does not exist"
                )
            overlay.pop(key, None)
            removed.add(key)
        else:  # reweight
            if not exists:
                raise ValidationError(
                    f"cannot reweight edge ({lo}, {hi}): it does not exist"
                )
            overlay[key] = float(delta.weight)

    affected = set(overlay) | removed
    if affected:
        affected_keys = np.fromiter(affected, dtype=np.int64, count=len(affected))
        keep = ~np.isin(base_keys, affected_keys)
    else:
        keep = np.ones(base_keys.shape[0], dtype=bool)
    new_keys = np.fromiter(overlay.keys(), dtype=np.int64, count=len(overlay))
    new_weights = np.fromiter(overlay.values(), dtype=np.float64, count=len(overlay))
    all_keys = np.concatenate([base_keys[keep], new_keys])
    all_weights = np.concatenate([weights[keep], new_weights])
    return Graph.from_edge_arrays(
        n,
        all_keys // max(n, 1),
        all_keys % max(n, 1),
        weights=all_weights,
        name=name or graph.name,
    )


@dataclass(frozen=True)
class GraphVersion:
    """One snapshot in an evolving-graph chain.

    ``version`` counts from 0 (the initial graph); ``parent_fingerprint``
    content-addresses the predecessor (``None`` for the root), so a chain
    of versions is verifiable end to end.
    """

    graph: Graph
    version: int = 0
    parent_fingerprint: Optional[str] = None

    @classmethod
    def initial(cls, graph: Graph) -> "GraphVersion":
        """The root version of an evolving graph."""
        return cls(graph=graph, version=0, parent_fingerprint=None)

    def fingerprint(self) -> str:
        """Stable content hash of this version's graph."""
        return self.graph.fingerprint()

    def apply(
        self, deltas: Sequence[EdgeDelta], name: Optional[str] = None
    ) -> "GraphVersion":
        """Fold a delta batch and return the successor version."""
        child = apply_deltas(
            self.graph, deltas,
            name=name or f"{self.graph.name}@v{self.version + 1}",
        )
        return GraphVersion(
            graph=child,
            version=self.version + 1,
            parent_fingerprint=self.graph.fingerprint(),
        )


def warm_start_assignment(
    previous: Union[Cut, np.ndarray], n_vertices: int
) -> np.ndarray:
    """Carry a previous cut's ±1 assignment onto a graph of *n_vertices*.

    Vertices beyond the previous assignment's length (a grown graph) default
    to ``+1``; extra entries (a shrunk graph) are dropped.
    """
    source = previous.assignment if isinstance(previous, Cut) else previous
    source = np.asarray(source).ravel()
    out = np.ones(int(n_vertices), dtype=np.int8)
    k = min(out.shape[0], source.shape[0])
    out[:k] = np.where(source[:k] < 0, -1, 1).astype(np.int8)
    return out


def sparse_greedy_improve(
    graph: Graph,
    assignment: np.ndarray,
    max_flips: Optional[int] = None,
    tolerance: float = 1e-12,
) -> Cut:
    """CSR-native greedy 1-flip local search (no dense adjacency).

    Flipping vertex ``i`` changes the cut by ``gain_i = x_i * (A x)_i``;
    the best positive-gain vertex is flipped until no gain remains or
    *max_flips* is exhausted.  Each flip updates only its neighbours'
    gains through the cached CSR (``O(degree)`` per flip plus the argmax),
    so a warm-started re-solve after a small delta batch costs a handful
    of flips instead of a fresh spectral solve.
    """
    n = graph.n_vertices
    if n == 0:
        return Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0,
                   graph_name=graph.name)
    x = np.where(np.asarray(assignment).ravel()[:n] < 0, -1.0, 1.0)
    if x.shape[0] != n:
        raise ValidationError(
            f"assignment must have one entry per vertex, got "
            f"{np.asarray(assignment).ravel().shape[0]} for n={n}"
        )
    adjacency = graph.adjacency_sparse()
    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data
    neighbor_sums = np.asarray(adjacency @ x, dtype=np.float64)
    gains = x * neighbor_sums
    limit = int(max_flips) if max_flips is not None else n
    for _ in range(max(0, limit)):
        best = int(np.argmax(gains))
        if gains[best] <= tolerance:
            break
        x[best] = -x[best]
        start, end = indptr[best], indptr[best + 1]
        neighbors = indices[start:end]
        # Neighbour j's sum changes by w_ij * (x_i_new - x_i_old) = 2 w_ij x_i_new.
        neighbor_sums[neighbors] += 2.0 * data[start:end] * x[best]
        gains[neighbors] = x[neighbors] * neighbor_sums[neighbors]
        gains[best] = x[best] * neighbor_sums[best]
    return Cut.from_assignment(graph, x.astype(np.int8))


def warm_resolve(
    graph: Graph,
    previous: Optional[Union[Cut, np.ndarray]] = None,
    method: str = "auto",
    seed: RandomState = None,
    max_flips: Optional[int] = None,
) -> Cut:
    """Solve *graph*, warm-starting from a previous version's cut if given.

    Cold (``previous is None``): a spectral Trevisan sweep cut
    (:func:`repro.spectral.trevisan.trevisan_sweep_cut` — on large graphs
    ``method="auto"`` routes to the randomized sketch and the ``O(m)``
    sweep), refined by :func:`sparse_greedy_improve`.  Warm: greedy
    refinement straight from the carried assignment — no spectral solve.
    """
    if graph.n_vertices == 0:
        return Cut(assignment=np.zeros(0, dtype=np.int8), weight=0.0,
                   graph_name=graph.name)
    if previous is None:
        from repro.spectral.trevisan import trevisan_sweep_cut

        spectral = trevisan_sweep_cut(graph, method=method, seed=seed)
        return sparse_greedy_improve(
            graph, spectral.cut.assignment, max_flips=max_flips
        )
    warm = warm_start_assignment(previous, graph.n_vertices)
    return sparse_greedy_improve(graph, warm, max_flips=max_flips)
