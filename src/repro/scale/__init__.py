"""Scale subsystem: CSR-native generators, sketched spectra, evolving graphs.

Everything the library needs to work far beyond the paper's small evaluation
instances without ever materialising a dense ``(n, n)`` matrix:

* :mod:`repro.scale.generators` — a vectorised scale-free family
  (Barabási–Albert, configuration model, Watts–Strogatz, stochastic
  Kronecker) built edge-list-first through
  :meth:`repro.graphs.graph.Graph.from_edge_arrays`, so a 100k-vertex
  instance generates in milliseconds and the dense ``adjacency()`` path is
  never invoked.
* :mod:`repro.scale.sketch` — randomized range-finder / randomized SVD over
  the sparse normalized adjacency, the ``method="sketch"`` backend of
  :func:`repro.spectral.trevisan.minimum_eigenvector`, plus an
  ``O(m + n log n)`` sweep cut that replaces the dense batched sweep on
  large graphs.
* :mod:`repro.scale.stream` — evolving graphs: :class:`EdgeStream` batches
  of add/remove/reweight deltas, :class:`GraphVersion` snapshots with
  incremental canonical-array updates and stable fingerprints, and
  warm-started re-solves reusing the previous version's best cut.

The registered ``evolving`` workload (:mod:`repro.workloads.evolving`) and
the ``scale-small`` / ``scale-large`` arena suites are the front doors.
"""

from repro.scale.generators import (
    scale_barabasi_albert,
    scale_configuration_model,
    scale_watts_strogatz,
    stochastic_kronecker,
)
from repro.scale.sketch import (
    randomized_range_finder,
    randomized_svd,
    sketched_minimum_eigenpair,
    sweep_cut_from_scores,
)
from repro.scale.stream import (
    EdgeDelta,
    EdgeStream,
    GraphVersion,
    apply_deltas,
    sparse_greedy_improve,
    warm_resolve,
    warm_start_assignment,
)

__all__ = [
    "scale_barabasi_albert",
    "scale_configuration_model",
    "scale_watts_strogatz",
    "stochastic_kronecker",
    "randomized_range_finder",
    "randomized_svd",
    "sketched_minimum_eigenpair",
    "sweep_cut_from_scores",
    "EdgeDelta",
    "EdgeStream",
    "GraphVersion",
    "apply_deltas",
    "sparse_greedy_improve",
    "warm_resolve",
    "warm_start_assignment",
]
