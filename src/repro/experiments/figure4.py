"""Figure 4 reproduction: convergence on the empirical (Network Repository) graphs.

Each panel is a single graph (no error bars); curves are the best-so-far cut
weight relative to the software solver's best cut, as a function of samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.analysis.convergence import sample_points_log_spaced
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.experiments.config import Figure4Config
from repro.graphs.graph import Graph
from repro.engine.sampler import trial_seed_sequences
from repro.graphs.repository import list_empirical_graphs, load_empirical_graph
from repro.utils.logging import get_logger
from repro.utils.rng import paired_seed

__all__ = ["Figure4Panel", "run_figure4_panel", "run_figure4"]

_logger = get_logger("experiments.figure4")


@dataclass(frozen=True)
class Figure4Panel:
    """One panel of Figure 4: one empirical graph, four methods."""

    graph_name: str
    n_vertices: int
    n_edges: int
    sample_counts: np.ndarray
    curves: Dict[str, np.ndarray]
    solver_best_weight: float
    best_weights: Dict[str, float]
    metadata: Dict = field(default_factory=dict)


def _relative_running_best(weights: np.ndarray, counts: np.ndarray, reference: float) -> np.ndarray:
    best = np.maximum.accumulate(np.asarray(weights, dtype=np.float64))
    values = best[np.minimum(counts, best.size) - 1]
    return values / reference if reference > 0 else np.ones_like(values)


def run_figure4_panel(
    graph: Graph | str,
    config: Optional[Figure4Config] = None,
    graph_index: int = 0,
) -> Figure4Panel:
    """Run one Figure 4 panel on an empirical graph (by object or registry name).

    *graph_index* is the panel's position in the sweep: all of the panel's
    randomness derives from the paired convention
    ``SeedSequence(seed, spawn_key=(graph_index, method))``, so panels are
    mutually independent yet individually reproducible.
    """
    config = config or Figure4Config()
    seeds = trial_seed_sequences(paired_seed(config.seed, graph_index), 5)
    if isinstance(graph, str):
        graph = load_empirical_graph(graph, seed=config.seed)

    counts = sample_points_log_spaced(config.n_samples)

    solver_result = goemans_williamson(
        graph, n_samples=config.n_solver_samples, seed=seeds[0]
    )
    reference = solver_result.best_weight if solver_result.best_weight > 0 else 1.0

    gw_circuit = LIFGWCircuit(graph, config=config.lif_gw, seed=seeds[1])
    gw_result = gw_circuit.sample_cuts(config.n_samples, seed=seeds[2])

    tr_circuit = LIFTrevisanCircuit(graph, config=config.lif_tr)
    tr_result = tr_circuit.sample_cuts(config.n_samples, seed=seeds[3])

    random_best, random_weights = random_baseline(
        graph, n_samples=config.n_samples, seed=seeds[4]
    )

    curves = {
        "lif_gw": _relative_running_best(gw_result.trajectory.weights, counts, reference),
        "lif_tr": _relative_running_best(tr_result.trajectory.weights, counts, reference),
        "solver": _relative_running_best(
            solver_result.sample_weights, np.minimum(counts, config.n_solver_samples), reference
        ),
        "random": _relative_running_best(random_weights, counts, reference),
    }
    best_weights = {
        "lif_gw": gw_result.best_weight,
        "lif_tr": tr_result.best_weight,
        "solver": solver_result.best_weight,
        "random": random_best.weight,
    }
    _logger.info(
        "Figure 4 panel %s: solver=%.0f lif_gw=%.0f lif_tr=%.0f random=%.0f",
        graph.name, best_weights["solver"], best_weights["lif_gw"],
        best_weights["lif_tr"], best_weights["random"],
    )
    return Figure4Panel(
        graph_name=graph.name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        sample_counts=counts,
        curves=curves,
        solver_best_weight=solver_result.best_weight,
        best_weights=best_weights,
        metadata={"n_samples": config.n_samples},
    )


def run_figure4(
    graph_names: Optional[Sequence[str]] = None,
    config: Optional[Figure4Config] = None,
) -> List[Figure4Panel]:
    """Run Figure 4 for the given graphs (default: all 16 Table I graphs)."""
    config = config or Figure4Config()
    names = list(graph_names or config.graph_names or list_empirical_graphs())
    return [
        run_figure4_panel(name, config=config, graph_index=g)
        for g, name in enumerate(names)
    ]
