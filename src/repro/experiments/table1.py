"""Table I reproduction: maximum cut values per circuit per empirical graph.

The paper's Table I reports, for each of 16 Network Repository graphs, the
best cut found by LIF-GW, LIF-TR, the software solver, and random assignment,
together with the reference values from Mirka & Williamson (2022).  This
module regenerates those rows (on the exact/surrogate graphs of
:mod:`repro.graphs.repository`) and attaches the paper's published values so
reports can show paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.experiments.config import Table1Config
from repro.graphs.graph import Graph
from repro.engine.sampler import trial_seed_sequences
from repro.graphs.repository import EMPIRICAL_GRAPHS, list_empirical_graphs, load_empirical_graph
from repro.utils.logging import get_logger
from repro.utils.rng import paired_seed

__all__ = ["Table1Row", "run_table1_row", "run_table1"]

_logger = get_logger("experiments.table1")


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I: best cut per method on one graph."""

    graph_name: str
    n_vertices: int
    n_edges: int
    measured: Dict[str, float]
    paper: Dict[str, int] = field(default_factory=dict)
    is_surrogate: bool = False


def run_table1_row(
    graph: Graph | str,
    config: Optional[Table1Config] = None,
    graph_index: int = 0,
) -> Table1Row:
    """Compute one Table I row.

    *graph_index* is the row's position in the table: all of the row's
    randomness derives from the paired convention
    ``SeedSequence(seed, spawn_key=(graph_index, method))``, so rows are
    mutually independent yet individually reproducible.
    """
    config = config or Table1Config()
    seeds = trial_seed_sequences(paired_seed(config.seed, graph_index), 5)
    paper_values: Dict[str, int] = {}
    is_surrogate = False
    if isinstance(graph, str):
        spec = EMPIRICAL_GRAPHS.get(graph)
        if spec is not None:
            paper_values = dict(spec.table1)
            is_surrogate = spec.kind == "surrogate"
        graph = load_empirical_graph(graph, seed=config.seed)

    solver_result = goemans_williamson(
        graph, n_samples=config.n_solver_samples, seed=seeds[0]
    )
    gw_result = LIFGWCircuit(
        graph, config=config.lif_gw, seed=seeds[1]
    ).sample_cuts(config.n_samples, seed=seeds[2])
    tr_result = LIFTrevisanCircuit(graph, config=config.lif_tr).sample_cuts(
        config.n_samples, seed=seeds[3]
    )
    random_best, _ = random_baseline(
        graph, n_samples=config.n_random_samples, seed=seeds[4]
    )

    measured = {
        "lif_gw": gw_result.best_weight,
        "lif_tr": tr_result.best_weight,
        "solver": solver_result.best_weight,
        "random": random_best.weight,
    }
    _logger.info("Table I row %s: %s", graph.name, measured)
    return Table1Row(
        graph_name=graph.name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        measured=measured,
        paper=paper_values,
        is_surrogate=is_surrogate,
    )


def run_table1(
    graph_names: Optional[Sequence[str]] = None,
    config: Optional[Table1Config] = None,
) -> List[Table1Row]:
    """Compute Table I for the given graphs (default: all 16 paper graphs)."""
    config = config or Table1Config()
    names = list(graph_names or config.graph_names or list_empirical_graphs())
    return [
        run_table1_row(name, config=config, graph_index=g)
        for g, name in enumerate(names)
    ]
