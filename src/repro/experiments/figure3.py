"""Figure 3 reproduction: Erdős–Rényi convergence sweep.

For every (n, p) cell the paper generates 10 random graphs, runs the two
circuits plus the software solver and random baseline on each, and plots the
best-so-far cut weight *relative to the solver's best cut* as a function of
the number of samples, with error bars giving the SEM over the 10 graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.analysis.convergence import ConvergenceCurve, sample_points_log_spaced
from repro.analysis.statistics import mean_and_sem
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.experiments.config import Figure3Config
from repro.graphs.generators import erdos_renyi
from repro.obs.trace import span
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.utils.logging import get_logger
from repro.utils.rng import grid_cell_key, paired_seed, spawn_generators

__all__ = [
    "Figure3Cell",
    "run_figure3_graph",
    "figure3_cell_from_graph_results",
    "run_figure3_cell",
    "run_figure3",
    "METHODS",
]

_logger = get_logger("experiments.figure3")

#: Methods plotted in Figure 3, keyed as in the paper's legend.
METHODS = ("lif_gw", "lif_tr", "solver", "random")


@dataclass(frozen=True)
class Figure3Cell:
    """One panel of Figure 3: a single (n, p) graph class.

    Attributes
    ----------
    n_vertices, probability:
        The G(n, p) parameters of the panel.
    sample_counts:
        Sample counts at which the curves are evaluated.
    curves:
        Per-method mean relative cut weight at each sample count.
    sems:
        Per-method SEM (over graphs) at each sample count.
    solver_best_weights:
        The software solver's best cut weight on each graph (the normaliser).
    """

    n_vertices: int
    probability: float
    sample_counts: np.ndarray
    curves: Dict[str, np.ndarray]
    sems: Dict[str, np.ndarray]
    solver_best_weights: np.ndarray
    metadata: Dict = field(default_factory=dict)


def _relative_running_best(weights: np.ndarray, counts: np.ndarray, reference: float) -> np.ndarray:
    best = np.maximum.accumulate(np.asarray(weights, dtype=np.float64))
    values = best[np.minimum(counts, best.size) - 1]
    return values / reference if reference > 0 else np.ones_like(values)


def _run_single_graph(task) -> Dict[str, np.ndarray]:
    """Run all four methods on one random graph (a single sweep work item)."""
    (n, p, config, graph_index) = task.payload
    return _run_graph_seeded(n, p, config, graph_index, task.seed_sequence())


def run_figure3_graph(
    n_vertices: int,
    probability: float,
    graph_index: int,
    config: Optional[Figure3Config] = None,
) -> Dict[str, np.ndarray]:
    """Run all four methods on graph *graph_index* of one (n, p) cell.

    The atomic, independently schedulable unit of the Figure 3 sweep: all
    randomness derives from the paired convention
    ``SeedSequence(seed, spawn_key=(n, key(p), j))``, so the result is
    identical whether the graph runs inside :func:`run_figure3_cell`, in a
    process pool, or on its own shard (:mod:`repro.distrib`).
    """
    config = config or Figure3Config()
    seed = paired_seed(
        config.seed, *grid_cell_key(n_vertices, probability), graph_index
    )
    return _run_graph_seeded(n_vertices, probability, config, graph_index, seed)


def _run_graph_seeded(
    n: int, p: float, config: Figure3Config, graph_index: int, seed
) -> Dict[str, np.ndarray]:
    # Paired seeding convention: graph j of cell (n, p) derives everything
    # from SeedSequence(seed, spawn_key=(n, key(p), j)); each method gets its
    # own spawned child, so methods stay paired per graph across execution
    # modes (serial / process pool / sharded) and worker counts.
    with span(
        "figure3.graph", n_vertices=n, probability=p, graph_index=graph_index
    ):
        return _run_graph_traced(n, p, config, graph_index, seed)


def _run_graph_traced(
    n: int, p: float, config: Figure3Config, graph_index: int, seed
) -> Dict[str, np.ndarray]:
    graph_rng, gw_rng, tr_rng, solver_rng, random_rng = spawn_generators(seed, 5)
    graph = erdos_renyi(n, p, seed=graph_rng, name=f"er_n{n}_p{p:g}_{graph_index}")
    counts = sample_points_log_spaced(config.n_samples)

    solver_result = goemans_williamson(
        graph, n_samples=config.n_solver_samples, seed=solver_rng
    )
    solver_best = solver_result.best_weight
    reference = solver_best if solver_best > 0 else 1.0

    gw_circuit = LIFGWCircuit(graph, config=config.lif_gw, seed=gw_rng)
    gw_result = gw_circuit.sample_cuts(config.n_samples, seed=gw_rng)

    tr_circuit = LIFTrevisanCircuit(graph, config=config.lif_tr)
    tr_result = tr_circuit.sample_cuts(config.n_samples, seed=tr_rng)

    _, random_weights = random_baseline(graph, n_samples=config.n_samples, seed=random_rng)

    solver_curve = _relative_running_best(
        solver_result.sample_weights,
        np.minimum(counts, config.n_solver_samples),
        reference,
    )
    return {
        "sample_counts": counts,
        "lif_gw": _relative_running_best(gw_result.trajectory.weights, counts, reference),
        "lif_tr": _relative_running_best(tr_result.trajectory.weights, counts, reference),
        "solver": solver_curve,
        "random": _relative_running_best(random_weights, counts, reference),
        "solver_best": np.array([solver_best]),
    }


def run_figure3_cell(
    n_vertices: int,
    probability: float,
    config: Optional[Figure3Config] = None,
    parallel: Optional[ParallelConfig] = None,
) -> Figure3Cell:
    """Run one (n, p) panel of Figure 3."""
    from repro.parallel.seeds import seeded_tasks

    config = config or Figure3Config()
    payloads = [
        (n_vertices, probability, config, graph_index)
        for graph_index in range(config.n_graphs_per_cell)
    ]
    # Paired seeding convention: graph j of this cell runs on
    # SeedSequence(seed, spawn_key=(n, key(p), j)), so panels are independent
    # but reproducible, without the process-salted hash() roots used before.
    tasks = seeded_tasks(
        payloads, root_seed=config.seed,
        base_key=grid_cell_key(n_vertices, probability),
    )
    results = parallel_map(_run_single_graph, tasks, config=parallel)
    return figure3_cell_from_graph_results(
        n_vertices, probability, results, config=config
    )


def figure3_cell_from_graph_results(
    n_vertices: int,
    probability: float,
    results: List[Dict[str, np.ndarray]],
    config: Optional[Figure3Config] = None,
) -> Figure3Cell:
    """Aggregate per-graph results (in graph order) into a :class:`Figure3Cell`.

    *results* are the dictionaries produced by :func:`run_figure3_graph` for
    graphs ``0 .. n_graphs_per_cell - 1`` of one (n, p) cell, in graph order.
    Shared by :func:`run_figure3_cell` and the sharded merge path
    (:mod:`repro.distrib`), so both aggregate with identical arithmetic.
    """
    config = config or Figure3Config()
    counts = np.asarray(results[0]["sample_counts"])
    curves: Dict[str, np.ndarray] = {}
    sems: Dict[str, np.ndarray] = {}
    for method in METHODS:
        stacked = np.vstack([np.asarray(r[method], dtype=np.float64) for r in results])
        means = np.empty(stacked.shape[1])
        errors = np.empty(stacked.shape[1])
        for j in range(stacked.shape[1]):
            means[j], errors[j] = mean_and_sem(stacked[:, j])
        curves[method] = means
        sems[method] = errors
    solver_best_weights = np.concatenate(
        [np.asarray(r["solver_best"], dtype=np.float64) for r in results]
    )
    _logger.info(
        "Figure 3 cell G(%d, %.2f): lif_gw=%.3f lif_tr=%.3f random=%.3f (final relative)",
        n_vertices, probability,
        curves["lif_gw"][-1], curves["lif_tr"][-1], curves["random"][-1],
    )
    return Figure3Cell(
        n_vertices=n_vertices,
        probability=probability,
        sample_counts=counts,
        curves=curves,
        sems=sems,
        solver_best_weights=solver_best_weights,
        metadata={"n_graphs": len(results), "n_samples": config.n_samples},
    )


def run_figure3(
    config: Optional[Figure3Config] = None,
    parallel: Optional[ParallelConfig] = None,
) -> List[Figure3Cell]:
    """Run the full Figure 3 grid (all size x probability cells)."""
    config = config or Figure3Config()
    cells = []
    for n in config.sizes:
        for p in config.probabilities:
            cells.append(run_figure3_cell(n, p, config=config, parallel=parallel))
    return cells
