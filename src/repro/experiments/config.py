"""Experiment configuration dataclasses and the paper's parameter grids.

All four configs share the :class:`repro.utils.validation.ValidatedConfig`
mixin: each declares its invariants in a single ``validate()`` hook (wired
into dataclass construction by the mixin) and inherits ``to_dict()``, the
JSON-safe rendering the workload layer embeds in every
:class:`repro.workloads.RunReport` metadata header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.utils.validation import ValidatedConfig, ValidationError, check_count

__all__ = [
    "PAPER_FIGURE3_SIZES",
    "PAPER_FIGURE3_PROBABILITIES",
    "PAPER_SAMPLE_BUDGET",
    "Figure3Config",
    "Figure4Config",
    "Table1Config",
    "AblationConfig",
]

#: Erdős–Rényi vertex counts used in the paper's Figure 3.
PAPER_FIGURE3_SIZES: Tuple[int, ...] = (50, 100, 200, 350, 500)

#: Erdős–Rényi connection probabilities used in the paper's Figure 3.
PAPER_FIGURE3_PROBABILITIES: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75)

#: The paper draws 2^20 cut samples per circuit per graph.
PAPER_SAMPLE_BUDGET: int = 2**20


@dataclass(frozen=True)
class Figure3Config(ValidatedConfig):
    """Configuration of the Figure 3 Erdős–Rényi sweep.

    Defaults are scaled down from the paper (10 graphs per cell, 2^20 samples)
    so the sweep completes on a laptop; pass the paper values explicitly to
    regenerate the full figure.
    """

    sizes: Sequence[int] = PAPER_FIGURE3_SIZES
    probabilities: Sequence[float] = PAPER_FIGURE3_PROBABILITIES
    n_graphs_per_cell: int = 10
    n_samples: int = 1024
    n_solver_samples: int = 100
    seed: Optional[int] = 0
    lif_gw: LIFGWConfig = field(default_factory=LIFGWConfig)
    lif_tr: LIFTrevisanConfig = field(default_factory=LIFTrevisanConfig)

    def validate(self) -> None:
        check_count(self.n_samples, "n_samples")
        check_count(self.n_graphs_per_cell, "n_graphs_per_cell")
        check_count(self.n_solver_samples, "n_solver_samples")
        if not self.sizes or not self.probabilities:
            raise ValidationError("sizes and probabilities must be non-empty")
        for n in self.sizes:
            check_count(n, "graph sizes", minimum=2)
        for p in self.probabilities:
            if not (0.0 < p <= 1.0):
                raise ValidationError(f"probabilities must be in (0, 1], got {p}")


@dataclass(frozen=True)
class Figure4Config(ValidatedConfig):
    """Configuration of the Figure 4 empirical-graph sweep."""

    graph_names: Sequence[str] = ()
    n_samples: int = 1024
    n_solver_samples: int = 100
    seed: Optional[int] = 0
    lif_gw: LIFGWConfig = field(default_factory=LIFGWConfig)
    lif_tr: LIFTrevisanConfig = field(default_factory=LIFTrevisanConfig)

    def validate(self) -> None:
        check_count(self.n_samples, "n_samples")
        check_count(self.n_solver_samples, "n_solver_samples")


@dataclass(frozen=True)
class Table1Config(ValidatedConfig):
    """Configuration of the Table I maximum-cut-value reproduction."""

    graph_names: Sequence[str] = ()
    n_samples: int = 2048
    n_solver_samples: int = 200
    n_random_samples: int = 2048
    seed: Optional[int] = 0
    lif_gw: LIFGWConfig = field(default_factory=LIFGWConfig)
    lif_tr: LIFTrevisanConfig = field(default_factory=LIFTrevisanConfig)

    def validate(self) -> None:
        check_count(self.n_samples, "n_samples")
        check_count(self.n_solver_samples, "n_solver_samples")
        check_count(self.n_random_samples, "n_random_samples")


@dataclass(frozen=True)
class AblationConfig(ValidatedConfig):
    """Shared configuration for the ablation studies (DESIGN.md E4/E6)."""

    n_vertices: int = 60
    edge_probability: float = 0.25
    n_graphs: int = 3
    n_samples: int = 512
    seed: Optional[int] = 0

    def validate(self) -> None:
        check_count(self.n_vertices, "n_vertices", minimum=2)
        check_count(self.n_graphs, "n_graphs")
        check_count(self.n_samples, "n_samples")
        if not (0.0 < self.edge_probability <= 1.0):
            raise ValidationError(
                f"edge_probability must be in (0, 1], got {self.edge_probability}"
            )
