"""Report formatting: plain-text / markdown tables matching the paper's artifacts."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.experiments.figure3 import Figure3Cell
from repro.experiments.figure4 import Figure4Panel
from repro.experiments.table1 import Table1Row
from repro.utils.validation import ValidationError

__all__ = [
    "format_table",
    "curves_to_rows",
    "format_figure3_report",
    "format_figure4_report",
    "format_table1_report",
    "format_arena_leaderboard",
    "format_arena_report",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table.

    Floats are formatted with *float_format*; everything else with ``str``.
    """
    headers = [str(h) for h in headers]
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, (float, np.floating)):
                cells.append(float_format.format(float(value)))
            else:
                cells.append(str(value))
        if len(cells) != len(headers):
            raise ValidationError(
                f"row has {len(cells)} cells but table has {len(headers)} headers"
            )
        formatted_rows.append(cells)
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in formatted_rows)) if formatted_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for cells in formatted_rows:
        lines.append("  ".join(cells[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def curves_to_rows(
    sample_counts: np.ndarray, curves: Dict[str, np.ndarray]
) -> List[List[object]]:
    """Convert per-method curves into table rows: one row per sample count."""
    rows: List[List[object]] = []
    methods = list(curves.keys())
    for j, count in enumerate(np.asarray(sample_counts)):
        row: List[object] = [int(count)]
        for method in methods:
            row.append(float(curves[method][j]))
        rows.append(row)
    return rows


def format_figure3_report(cells: Sequence[Figure3Cell]) -> str:
    """Render the Figure 3 sweep as one table per (n, p) panel."""
    sections = []
    for cell in cells:
        headers = ["samples"] + list(cell.curves.keys())
        rows = curves_to_rows(cell.sample_counts, cell.curves)
        title = f"G(n={cell.n_vertices}, p={cell.probability:g}) — relative cut weight vs samples"
        sections.append(title + "\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def format_figure4_report(panels: Sequence[Figure4Panel]) -> str:
    """Render the Figure 4 sweep as one table per empirical graph."""
    sections = []
    for panel in panels:
        headers = ["samples"] + list(panel.curves.keys())
        rows = curves_to_rows(panel.sample_counts, panel.curves)
        title = (
            f"{panel.graph_name} (n={panel.n_vertices}, m={panel.n_edges}) — "
            f"relative cut weight vs samples (solver best = {panel.solver_best_weight:.0f})"
        )
        sections.append(title + "\n" + format_table(headers, rows))
    return "\n\n".join(sections)


def format_arena_leaderboard(result) -> str:
    """Render the aggregate leaderboard of an arena run.

    *result* is a :class:`repro.arena.results.ArenaResult` (typed loosely to
    keep the reporting layer import-free of the arena).  Rows come from
    ``result.aggregate()``: best mean cut ratio first, with per-suite wall
    time, throughput, and whether the solver rode the batched engine.
    """
    headers = ["rank", "solver", "mean ratio", "wins", "best total",
               "time (s)", "samples/s", "engine"]
    rows = []
    for rank, agg in enumerate(result.aggregate(), start=1):
        rows.append([
            rank,
            agg["solver"],
            agg["mean_ratio"],
            f"{agg['wins']}/{len(result.graph_names)}",
            f"{agg['best_weight_total']:g}",
            agg["elapsed_seconds"],
            f"{agg['samples_per_second']:,.0f}",
            "yes" if agg["used_engine"] else "no",
        ])
    title = (
        f"Arena leaderboard — suite {result.suite!r} "
        f"({len(result.graph_names)} graphs, {result.n_trials} trials x "
        f"{result.n_samples} samples, seed {result.seed})"
    )
    return title + "\n" + format_table(headers, rows)


def format_arena_report(result) -> str:
    """Render an arena run: one per-graph table plus the aggregate leaderboard.

    Per-graph tables show each solver's best / mean cut weight, its
    arena-relative ratio (per-graph best = 1.0), wall time, and throughput;
    the ``n_samples`` column reflects what the solver actually consumed under
    its budget semantics (0 when it ignores the budget).
    """
    sections = []
    for graph_name in result.graph_names:
        entries = result.entries_for_graph(graph_name)
        if not entries:
            continue
        first = entries[0]
        headers = ["solver", "best", "mean", "ratio", "trials", "samples",
                   "time (s)", "samples/s", "path"]
        rows = []
        for entry in sorted(entries, key=lambda e: -e.cut_ratio):
            rows.append([
                entry.solver,
                f"{entry.best_weight:g}",
                f"{entry.mean_weight:g}",
                entry.cut_ratio,
                entry.n_trials,
                entry.n_samples,
                entry.elapsed_seconds,
                f"{entry.samples_per_second:,.0f}",
                f"engine[{entry.backend}]" if entry.used_engine else "sequential",
            ])
        title = (
            f"{graph_name} (n={first.n_vertices}, m={first.n_edges}, "
            f"total weight {first.total_weight:g})"
        )
        sections.append(title + "\n" + format_table(headers, rows))
    sections.append(format_arena_leaderboard(result))
    return "\n\n".join(sections)


def format_table1_report(rows: Sequence[Table1Row]) -> str:
    """Render Table I with measured values and the paper's published values."""
    headers = [
        "Graph", "n", "m",
        "LIF-GW", "LIF-TR", "Solver", "Random",
        "paper GW", "paper TR", "paper Solver", "paper Random", "surrogate",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.graph_name,
            row.n_vertices,
            row.n_edges,
            row.measured.get("lif_gw", float("nan")),
            row.measured.get("lif_tr", float("nan")),
            row.measured.get("solver", float("nan")),
            row.measured.get("random", float("nan")),
            row.paper.get("lif_gw", "-"),
            row.paper.get("lif_tr", "-"),
            row.paper.get("solver", "-"),
            row.paper.get("random", "-"),
            "yes" if row.is_surrogate else "no",
        ])
    return format_table(headers, table_rows, float_format="{:.0f}")
