"""Experiment orchestration with JSON result persistence.

The benchmark harness and the CLI both want to (a) run a named experiment,
(b) save its results to disk in a stable, diffable format, and (c) reload
earlier results for comparison without re-running hours of sampling.  This
module provides that thin layer: every experiment's result is converted to
plain JSON-serialisable dictionaries with a metadata header (experiment id,
configuration summary, library version, timestamp).

It is also the experiments-layer entry point to the batched solver engine:
:func:`run_circuit_trials` replaces the historical "loop ``sample_cuts`` once
per trial" pattern with a single trial-parallel engine solve (falling back to
the sequential loop on request, for reference timings and equivalence
checks).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.engine.request import SolveResult
from repro.experiments.ablations import AblationPoint
from repro.experiments.figure3 import Figure3Cell
from repro.experiments.figure4 import Figure4Panel
from repro.experiments.table1 import Table1Row
from repro.utils.validation import ValidationError

__all__ = [
    "results_to_jsonable",
    "save_results",
    "atomic_write_json",
    "load_results",
    "register_result_type",
    "run_circuit_trials",
    "ExperimentRecord",
]

PathLike = Union[str, os.PathLike]

_RESULT_TYPES: tuple = (Figure3Cell, Figure4Panel, Table1Row, AblationPoint, SolveResult)


def register_result_type(cls: type) -> type:
    """Allow dataclass *cls* through :func:`results_to_jsonable`.

    Extension point for downstream subsystems (the solver arena registers
    its :class:`repro.arena.results.ArenaEntry` this way) so this module
    never has to import them.  Returns *cls*, so it can be used as a class
    decorator.  Idempotent.
    """
    global _RESULT_TYPES
    if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
        raise ValidationError(
            f"result types must be dataclasses, got {cls!r}"
        )
    if cls not in _RESULT_TYPES:
        _RESULT_TYPES = _RESULT_TYPES + (cls,)
    return cls


def _to_jsonable(value: Any) -> Any:
    """Recursively convert experiment objects / numpy types to JSON-safe values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ValidationError(f"cannot serialise value of type {type(value).__name__}")


def results_to_jsonable(results: Sequence[Any]) -> List[Dict[str, Any]]:
    """Convert a list of experiment result objects into JSON-safe dictionaries."""
    out = []
    for result in results:
        if not isinstance(result, _RESULT_TYPES):
            raise ValidationError(
                f"unsupported result type {type(result).__name__}; expected one of "
                f"{[t.__name__ for t in _RESULT_TYPES]}"
            )
        out.append(_to_jsonable(result))
    return out


@dataclasses.dataclass(frozen=True)
class ExperimentRecord:
    """A persisted experiment: metadata header plus serialised results."""

    experiment: str
    created_at: float
    config: Dict[str, Any]
    results: List[Dict[str, Any]]
    version: str = ""

    def result_type(self) -> Optional[str]:
        """The ``__type__`` of the first result (None for empty records)."""
        if not self.results:
            return None
        return self.results[0].get("__type__")


def save_results(
    path: PathLike,
    experiment: str,
    results: Sequence[Any],
    config: Optional[Dict[str, Any]] = None,
) -> ExperimentRecord:
    """Serialise *results* under a metadata header and write them to *path*.

    Parameters
    ----------
    path:
        Output JSON file (parent directory must exist).
    experiment:
        Experiment identifier, e.g. ``"figure3"`` or ``"table1"``.
    results:
        Result objects from the experiment runners.
    config:
        Optional JSON-safe description of the configuration used.
    """
    from repro import __version__

    record = ExperimentRecord(
        experiment=str(experiment),
        created_at=time.time(),
        config=_to_jsonable(config or {}),
        results=results_to_jsonable(results),
        version=__version__,
    )
    atomic_write_json(path, dataclasses.asdict(record))
    return record


def atomic_write_json(path: PathLike, payload: Any) -> None:
    """Write *payload* as JSON via a sibling temp file + ``os.replace``.

    A crash (or kill) mid-write never leaves a truncated JSON at *path* —
    the invariant the sharded executor's resume logic relies on ("an
    existing checkpoint file is a complete checkpoint").  The temp name
    comes from :func:`tempfile.mkstemp` (not the PID): shard workers on
    *different hosts* can share a checkpoint directory over NFS, where PIDs
    collide but mkstemp's O_EXCL create cannot.  Shared by
    :func:`save_results` and the checkpoint manifest writer so both carry
    identical durability guarantees.
    """
    import tempfile

    # Write through symlinks (matching plain open(path, "w")) rather than
    # replacing the link itself.
    path = os.path.realpath(os.fspath(path))
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        # mkstemp creates 0600; restore the umask-governed mode plain
        # open() would have used, so saved results stay group/world
        # readable where the environment allows it.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)


def run_circuit_trials(
    graph=None,
    circuit: str = "lif_gw",
    n_trials: int = 8,
    n_samples: int = 256,
    seed: Optional[int] = 0,
    config: Optional[Any] = None,
    backend: str = "auto",
    early_stop: Optional[Any] = None,
    use_engine: bool = True,
    **request_options: Any,
):
    """Run *n_trials* independent circuit trials on one graph — batched.

    The modern replacement for looping ``circuit.sample_cuts`` per trial:
    one :class:`repro.engine.SolveRequest` is dispatched to the batched
    engine, which simulates every trial's devices and membranes together.
    ``use_engine=False`` selects :func:`repro.engine.sequential_solve`, the
    trial-by-trial reference path with identical per-trial seeding (useful
    for equivalence checks and speedup measurements); both paths return the
    same :class:`repro.engine.SolveResult` shape.

    Parameters
    ----------
    graph:
        Graph to cut; optional (and checked for consistency) when *circuit*
        is an already-built instance, which carries its own graph.
    circuit:
        ``"lif_gw"``/``"lif_tr"``, or an already-built circuit instance.
    n_trials, n_samples, seed:
        Batch geometry and root seed (trial *i* uses
        ``SeedSequence(seed, spawn_key=(i,))``).
    config:
        Circuit configuration forwarded when *circuit* is a name.
    backend, early_stop, use_engine, request_options:
        Engine options; see :class:`repro.engine.SolveRequest`.
    """
    from repro.engine import SolveRequest, sequential_solve, solve

    if isinstance(circuit, str):
        request = SolveRequest(
            circuit=circuit, graph=graph, n_trials=n_trials, n_samples=n_samples,
            seed=seed, config=config, backend=backend, early_stop=early_stop,
            **request_options,
        )
    else:
        # An instance carries its own graph and configuration; refuse
        # conflicting arguments instead of silently ignoring them.
        if config is not None:
            raise ValidationError(
                "config cannot be combined with an already-built circuit; "
                "configure the circuit at construction time"
            )
        if graph is not None and graph is not circuit.graph:
            raise ValidationError(
                "graph does not match the circuit instance's graph; "
                "pass graph=None (or the same graph) with a circuit instance"
            )
        request = SolveRequest(
            circuit=circuit, n_trials=n_trials, n_samples=n_samples,
            seed=seed, backend=backend, early_stop=early_stop,
            **request_options,
        )
    return solve(request) if use_engine else sequential_solve(request)


def load_results(path: PathLike) -> ExperimentRecord:
    """Load an :class:`ExperimentRecord` previously written by :func:`save_results`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    missing = {"experiment", "created_at", "config", "results"} - set(payload)
    if missing:
        raise ValidationError(f"result file {path!r} is missing fields: {sorted(missing)}")
    return ExperimentRecord(
        experiment=payload["experiment"],
        created_at=float(payload["created_at"]),
        config=payload["config"],
        results=list(payload["results"]),
        version=payload.get("version", ""),
    )
