"""Ablation studies (DESIGN.md E4 and E6).

Three ablations the paper's Discussion calls for but does not run:

* **Device imperfection** — how biased, correlated, temporally correlated
  (telegraph) and drifting devices change LIF-GW / LIF-TR cut quality.
* **SDP rank** — the paper fixes the LIF-GW rank at 4; this sweep varies it.
* **Learning rate** — sensitivity of the LIF-TR plasticity to its learning
  rate / decay schedule.

All ablations run on fixed Erdős–Rényi graphs and report mean relative cut
weight (relative to the software solver) per setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.analysis.statistics import mean_and_sem
from repro.circuits.config import LIFGWConfig, LIFTrevisanConfig
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.devices.bernoulli import BiasedCoinPool, FairCoinPool
from repro.devices.correlated import CorrelatedDevicePool
from repro.devices.drift import DriftingDevicePool
from repro.devices.telegraph import TelegraphNoisePool
from repro.experiments.config import AblationConfig
from repro.graphs.generators import erdos_renyi
from repro.utils.logging import get_logger
from repro.utils.rng import SeedStream, paired_seed

__all__ = [
    "AblationPoint",
    "DEVICE_MODELS",
    "DEFAULT_RANKS",
    "DEFAULT_LEARNING_RATES",
    "run_device_imperfection_ablation",
    "run_rank_ablation",
    "run_learning_rate_ablation",
]

#: Default rank sweep of :func:`run_rank_ablation` (the paper fixes rank 4).
DEFAULT_RANKS = (2, 3, 4, 8, 16)

#: Default learning-rate sweep of :func:`run_learning_rate_ablation`.
DEFAULT_LEARNING_RATES = (0.001, 0.005, 0.02, 0.1)

_logger = get_logger("experiments.ablations")


@dataclass(frozen=True)
class AblationPoint:
    """One setting of an ablation sweep with its measured relative cut quality."""

    setting: str
    mean_relative_cut: float
    sem: float
    per_graph: np.ndarray
    metadata: Dict = field(default_factory=dict)


#: Device-model factories for the imperfection ablation, keyed by label.
DEVICE_MODELS: Dict[str, Callable] = {
    "fair": lambda n, rng: FairCoinPool(n, seed=rng),
    "biased_0.6": lambda n, rng: BiasedCoinPool(0.6, n_devices=n, seed=rng),
    "biased_0.8": lambda n, rng: BiasedCoinPool(0.8, n_devices=n, seed=rng),
    "correlated_0.2": lambda n, rng: CorrelatedDevicePool(n, 0.2, seed=rng),
    "correlated_0.5": lambda n, rng: CorrelatedDevicePool(n, 0.5, seed=rng),
    "telegraph_slow": lambda n, rng: TelegraphNoisePool(n, switch_up=0.1, seed=rng),
    "drifting": lambda n, rng: DriftingDevicePool(n, drift_rate=0.01, drift_scale=0.2, seed=rng),
}


def _ablation_graphs(config: AblationConfig) -> list:
    stream = SeedStream(config.seed)
    return [
        erdos_renyi(
            config.n_vertices,
            config.edge_probability,
            seed=stream.generator_for(i),
            name=f"ablation_er_{i}",
        )
        for i in range(config.n_graphs)
    ]


def _resolve_references(
    graphs, config: AblationConfig, references: Optional[np.ndarray]
) -> np.ndarray:
    """Use caller-supplied per-graph solver normalisers, or compute them."""
    if references is None:
        return _solver_references(graphs, config)
    references = np.asarray(references, dtype=np.float64)
    if references.shape != (len(graphs),):
        raise ValueError(
            f"references must have one entry per graph ({len(graphs)}), "
            f"got shape {references.shape}"
        )
    return references


def _solver_references(graphs, config: AblationConfig) -> np.ndarray:
    stream = SeedStream(None if config.seed is None else config.seed + 1)
    refs = []
    for i, graph in enumerate(graphs):
        result = goemans_williamson(graph, n_samples=100, seed=stream.generator_for(i))
        refs.append(max(result.best_weight, 1.0))
    return np.array(refs)


def run_device_imperfection_ablation(
    config: Optional[AblationConfig] = None,
    circuit: str = "lif_gw",
    device_models: Optional[Dict[str, Callable]] = None,
    only: Optional[Sequence[int]] = None,
    references: Optional[np.ndarray] = None,
) -> List[AblationPoint]:
    """Sweep device models for one circuit type (``"lif_gw"`` or ``"lif_tr"``).

    *only* restricts the sweep to the given setting indices while keeping
    each setting's global index — and therefore its paired
    ``SeedSequence(base, spawn_key=(s, i))`` seeds — unchanged, so a subset
    run reproduces exactly the corresponding points of the full sweep (the
    contract the sharded executor relies on).  *references* supplies the
    per-graph classical-solver normalisers (the expensive fixed stage) when
    the caller has already computed them — they depend only on *config*, so
    sharded subset runs can share one computation.
    """
    if circuit not in ("lif_gw", "lif_tr"):
        raise ValueError(f"circuit must be 'lif_gw' or 'lif_tr', got {circuit!r}")
    config = config or AblationConfig()
    device_models = device_models or DEVICE_MODELS
    graphs = _ablation_graphs(config)
    references = _resolve_references(graphs, config, references)
    base = None if config.seed is None else config.seed + 2

    points: List[AblationPoint] = []
    for s, (label, factory) in enumerate(device_models.items()):
        if only is not None and s not in only:
            continue
        ratios = np.empty(len(graphs))
        for i, graph in enumerate(graphs):
            # Paired convention: setting s on graph i always draws the same
            # stream (hash() of a string is process-salted, so the previous
            # hash-derived seeds were not reproducible across interpreters).
            run_seed = np.random.default_rng(paired_seed(base, s, i))
            if circuit == "lif_gw":
                circ = LIFGWCircuit(graph, device_pool_factory=factory, seed=run_seed)
            else:
                circ = LIFTrevisanCircuit(graph, device_pool_factory=factory)
            result = circ.sample_cuts(config.n_samples, seed=run_seed)
            ratios[i] = result.best_weight / references[i]
        mean, sem = mean_and_sem(ratios)
        _logger.info("device ablation %s/%s: %.3f +/- %.3f", circuit, label, mean, sem)
        points.append(
            AblationPoint(
                setting=label, mean_relative_cut=mean, sem=sem, per_graph=ratios,
                metadata={"circuit": circuit},
            )
        )
    return points


def run_rank_ablation(
    config: Optional[AblationConfig] = None,
    ranks: Sequence[int] = DEFAULT_RANKS,
    only: Optional[Sequence[int]] = None,
    references: Optional[np.ndarray] = None,
) -> List[AblationPoint]:
    """Sweep the LIF-GW SDP factorisation rank (the paper fixes 4).

    *only* restricts to the given setting indices with unchanged seeds (see
    :func:`run_device_imperfection_ablation`).
    """
    config = config or AblationConfig()
    graphs = _ablation_graphs(config)
    references = _resolve_references(graphs, config, references)
    base = None if config.seed is None else config.seed + 3

    points: List[AblationPoint] = []
    for s, rank in enumerate(ranks):
        if only is not None and s not in only:
            continue
        gw_config = LIFGWConfig(rank=int(rank))
        ratios = np.empty(len(graphs))
        for i, graph in enumerate(graphs):
            run_seed = np.random.default_rng(paired_seed(base, s, i))
            circ = LIFGWCircuit(graph, config=gw_config, seed=run_seed)
            result = circ.sample_cuts(config.n_samples, seed=run_seed)
            ratios[i] = result.best_weight / references[i]
        mean, sem = mean_and_sem(ratios)
        _logger.info("rank ablation r=%d: %.3f +/- %.3f", rank, mean, sem)
        points.append(
            AblationPoint(
                setting=f"rank_{rank}", mean_relative_cut=mean, sem=sem, per_graph=ratios,
                metadata={"rank": int(rank)},
            )
        )
    return points


def run_learning_rate_ablation(
    config: Optional[AblationConfig] = None,
    learning_rates: Sequence[float] = DEFAULT_LEARNING_RATES,
    learning_rate_decay: float = 0.0,
    only: Optional[Sequence[int]] = None,
    references: Optional[np.ndarray] = None,
) -> List[AblationPoint]:
    """Sweep the LIF-TR anti-Hebbian learning rate.

    *only* restricts to the given setting indices with unchanged seeds (see
    :func:`run_device_imperfection_ablation`).
    """
    config = config or AblationConfig()
    graphs = _ablation_graphs(config)
    references = _resolve_references(graphs, config, references)
    base = None if config.seed is None else config.seed + 4

    points: List[AblationPoint] = []
    for s, eta in enumerate(learning_rates):
        if only is not None and s not in only:
            continue
        tr_config = LIFTrevisanConfig(
            learning_rate=float(eta), learning_rate_decay=learning_rate_decay
        )
        ratios = np.empty(len(graphs))
        for i, graph in enumerate(graphs):
            run_seed = np.random.default_rng(paired_seed(base, s, i))
            circ = LIFTrevisanCircuit(graph, config=tr_config)
            result = circ.sample_cuts(config.n_samples, seed=run_seed)
            ratios[i] = result.best_weight / references[i]
        mean, sem = mean_and_sem(ratios)
        _logger.info("learning-rate ablation eta=%g: %.3f +/- %.3f", eta, mean, sem)
        points.append(
            AblationPoint(
                setting=f"eta_{eta:g}", mean_relative_cut=mean, sem=sem, per_graph=ratios,
                metadata={"learning_rate": float(eta), "decay": learning_rate_decay},
            )
        )
    return points
