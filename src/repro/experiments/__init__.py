"""Experiment harness: one module per paper artifact (Figure 3, Figure 4, Table I)
plus ablations and report formatting.

Each experiment module exposes a ``run_*`` function returning plain
dataclasses/dictionaries, and :mod:`repro.experiments.reporting` renders them
as the rows/series the paper prints.  Benchmarks in ``benchmarks/`` call these
entry points with reduced sample budgets; the full paper-scale budgets are a
parameter change, not a code change.
"""

from repro.experiments.config import (
    Figure3Config,
    Figure4Config,
    Table1Config,
    AblationConfig,
    PAPER_FIGURE3_SIZES,
    PAPER_FIGURE3_PROBABILITIES,
)
from repro.experiments.figure3 import Figure3Cell, run_figure3, run_figure3_cell
from repro.experiments.figure4 import Figure4Panel, run_figure4, run_figure4_panel
from repro.experiments.table1 import Table1Row, run_table1, run_table1_row
from repro.experiments.ablations import (
    run_device_imperfection_ablation,
    run_rank_ablation,
    run_learning_rate_ablation,
)
from repro.experiments.reporting import (
    format_table,
    format_figure3_report,
    format_figure4_report,
    format_table1_report,
    curves_to_rows,
)

__all__ = [
    "Figure3Config",
    "Figure4Config",
    "Table1Config",
    "AblationConfig",
    "PAPER_FIGURE3_SIZES",
    "PAPER_FIGURE3_PROBABILITIES",
    "Figure3Cell",
    "run_figure3",
    "run_figure3_cell",
    "Figure4Panel",
    "run_figure4",
    "run_figure4_panel",
    "Table1Row",
    "run_table1",
    "run_table1_row",
    "run_device_imperfection_ablation",
    "run_rank_ablation",
    "run_learning_rate_ablation",
    "format_table",
    "format_figure3_report",
    "format_figure4_report",
    "format_table1_report",
    "curves_to_rows",
]
