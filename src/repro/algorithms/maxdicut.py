"""MAXDICUT via Goemans-Williamson-style SDP rounding (paper Discussion §VI).

The maximum directed cut problem asks for a vertex set S maximising the total
weight of arcs that leave S (tail in S, head outside S).  Goemans and
Williamson showed that the natural SDP relaxation with hyperplane rounding
achieves an approximation ratio of 0.796; the paper points out that the same
LIF-GW sampling circuit implements that rounding step.

This module implements the problem substrate (a small directed graph class
and the dicut objective) and a practical SDP-based approximation: the
relaxation is solved on the *augmented* MAXCUT formulation in which each
directed instance is reduced to vectors ``v_0, v_1, ..., v_n`` (``v_0`` marks
the "inside S" direction) and rounding assigns ``i in S`` iff ``v_i`` falls on
the same side of the hyperplane as ``v_0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.sdp.manifold import project_rows_to_sphere, random_oblique_point, retract, tangent_project
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import ValidationError

__all__ = [
    "DirectedGraph",
    "dicut_value",
    "maxdicut_gw",
    "MaxDicutResult",
    "random_digraph",
]


class DirectedGraph:
    """Weighted simple directed graph with vertices ``0 .. n-1``."""

    def __init__(
        self, n_vertices: int, arcs: Iterable[Sequence[float]] = (), name: str = "digraph"
    ) -> None:
        n_vertices = int(n_vertices)
        if n_vertices < 0:
            raise ValidationError(f"n_vertices must be non-negative, got {n_vertices}")
        self.n_vertices = n_vertices
        self.name = str(name)
        arc_map: dict[tuple[int, int], float] = {}
        for arc in arcs:
            if len(arc) == 2:
                u, v = arc  # type: ignore[misc]
                w = 1.0
            elif len(arc) == 3:
                u, v, w = arc  # type: ignore[misc]
            else:
                raise ValidationError(f"arcs must be (u, v) or (u, v, w), got {arc!r}")
            u, v, w = int(u), int(v), float(w)
            if not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValidationError(f"arc ({u}, {v}) out of range")
            if u == v:
                raise ValidationError("self-loops are not allowed")
            if not np.isfinite(w):
                raise ValidationError("arc weights must be finite")
            arc_map[(u, v)] = arc_map.get((u, v), 0.0) + w
        if arc_map:
            self.arcs = np.array(sorted(arc_map.keys()), dtype=np.int64)
            self.arc_weights = np.array([arc_map[tuple(a)] for a in self.arcs])
        else:
            self.arcs = np.empty((0, 2), dtype=np.int64)
            self.arc_weights = np.empty(0)

    @property
    def n_arcs(self) -> int:
        return int(self.arcs.shape[0])

    @property
    def total_weight(self) -> float:
        return float(self.arc_weights.sum())


def dicut_value(graph: DirectedGraph, in_set: np.ndarray) -> float:
    """Directed cut value of the 0/1 indicator *in_set* (1 = vertex is in S)."""
    in_set = np.asarray(in_set)
    if in_set.shape != (graph.n_vertices,):
        raise ValidationError(
            f"in_set must have shape ({graph.n_vertices},), got {in_set.shape}"
        )
    if in_set.size and not np.all(np.isin(in_set, (0, 1))):
        raise ValidationError("in_set must be a 0/1 indicator vector")
    if graph.n_arcs == 0:
        return 0.0
    tails = in_set[graph.arcs[:, 0]].astype(bool)
    heads = in_set[graph.arcs[:, 1]].astype(bool)
    crossing = tails & ~heads
    return float(graph.arc_weights[crossing].sum())


def random_digraph(
    n_vertices: int,
    p: float,
    seed: RandomState = None,
    weighted: bool = False,
    name: str = "digraph",
) -> DirectedGraph:
    """Random simple digraph: each ordered pair ``(u, v)`` is an arc w.p. *p*.

    With ``weighted=True`` arc weights are drawn uniformly from
    ``[0.5, 1.5)`` instead of being 1.  Deterministic given *seed*; problem
    suites seed it through the library's paired convention
    (``SeedSequence(seed, spawn_key=...)`` via
    :func:`repro.utils.rng.paired_seed`), so the same ``(seed, instance)``
    key yields the same digraph across interpreters and execution paths.
    """
    n_vertices = int(n_vertices)
    if n_vertices < 1:
        raise ValidationError(f"n_vertices must be >= 1, got {n_vertices}")
    if not (0.0 <= float(p) <= 1.0):
        raise ValidationError(f"p must be a probability in [0, 1], got {p}")
    rng = as_generator(seed)
    mask = rng.random((n_vertices, n_vertices)) < float(p)
    np.fill_diagonal(mask, False)
    tails, heads = np.nonzero(mask)
    if weighted:
        weights = rng.uniform(0.5, 1.5, size=tails.shape[0])
    else:
        weights = np.ones(tails.shape[0])
    arcs = [
        (int(u), int(v), float(w)) for u, v, w in zip(tails, heads, weights)
    ]
    return DirectedGraph(n_vertices, arcs, name=name)


@dataclass(frozen=True)
class MaxDicutResult:
    """Result of the SDP-based MAXDICUT approximation."""

    in_set: np.ndarray
    value: float
    sdp_objective: float
    sample_values: np.ndarray


def _dicut_sdp_objective(graph: DirectedGraph, V: np.ndarray) -> float:
    """Relaxed objective ``sum_a w_a (1 + v0.vu - v0.vv - vu.vv) / 4`` over arcs."""
    if graph.n_arcs == 0:
        return 0.0
    v0 = V[0]
    vu = V[1 + graph.arcs[:, 0]]
    vv = V[1 + graph.arcs[:, 1]]
    terms = 1.0 + vu @ v0 - vv @ v0 - np.sum(vu * vv, axis=1)
    return float(np.dot(graph.arc_weights, terms) / 4.0)


def _dicut_sdp_gradient(graph: DirectedGraph, V: np.ndarray) -> np.ndarray:
    """Euclidean gradient of the relaxed dicut objective with respect to V."""
    grad = np.zeros_like(V)
    if graph.n_arcs == 0:
        return grad
    w = graph.arc_weights[:, None] / 4.0
    u_idx = 1 + graph.arcs[:, 0]
    v_idx = 1 + graph.arcs[:, 1]
    v0 = V[0]
    vu = V[u_idx]
    vv = V[v_idx]
    # d/dv0: sum w (vu - vv); d/dvu: w (v0 - vv); d/dvv: w (-v0 - vu)
    grad[0] = np.sum(w * (vu - vv), axis=0)
    np.add.at(grad, u_idx, w * (v0[None, :] - vv))
    np.add.at(grad, v_idx, w * (-v0[None, :] - vu))
    return grad


def maxdicut_gw(
    graph: DirectedGraph,
    n_samples: int = 100,
    rank: Optional[int] = None,
    max_iterations: int = 1500,
    seed: RandomState = None,
) -> MaxDicutResult:
    """Approximate MAXDICUT by SDP relaxation + hyperplane rounding.

    The rounding follows Goemans-Williamson: vertex i joins S when its vector
    lands on the same side of a random hyperplane as the marker vector v_0.
    The best of *n_samples* roundings is returned.
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n = graph.n_vertices
    if n == 0:
        raise ValidationError("maxdicut_gw requires at least one vertex")
    if rank is None:
        rank = max(4, int(np.ceil(np.sqrt(2.0 * (n + 1)))) + 1)
    sdp_rng, rounding_rng = spawn_generators(seed, 2)

    V = random_oblique_point(n + 1, rank, seed=sdp_rng)
    objective = _dicut_sdp_objective(graph, V)
    step = 1.0
    for _ in range(max_iterations):
        grad = tangent_project(V, _dicut_sdp_gradient(graph, V))
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm <= 1e-7 * max(1.0, graph.total_weight):
            break
        improved = False
        trial = step
        for _ in range(30):
            candidate = retract(V, trial * grad)
            candidate_objective = _dicut_sdp_objective(graph, candidate)
            if candidate_objective > objective + 1e-12:
                V = candidate
                objective = candidate_objective
                step = min(trial * 2.0, 100.0)
                improved = True
                break
            trial *= 0.5
        if not improved:
            break

    rng = as_generator(rounding_rng)
    normals = rng.standard_normal((n_samples, V.shape[1]))
    projections = normals @ V.T  # (k, n+1)
    side_of_v0 = np.sign(projections[:, :1])
    side_of_v0[side_of_v0 == 0] = 1.0
    in_sets = (np.sign(projections[:, 1:]) == side_of_v0).astype(np.int8)
    values = np.array([dicut_value(graph, in_sets[k]) for k in range(n_samples)])
    best = int(np.argmax(values))
    return MaxDicutResult(
        in_set=in_sets[best],
        value=float(values[best]),
        sdp_objective=objective,
        sample_values=values,
    )
