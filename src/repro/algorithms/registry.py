"""Solver registry: uniform ``solve(graph, n_samples, seed) -> Cut`` interface.

Experiments refer to methods by short string keys ("lif_gw", "lif_tr",
"solver", "random"); the registry maps those keys to callables so sweeps can
be parameterised by name without import-time coupling.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.trevisan import trevisan_spectral
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.cut import Cut
from repro.cuts.local_search import local_search_maxcut
from repro.graphs.graph import Graph
from repro.ising.annealing import simulated_annealing_maxcut
from repro.ising.tempering import parallel_tempering
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = ["SOLVERS", "get_solver", "list_solvers"]

SolverFn = Callable[..., Cut]


def _solve_lif_gw(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return LIFGWCircuit(graph, seed=seed, **kwargs).solve(n_samples, seed=seed)


def _solve_lif_tr(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return LIFTrevisanCircuit(graph, **kwargs).solve(n_samples, seed=seed)


def _solve_gw(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return goemans_williamson(graph, n_samples=n_samples, seed=seed, **kwargs).best_cut


def _solve_trevisan(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # Deterministic spectral method: n_samples is accepted for interface
    # uniformity but ignored.
    return trevisan_spectral(graph, seed=seed, **kwargs)


def _solve_random(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    best, _ = random_baseline(graph, n_samples=n_samples, seed=seed, **kwargs)
    return best


def _solve_annealing(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # n_samples maps naturally onto the number of Metropolis sweeps.
    from repro.ising.annealing import AnnealingSchedule

    schedule = AnnealingSchedule(n_sweeps=max(1, n_samples))
    return simulated_annealing_maxcut(graph, schedule=schedule, seed=seed, **kwargs)


def _solve_tempering(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return parallel_tempering(graph, n_sweeps=max(1, n_samples), seed=seed, **kwargs).best_cut


def _solve_local_search(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # n_samples maps onto the number of random restarts.
    return local_search_maxcut(graph, n_restarts=max(1, n_samples // 10 or 1), seed=seed, **kwargs)


#: Mapping of method keys to solver callables.
SOLVERS: Dict[str, SolverFn] = {
    "lif_gw": _solve_lif_gw,
    "lif_tr": _solve_lif_tr,
    "solver": _solve_gw,
    "trevisan": _solve_trevisan,
    "random": _solve_random,
    "annealing": _solve_annealing,
    "tempering": _solve_tempering,
    "local_search": _solve_local_search,
}


def list_solvers() -> list[str]:
    """Names of all registered solvers."""
    return sorted(SOLVERS.keys())


def get_solver(name: str) -> SolverFn:
    """Look up a solver by key; raises ``ValidationError`` for unknown names."""
    try:
        return SOLVERS[name]
    except KeyError as exc:
        raise ValidationError(
            f"unknown solver {name!r}; available: {list_solvers()}"
        ) from exc
