"""Capability-aware solver registry: the single source of truth for MAXCUT methods.

Every solver in the library — neuromorphic circuits and classical baselines
alike — is registered here behind the uniform call signature

    solve(graph, n_samples, seed, **kwargs) -> Cut

so experiments, the CLI, and the cross-method arena (:mod:`repro.arena`) can
be parameterised by short string keys without import-time coupling.  Beyond
the historical flat name→callable map (still exported as :data:`SOLVERS`),
each method now carries a :class:`SolverSpec` describing its *capabilities*:
whether it is deterministic, whether it can be batched through the
trial-parallel engine (:mod:`repro.engine`), how it interprets the
``n_samples`` budget, and which paper it comes from.  The arena uses this
metadata to route each solver down the right execution path and to report
budgets honestly.

``n_samples`` semantics per solver
----------------------------------
The uniform signature hides real differences in what "one sample" means.
Each spec's ``budget`` field records the interpretation:

``"readouts"``
    ``lif_gw`` / ``lif_tr`` — cut read-outs of the stochastic circuit; more
    samples, better best-of-batch cut.  Batchable through the engine.
``"roundings"``
    ``gw`` (alias ``solver``) — random hyperplane roundings of one SDP
    solution; the SDP itself is solved once regardless of ``n_samples``.
``"cuts"``
    ``random`` — uniformly random cuts drawn and evaluated.
``"ignored"``
    ``trevisan`` — deterministic spectral method; ``n_samples`` is accepted
    for interface uniformity but has **no effect** on result or cost.
``"sweeps"``
    ``annealing`` / ``tempering`` — Metropolis sweeps of the Ising dynamics;
    one sweep touches every spin once, so cost scales with ``n · n_samples``.
``"restarts"``
    ``local_search`` — the budget is divided by 10 to give the number of
    greedy restarts (each restart performs many flip passes).

One registered solver is *meta*: ``portfolio`` (alias ``auto``, registered
on import of :mod:`repro.portfolio`) routes each instance to another
registry entry via mined priors, or races a candidate subset by successive
halving when no model is given — see DESIGN.md §"Portfolio meta-solver".

Problem classes
---------------
The problem compiler (:mod:`repro.problems`) lowers QUBO / Ising / MAXDICUT /
MAX2SAT instances onto MAXCUT graphs, and ``problem_classes`` records which
instances a solver can race:

``("maxcut",)`` (the default)
    The solver operates on any weighted graph — compiled problem instances
    included, since a compiled instance *is* a MAXCUT graph.
``("maxdicut",)`` / ``("max2sat",)`` / ...
    A *problem-native* solver (e.g. ``maxdicut_gw``): it requires the
    compiled graph to carry a native instance of that class (a
    :class:`repro.problems.compile.CompiledGraph`) and solves it directly,
    returning the solution embedded back as a cut of the compiled graph so
    both routes share one leaderboard currency.

:func:`solvers_for_problem` lists the native solvers of a class; the
``problems`` workload (:mod:`repro.workloads.problems`) uses it to race them
against compiled-to-MAXCUT circuit solvers.

Registering a new solver
------------------------
Build a :class:`SolverSpec` and pass it to :func:`register_solver`::

    register_solver(SolverSpec(
        key="my_method", fn=my_solve_fn, deterministic=False,
        budget="cuts", summary="one-line description",
    ))

The solver immediately appears in :func:`list_solvers`, the ``repro solve``
CLI, and ``repro compare``.  Set ``batchable=True`` and ``circuit=<engine
circuit name>`` only for circuits the batched engine knows how to simulate.
See DESIGN.md §"Solver arena" and §"Problem compiler" for the full contract.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.algorithms.goemans_williamson import goemans_williamson
from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.trevisan import trevisan_spectral
from repro.circuits.lif_gw import LIFGWCircuit
from repro.circuits.lif_trevisan import LIFTrevisanCircuit
from repro.cuts.cut import Cut
from repro.cuts.local_search import local_search_maxcut
from repro.graphs.graph import Graph
from repro.ising.annealing import simulated_annealing_maxcut
from repro.ising.tempering import parallel_tempering
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = [
    "SolverSpec",
    "SOLVERS",
    "SOLVER_SPECS",
    "register_solver",
    "get_solver",
    "get_spec",
    "list_solvers",
    "list_specs",
    "solvers_for_problem",
]

SolverFn = Callable[..., Cut]

#: Recognised ``n_samples`` interpretations (see module docstring).
BUDGET_SEMANTICS = ("readouts", "roundings", "cuts", "ignored", "sweeps", "restarts")


@dataclass(frozen=True)
class SolverSpec:
    """Metadata + callable for one registered solver.

    Attributes
    ----------
    key:
        Canonical registry key (e.g. ``"lif_gw"``).
    fn:
        Callable with the uniform ``(graph, n_samples, seed, **kwargs) -> Cut``
        signature.
    deterministic:
        True when the result is independent of ``seed`` (and the arena need
        run only a single trial).
    batchable:
        True when the solver can be routed through the trial-parallel batched
        engine (:func:`repro.experiments.runner.run_circuit_trials`).
    circuit:
        Engine circuit name (``"lif_gw"`` / ``"lif_tr"``) for batchable
        solvers; ``None`` otherwise.
    budget:
        How the solver interprets ``n_samples`` — one of
        :data:`BUDGET_SEMANTICS`; see the module docstring.
    citation:
        Short citation tag for reports (e.g. ``"GW95"``).
    summary:
        One-line human description used by CLI listings and docs.
    aliases:
        Extra registry keys resolving to this spec (kept for backward
        compatibility, e.g. ``"solver"`` → ``"gw"``).
    problem_classes:
        Problem classes the solver can race (see the module docstring):
        ``("maxcut",)`` for any-graph solvers (the default), or the native
        class(es) of a problem-native solver that requires a
        :class:`repro.problems.compile.CompiledGraph` of that kind.
    """

    key: str
    fn: SolverFn
    deterministic: bool
    batchable: bool = False
    circuit: Optional[str] = None
    budget: str = "readouts"
    citation: str = ""
    summary: str = ""
    aliases: Tuple[str, ...] = field(default=())
    problem_classes: Tuple[str, ...] = ("maxcut",)

    def __post_init__(self) -> None:
        if not self.key or not isinstance(self.key, str):
            raise ValidationError(f"solver key must be a non-empty string, got {self.key!r}")
        if not callable(self.fn):
            raise ValidationError(f"solver {self.key!r}: fn must be callable")
        if self.budget not in BUDGET_SEMANTICS:
            raise ValidationError(
                f"solver {self.key!r}: budget must be one of {BUDGET_SEMANTICS}, "
                f"got {self.budget!r}"
            )
        if self.batchable and self.circuit is None:
            raise ValidationError(
                f"solver {self.key!r}: batchable solvers must name their engine circuit"
            )
        if self.batchable and self.deterministic:
            raise ValidationError(
                f"solver {self.key!r}: batchable circuits are stochastic by construction"
            )
        if not self.problem_classes or not all(
            isinstance(kind, str) and kind for kind in self.problem_classes
        ):
            raise ValidationError(
                f"solver {self.key!r}: problem_classes must be a non-empty "
                f"tuple of class names, got {self.problem_classes!r}"
            )


def _solve_lif_gw(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return LIFGWCircuit(graph, seed=seed, **kwargs).solve(n_samples, seed=seed)


def _solve_lif_tr(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return LIFTrevisanCircuit(graph, **kwargs).solve(n_samples, seed=seed)


def _solve_gw(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return goemans_williamson(graph, n_samples=n_samples, seed=seed, **kwargs).best_cut


def _solve_trevisan(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # Deterministic spectral method: n_samples is accepted for interface
    # uniformity but ignored.
    return trevisan_spectral(graph, seed=seed, **kwargs)


def _solve_random(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    best, _ = random_baseline(graph, n_samples=n_samples, seed=seed, **kwargs)
    return best


def _solve_annealing(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # n_samples maps naturally onto the number of Metropolis sweeps.
    from repro.ising.annealing import AnnealingSchedule

    schedule = AnnealingSchedule(n_sweeps=max(1, n_samples))
    return simulated_annealing_maxcut(graph, schedule=schedule, seed=seed, **kwargs)


def _solve_tempering(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    return parallel_tempering(graph, n_sweeps=max(1, n_samples), seed=seed, **kwargs).best_cut


def _solve_local_search(graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs) -> Cut:
    # n_samples maps onto the number of random restarts.
    return local_search_maxcut(graph, n_restarts=max(1, n_samples // 10 or 1), seed=seed, **kwargs)


#: Canonical-key → spec registry (aliases are not keys here).
SOLVER_SPECS: Dict[str, SolverSpec] = {}

#: Backward-compatible flat map: every key *and alias* → solver callable.
SOLVERS: Dict[str, SolverFn] = {}


def register_solver(spec: SolverSpec, overwrite: bool = False) -> SolverSpec:
    """Add *spec* (and its aliases) to the registry and return it.

    Raises :class:`ValidationError` when any of its names collides with an
    existing registration, unless ``overwrite=True`` — in which case every
    colliding spec is removed wholesale (key *and* aliases), so no stale
    alias keeps serving a replaced callable.
    """
    names = (spec.key,) + tuple(spec.aliases)
    colliding = {
        old.key
        for old in SOLVER_SPECS.values()
        if any(name in (old.key,) + tuple(old.aliases) for name in names)
    }
    if colliding and not overwrite:
        taken = sorted(name for name in names if name in SOLVERS)
        raise ValidationError(
            f"solver name(s) {taken} already registered; "
            f"pass overwrite=True to replace"
        )
    for old_key in colliding:
        old = SOLVER_SPECS.pop(old_key)
        for name in (old.key,) + tuple(old.aliases):
            SOLVERS.pop(name, None)
    SOLVER_SPECS[spec.key] = spec
    for name in names:
        SOLVERS[name] = spec.fn
    return spec


for _spec in (
    SolverSpec(
        key="lif_gw", fn=_solve_lif_gw, deterministic=False, batchable=True,
        circuit="lif_gw", budget="readouts", citation="Theilman+23 §III",
        summary="stochastic LIF circuit sampling GW hyperplane roundings",
    ),
    SolverSpec(
        key="lif_tr", fn=_solve_lif_tr, deterministic=False, batchable=True,
        circuit="lif_tr", budget="readouts", citation="Theilman+23 §IV",
        summary="stochastic LIF circuit with anti-Hebbian Trevisan dynamics",
    ),
    SolverSpec(
        key="gw", fn=_solve_gw, deterministic=False, budget="roundings",
        citation="GW95", aliases=("solver",),
        summary="software Goemans-Williamson: Burer-Monteiro SDP + hyperplane rounding",
    ),
    SolverSpec(
        key="trevisan", fn=_solve_trevisan, deterministic=True, budget="ignored",
        citation="Trevisan12",
        summary="deterministic simple-spectral cut (n_samples ignored)",
    ),
    SolverSpec(
        key="random", fn=_solve_random, deterministic=False, budget="cuts",
        citation="baseline",
        summary="best of n_samples uniformly random cuts",
    ),
    SolverSpec(
        key="annealing", fn=_solve_annealing, deterministic=False, budget="sweeps",
        citation="KGV83", aliases=("ising.annealing",),
        problem_classes=("maxcut", "ising"),
        summary="simulated annealing on the Ising encoding (n_samples sweeps)",
    ),
    SolverSpec(
        key="tempering", fn=_solve_tempering, deterministic=False, budget="sweeps",
        citation="Geyer91", aliases=("ising.tempering",),
        problem_classes=("maxcut", "ising"),
        summary="parallel tempering on the Ising encoding (n_samples sweeps)",
    ),
    SolverSpec(
        key="local_search", fn=_solve_local_search, deterministic=False, budget="restarts",
        citation="baseline",
        summary="greedy single-flip local search (n_samples/10 restarts)",
    ),
):
    register_solver(_spec)
del _spec


def list_solvers() -> list[str]:
    """All registry names (canonical keys and aliases), sorted."""
    return sorted(SOLVERS.keys())


def list_specs() -> list[SolverSpec]:
    """All registered specs (one per canonical key), sorted by key."""
    return [SOLVER_SPECS[k] for k in sorted(SOLVER_SPECS.keys())]


def solvers_for_problem(kind: str) -> list[str]:
    """Canonical keys of the problem-native solvers of class *kind*, sorted.

    Any-graph solvers (``problem_classes == ("maxcut",)``) are *not* listed
    for other kinds — they run on the compiled graph and need no routing.
    """
    return sorted(
        spec.key for spec in SOLVER_SPECS.values()
        if kind in spec.problem_classes
    )


def _unknown_solver_error(name: str) -> ValidationError:
    message = f"unknown solver {name!r}; available: {list_solvers()}"
    close = difflib.get_close_matches(str(name), list_solvers(), n=1)
    if close:
        message += f" (did you mean {close[0]!r}?)"
    return ValidationError(message)


def get_solver(name: str) -> SolverFn:
    """Look up a solver callable by key or alias.

    Raises a :class:`ValidationError` that lists every registered name (and a
    closest-match suggestion) for unknown *name*, so CLI and notebook typos
    are self-diagnosing.
    """
    try:
        return SOLVERS[name]
    except KeyError:
        raise _unknown_solver_error(name) from None


def get_spec(name: str) -> SolverSpec:
    """Look up a :class:`SolverSpec` by canonical key or alias."""
    if name in SOLVER_SPECS:
        return SOLVER_SPECS[name]
    for spec in SOLVER_SPECS.values():
        if name in spec.aliases:
            return spec
    raise _unknown_solver_error(name)
