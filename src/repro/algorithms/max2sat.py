"""MAX2SAT via Goemans-Williamson-style SDP rounding (paper Discussion §VI).

MAX2SAT asks for a truth assignment maximising the number (weight) of
satisfied clauses, each clause having at most two literals.  Goemans and
Williamson showed the SDP relaxation with hyperplane rounding gives a 0.878
approximation.  As with MAXDICUT, the paper observes the LIF-GW circuit can
implement the rounding step; this module provides the software substrate —
instance representation, the relaxation, and the rounding — plus a random
instance generator for experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.sdp.manifold import random_oblique_point, retract, tangent_project
from repro.utils.rng import RandomState, as_generator, spawn_generators
from repro.utils.validation import ValidationError

__all__ = [
    "Clause",
    "Max2SatInstance",
    "satisfied_clauses",
    "max2sat_gw",
    "random_max2sat_instance",
    "Max2SatResult",
]


@dataclass(frozen=True)
class Clause:
    """A 1- or 2-literal clause.

    Literals are non-zero integers: ``+k`` means variable ``k-1`` appears
    positively, ``-k`` negated (DIMACS convention).  ``literal2 = 0`` encodes
    a unit clause.
    """

    literal1: int
    literal2: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.literal1 == 0:
            raise ValidationError("literal1 must be non-zero")
        if not np.isfinite(self.weight) or self.weight < 0:
            raise ValidationError("clause weight must be finite and non-negative")

    def variables(self) -> tuple[int, ...]:
        """0-based variable indices appearing in the clause."""
        out = [abs(self.literal1) - 1]
        if self.literal2 != 0:
            out.append(abs(self.literal2) - 1)
        return tuple(out)


@dataclass(frozen=True)
class Max2SatInstance:
    """A weighted MAX2SAT instance."""

    n_variables: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        if self.n_variables < 1:
            raise ValidationError(f"n_variables must be >= 1, got {self.n_variables}")
        for clause in self.clauses:
            for var in clause.variables():
                if var >= self.n_variables:
                    raise ValidationError(
                        f"clause references variable {var} but instance has "
                        f"{self.n_variables} variables"
                    )

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    @property
    def total_weight(self) -> float:
        return float(sum(c.weight for c in self.clauses))


def satisfied_clauses(instance: Max2SatInstance, assignment: np.ndarray) -> float:
    """Total weight of clauses satisfied by a boolean *assignment* (True = variable set)."""
    assignment = np.asarray(assignment)
    if assignment.shape != (instance.n_variables,):
        raise ValidationError(
            f"assignment must have shape ({instance.n_variables},), got {assignment.shape}"
        )
    truth = assignment.astype(bool)

    def literal_true(literal: int) -> bool:
        value = bool(truth[abs(literal) - 1])
        return value if literal > 0 else not value

    total = 0.0
    for clause in instance.clauses:
        if literal_true(clause.literal1) or (
            clause.literal2 != 0 and literal_true(clause.literal2)
        ):
            total += clause.weight
    return float(total)


@dataclass(frozen=True)
class Max2SatResult:
    """Result of the SDP-based MAX2SAT approximation."""

    assignment: np.ndarray
    value: float
    sdp_objective: float
    sample_values: np.ndarray


def _clause_terms(instance: Max2SatInstance) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised clause representation: variable indices (1-based rows of V) and signs."""
    idx1 = np.empty(instance.n_clauses, dtype=np.int64)
    idx2 = np.empty(instance.n_clauses, dtype=np.int64)
    signs = np.empty((instance.n_clauses, 2))
    for k, clause in enumerate(instance.clauses):
        idx1[k] = abs(clause.literal1)
        signs[k, 0] = 1.0 if clause.literal1 > 0 else -1.0
        if clause.literal2 != 0:
            idx2[k] = abs(clause.literal2)
            signs[k, 1] = 1.0 if clause.literal2 > 0 else -1.0
        else:
            idx2[k] = abs(clause.literal1)
            signs[k, 1] = signs[k, 0]
    return idx1, idx2, signs


def _sat_objective(instance: Max2SatInstance, V: np.ndarray, weights: np.ndarray) -> float:
    """Relaxed expected satisfied weight.

    For a clause (l1 or l2) with sign-adjusted vectors ``a = s1 v_{i1}`` and
    ``b = s2 v_{i2}`` the relaxation value is
    ``1 - (1 - v0.a)(1 - v0.b)/ ... `` — we use the standard quadratic form
    ``(3 + v0.a + v0.b - a.b) / 4`` which equals the probability both literals
    are not simultaneously false under hyperplane rounding for the GW analysis.
    """
    idx1, idx2, signs = _clause_terms(instance)
    v0 = V[0]
    a = signs[:, :1] * V[idx1]
    b = signs[:, 1:] * V[idx2]
    terms = (3.0 + a @ v0 + b @ v0 - np.sum(a * b, axis=1)) / 4.0
    return float(np.dot(weights, terms))


def _sat_gradient(instance: Max2SatInstance, V: np.ndarray, weights: np.ndarray) -> np.ndarray:
    idx1, idx2, signs = _clause_terms(instance)
    grad = np.zeros_like(V)
    v0 = V[0]
    a = signs[:, :1] * V[idx1]
    b = signs[:, 1:] * V[idx2]
    w = weights[:, None] / 4.0
    grad[0] = np.sum(w * (a + b), axis=0)
    np.add.at(grad, idx1, signs[:, :1] * w * (v0[None, :] - b))
    np.add.at(grad, idx2, signs[:, 1:] * w * (v0[None, :] - a))
    return grad


def max2sat_gw(
    instance: Max2SatInstance,
    n_samples: int = 100,
    rank: Optional[int] = None,
    max_iterations: int = 1500,
    seed: RandomState = None,
) -> Max2SatResult:
    """Approximate MAX2SAT by SDP relaxation + hyperplane rounding.

    Variable i is set True when its vector lands on the same side of the
    random hyperplane as the marker vector ``v_0``; the best of *n_samples*
    roundings is returned.
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n = instance.n_variables
    if rank is None:
        rank = max(4, int(np.ceil(np.sqrt(2.0 * (n + 1)))) + 1)
    weights = np.array([c.weight for c in instance.clauses]) if instance.n_clauses else np.zeros(0)
    sdp_rng, rounding_rng = spawn_generators(seed, 2)

    V = random_oblique_point(n + 1, rank, seed=sdp_rng)
    objective = _sat_objective(instance, V, weights) if instance.n_clauses else 0.0
    step = 1.0
    if instance.n_clauses:
        for _ in range(max_iterations):
            grad = tangent_project(V, _sat_gradient(instance, V, weights))
            grad_norm = float(np.linalg.norm(grad))
            if grad_norm <= 1e-7 * max(1.0, instance.total_weight):
                break
            improved = False
            trial = step
            for _ in range(30):
                candidate = retract(V, trial * grad)
                candidate_objective = _sat_objective(instance, candidate, weights)
                if candidate_objective > objective + 1e-12:
                    V = candidate
                    objective = candidate_objective
                    step = min(trial * 2.0, 100.0)
                    improved = True
                    break
                trial *= 0.5
            if not improved:
                break

    rng = as_generator(rounding_rng)
    normals = rng.standard_normal((n_samples, V.shape[1]))
    projections = normals @ V.T  # (k, n+1)
    side_of_v0 = np.sign(projections[:, :1])
    side_of_v0[side_of_v0 == 0] = 1.0
    assignments = (np.sign(projections[:, 1:]) == side_of_v0)
    values = np.array([satisfied_clauses(instance, assignments[k]) for k in range(n_samples)])
    best = int(np.argmax(values))
    return Max2SatResult(
        assignment=assignments[best].astype(bool),
        value=float(values[best]),
        sdp_objective=objective,
        sample_values=values,
    )


def random_max2sat_instance(
    n_variables: int,
    n_clauses: int,
    seed: RandomState = None,
    weighted: bool = False,
) -> Max2SatInstance:
    """Generate a random MAX2SAT instance with distinct-variable 2-clauses.

    With ``weighted=True`` clause weights are drawn uniformly from
    ``[0.5, 1.5)`` instead of being 1.  Deterministic given *seed*; problem
    suites seed it through the library's paired convention
    (``SeedSequence(seed, spawn_key=...)`` via
    :func:`repro.utils.rng.paired_seed`), so the same ``(seed, instance)``
    key yields the same instance across interpreters and execution paths.
    """
    if n_variables < 2:
        raise ValidationError(f"n_variables must be >= 2, got {n_variables}")
    if n_clauses < 1:
        raise ValidationError(f"n_clauses must be >= 1, got {n_clauses}")
    rng = as_generator(seed)
    clauses = []
    for _ in range(n_clauses):
        v1, v2 = rng.choice(n_variables, size=2, replace=False)
        s1 = 1 if rng.random() < 0.5 else -1
        s2 = 1 if rng.random() < 0.5 else -1
        weight = float(rng.uniform(0.5, 1.5)) if weighted else 1.0
        clauses.append(Clause(int(s1 * (v1 + 1)), int(s2 * (v2 + 1)), weight))
    return Max2SatInstance(n_variables=n_variables, clauses=tuple(clauses))
