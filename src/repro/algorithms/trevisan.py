"""Software Trevisan simple-spectral baseline (thin façade over repro.spectral)."""

from __future__ import annotations

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.spectral.trevisan import trevisan_simple_spectral, trevisan_sweep_cut
from repro.utils.rng import RandomState

__all__ = ["trevisan_spectral"]


def trevisan_spectral(
    graph: Graph,
    sweep: bool = False,
    method: str = "auto",
    seed: RandomState = None,
) -> Cut:
    """Run the software Trevisan simple-spectral algorithm and return its cut.

    Parameters
    ----------
    graph:
        Graph to cut.
    sweep:
        If True, use the sweep-cut refinement (try every threshold along the
        sorted eigenvector) instead of the plain sign threshold.
    method:
        Eigen-solver backend passed through to
        :func:`repro.spectral.minimum_eigenvector`.
    """
    if sweep:
        return trevisan_sweep_cut(graph, method=method, seed=seed).cut
    return trevisan_simple_spectral(graph, method=method, seed=seed).cut
