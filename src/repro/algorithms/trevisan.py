"""Software Trevisan simple-spectral baseline (thin façade over repro.spectral).

Trevisan's algorithm cuts the graph by thresholding the minimum eigenvector
of the normalised adjacency matrix — a deterministic O(m) rounding after one
eigen-solve.  This module adapts :func:`repro.spectral.trevisan_simple_spectral`
to the registry's uniform solver signature.

Registry note: unlike every stochastic solver, this method takes **no**
``n_samples`` budget — the registry wrapper accepts the argument for
interface uniformity and ignores it (budget semantics ``"ignored"``), so
arena leaderboards report its sample throughput as 0 rather than crediting
it with work it never did.  ``seed`` only matters when the iterative
eigen-solver backend needs a random starting vector; the returned cut is the
same either way.
"""

from __future__ import annotations

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.spectral.trevisan import trevisan_simple_spectral, trevisan_sweep_cut
from repro.utils.rng import RandomState

__all__ = ["trevisan_spectral"]


def trevisan_spectral(
    graph: Graph,
    sweep: bool = False,
    method: str = "auto",
    seed: RandomState = None,
) -> Cut:
    """Run the software Trevisan simple-spectral algorithm and return its cut.

    Parameters
    ----------
    graph:
        Graph to cut.
    sweep:
        If True, use the sweep-cut refinement (try every threshold along the
        sorted eigenvector) instead of the plain sign threshold.
    method:
        Eigen-solver backend passed through to
        :func:`repro.spectral.minimum_eigenvector`.
    """
    if sweep:
        return trevisan_sweep_cut(graph, method=method, seed=seed).cut
    return trevisan_simple_spectral(graph, method=method, seed=seed).cut
