"""The full software Goemans-Williamson algorithm (paper §II.A).

Two phases: solve the MAXCUT SDP relaxation, then round the resulting unit
vectors with random hyperplanes, keeping the best of ``n_samples`` roundings.
This is the "software solver" reference curve in the paper's figures (the
paper used PyManopt for the SDP phase; here the Burer-Monteiro solver from
:mod:`repro.sdp` fills that role).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cuts.cut import Cut
from repro.graphs.graph import Graph
from repro.sdp.burer_monteiro import SDPResult, solve_maxcut_sdp
from repro.sdp.rounding import hyperplane_rounding
from repro.utils.rng import RandomState, spawn_generators
from repro.utils.validation import ValidationError

__all__ = ["GWResult", "goemans_williamson"]

#: The Goemans-Williamson approximation constant.
GW_APPROXIMATION_RATIO = 0.8785672


@dataclass(frozen=True)
class GWResult:
    """Result of the software Goemans-Williamson run.

    Attributes
    ----------
    best_cut:
        Best cut over all hyperplane roundings.
    sdp:
        The SDP solve used for the rounding step.
    sample_weights:
        Cut weight of every rounding sample, in order (supports running-max
        convergence curves comparable to the circuits').
    """

    best_cut: Cut
    sdp: SDPResult
    sample_weights: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def best_weight(self) -> float:
        return self.best_cut.weight

    def running_best(self) -> np.ndarray:
        """Running maximum of the rounding samples."""
        if self.sample_weights.size == 0:
            return np.zeros(0)
        return np.maximum.accumulate(self.sample_weights)


def goemans_williamson(
    graph: Graph,
    n_samples: int = 100,
    rank: Optional[int] = None,
    seed: RandomState = None,
    sdp_result: Optional[SDPResult] = None,
    sdp_max_iterations: int = 2000,
    sdp_tolerance: float = 1e-6,
) -> GWResult:
    """Run the Goemans-Williamson algorithm end to end.

    Parameters
    ----------
    graph:
        Graph to cut.
    n_samples:
        Number of random hyperplane roundings (best is kept).
    rank:
        SDP factorisation rank; defaults to ``ceil(sqrt(2 n)) + 1`` so the
        Burer-Monteiro landscape is benign (the paper's circuits use rank 4,
        but the software solver is meant to be the high-quality reference).
    seed:
        Randomness for the SDP initial point and the roundings.
    sdp_result:
        Optional pre-computed SDP solution (rank must match *rank* if both
        are supplied).
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    n = graph.n_vertices
    if n == 0:
        raise ValidationError("goemans_williamson requires at least one vertex")
    if rank is None:
        rank = max(4, int(np.ceil(np.sqrt(2.0 * n))) + 1)

    sdp_rng, rounding_rng = spawn_generators(seed, 2)
    if sdp_result is None:
        sdp_result = solve_maxcut_sdp(
            graph,
            rank=rank,
            max_iterations=sdp_max_iterations,
            tolerance=sdp_tolerance,
            seed=sdp_rng,
        )
    assignments, weights = hyperplane_rounding(
        graph, sdp_result.vectors, n_samples=n_samples, seed=rounding_rng
    )
    best = int(np.argmax(weights))
    best_cut = Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
    return GWResult(best_cut=best_cut, sdp=sdp_result, sample_weights=weights)
