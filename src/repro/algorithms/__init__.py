"""Classical (software) MAXCUT algorithms and constraint-satisfaction extensions.

These are the baselines the paper compares its circuits against:

* :func:`goemans_williamson` — the full GW pipeline (SDP + hyperplane
  rounding), the paper's "software solver" (green triangles in Figs. 3-4).
* :func:`trevisan_spectral` — the software simple-spectral Trevisan algorithm.
* :func:`random_baseline` — uniformly random cuts (red X's).

The Discussion section notes the LIF-GW circuit extends to MAXDICUT and
MAX2SAT through the corresponding Goemans-Williamson rounding schemes; those
extensions are implemented in :mod:`repro.algorithms.maxdicut` and
:mod:`repro.algorithms.max2sat`.
"""

from repro.algorithms.goemans_williamson import GWResult, goemans_williamson
from repro.algorithms.trevisan import trevisan_spectral
from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.maxdicut import DirectedGraph, maxdicut_gw, dicut_value
from repro.algorithms.max2sat import (
    Clause,
    Max2SatInstance,
    max2sat_gw,
    satisfied_clauses,
    random_max2sat_instance,
)
from repro.algorithms.registry import SOLVERS, get_solver, list_solvers

__all__ = [
    "GWResult",
    "goemans_williamson",
    "trevisan_spectral",
    "random_baseline",
    "DirectedGraph",
    "maxdicut_gw",
    "dicut_value",
    "Clause",
    "Max2SatInstance",
    "max2sat_gw",
    "satisfied_clauses",
    "random_max2sat_instance",
    "SOLVERS",
    "get_solver",
    "list_solvers",
]
