"""Classical (software) MAXCUT algorithms and constraint-satisfaction extensions.

These are the baselines the paper compares its circuits against:

* :func:`goemans_williamson` — the full GW pipeline (SDP + hyperplane
  rounding), the paper's "software solver" (green triangles in Figs. 3-4).
* :func:`trevisan_spectral` — the software simple-spectral Trevisan algorithm.
* :func:`random_baseline` — uniformly random cuts (red X's).

The Discussion section notes the LIF-GW circuit extends to MAXDICUT and
MAX2SAT through the corresponding Goemans-Williamson rounding schemes; those
extensions are implemented in :mod:`repro.algorithms.maxdicut` and
:mod:`repro.algorithms.max2sat`.

All MAXCUT methods — circuits and baselines — are registered in the
capability-aware registry (:mod:`repro.algorithms.registry`): look solvers up
with :func:`get_solver`, inspect capabilities and per-solver ``n_samples``
semantics with :func:`get_spec` / :func:`list_specs`, and add new methods
with :func:`register_solver`.  The registry is what the cross-method arena
(:mod:`repro.arena`) and the ``repro solve`` / ``repro compare`` CLI build on.
"""

from repro.algorithms.goemans_williamson import GWResult, goemans_williamson
from repro.algorithms.trevisan import trevisan_spectral
from repro.algorithms.random_baseline import random_baseline
from repro.algorithms.maxdicut import DirectedGraph, maxdicut_gw, dicut_value
from repro.algorithms.max2sat import (
    Clause,
    Max2SatInstance,
    max2sat_gw,
    satisfied_clauses,
    random_max2sat_instance,
)
from repro.algorithms.registry import (
    SOLVER_SPECS,
    SOLVERS,
    SolverSpec,
    get_solver,
    get_spec,
    list_solvers,
    list_specs,
    register_solver,
)

__all__ = [
    "GWResult",
    "goemans_williamson",
    "trevisan_spectral",
    "random_baseline",
    "DirectedGraph",
    "maxdicut_gw",
    "dicut_value",
    "Clause",
    "Max2SatInstance",
    "max2sat_gw",
    "satisfied_clauses",
    "random_max2sat_instance",
    "SOLVERS",
    "SOLVER_SPECS",
    "SolverSpec",
    "get_solver",
    "get_spec",
    "list_solvers",
    "list_specs",
    "register_solver",
]
