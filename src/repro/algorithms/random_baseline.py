"""Uniformly random cut baseline, packaged like the other solvers.

The red-X reference curve in the paper's figures: draw ``n_samples``
uniformly random ±1 assignments, evaluate them in one vectorised batch, and
keep the best.  In expectation a random cut captures half the total edge
weight, so this is the floor every serious method must clear.  Registry
budget semantics: ``n_samples`` = number of random cuts drawn (``"cuts"``).
"""

from __future__ import annotations

import numpy as np

from repro.cuts.cut import Cut
from repro.cuts.random_cut import random_cuts_batch
from repro.graphs.graph import Graph
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = ["random_baseline"]


def random_baseline(
    graph: Graph, n_samples: int = 100, seed: RandomState = None
) -> tuple[Cut, np.ndarray]:
    """Best of *n_samples* uniformly random cuts, plus the per-sample weights.

    Returns
    -------
    (best_cut, sample_weights):
        The best cut and the full weight trajectory (for running-max curves
        comparable to the circuits' trajectories).
    """
    if n_samples < 1:
        raise ValidationError(f"n_samples must be >= 1, got {n_samples}")
    assignments, weights = random_cuts_batch(graph, n_samples, seed=seed)
    best = int(np.argmax(weights))
    best_cut = Cut(
        assignment=assignments[best].astype(np.int8),
        weight=float(weights[best]),
        graph_name=graph.name,
    )
    return best_cut, weights
