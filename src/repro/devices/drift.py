"""Device pools whose switching probability drifts over time.

Models slow parameter drift (temperature, ageing, bias-voltage wander) as an
Ornstein-Uhlenbeck process on each device's log-odds.  The probability of
state 1 for device alpha at step t is ``sigmoid(x_alpha(t))`` where

    x(t+1) = x(t) + theta * (mu - x(t)) + sigma * xi,   xi ~ N(0, 1).

With ``mu = 0`` the process reverts to a fair coin on average while wandering
around it, the behaviour the paper's Discussion flags as a realistic
imperfection.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import DevicePool
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_non_negative, check_probability

__all__ = ["DriftingDevicePool"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable logistic function.
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


class DriftingDevicePool(DevicePool):
    """Devices whose probability of state 1 follows a slow OU drift in log-odds.

    Parameters
    ----------
    n_devices:
        Number of devices.
    drift_rate:
        OU mean-reversion rate ``theta`` in ``[0, 1]``.
    drift_scale:
        Standard deviation ``sigma`` of the per-step log-odds innovation.
    target_probability:
        Long-run mean probability (``mu = logit(target_probability)``).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_devices: int,
        drift_rate: float = 0.01,
        drift_scale: float = 0.05,
        target_probability: float = 0.5,
        seed: RandomState = None,
    ) -> None:
        super().__init__(n_devices)
        drift_rate = float(drift_rate)
        if not (0.0 <= drift_rate <= 1.0):
            raise ValidationError(f"drift_rate must be in [0, 1], got {drift_rate}")
        self._theta = drift_rate
        self._sigma = check_non_negative(drift_scale, "drift_scale")
        target_probability = check_probability(target_probability, "target_probability")
        if target_probability in (0.0, 1.0):
            raise ValidationError("target_probability must be strictly inside (0, 1)")
        self._mu = float(np.log(target_probability / (1.0 - target_probability)))
        self._rng = as_generator(seed)
        self._log_odds = np.full(self.n_devices, self._mu, dtype=np.float64)

    @property
    def current_probabilities(self) -> np.ndarray:
        """Current per-device probability of state 1."""
        return _sigmoid(self._log_odds)

    def reset(self) -> None:
        """Reset every device's log-odds to the long-run mean."""
        self._log_odds[:] = self._mu

    def sample(self, n_steps: int) -> np.ndarray:
        n_steps = self._check_steps(n_steps)
        if n_steps == 0:
            return np.zeros((0, self.n_devices), dtype=np.int8)
        states = np.empty((n_steps, self.n_devices), dtype=np.int8)
        log_odds = self._log_odds
        innovations = self._rng.standard_normal((n_steps, self.n_devices))
        uniforms = self._rng.random((n_steps, self.n_devices))
        for t in range(n_steps):
            log_odds = log_odds + self._theta * (self._mu - log_odds) + self._sigma * innovations[t]
            states[t] = (uniforms[t] < _sigmoid(log_odds)).astype(np.int8)
        self._log_odds = log_odds
        return states

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        """Independent replicas, each starting at the long-run mean log-odds.

        Vectorised across trials: the OU log-odds walk advances all
        ``n_trials x n_devices`` processes at once per step.  The pool's own
        drift state is not consumed or modified.
        """
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        if n_steps == 0 or n_trials == 0:
            return np.zeros((n_trials, n_steps, self.n_devices), dtype=np.int8)
        shape = (n_trials, self.n_devices)
        log_odds = np.full(shape, self._mu, dtype=np.float64)
        innovations = generator.standard_normal((n_steps,) + shape)
        uniforms = generator.random((n_steps,) + shape)
        states = np.empty((n_trials, n_steps, self.n_devices), dtype=np.int8)
        for t in range(n_steps):
            log_odds = log_odds + self._theta * (self._mu - log_odds) + self._sigma * innovations[t]
            states[:, t] = (uniforms[t] < _sigmoid(log_odds)).astype(np.int8)
        return states

    def expected_mean(self) -> np.ndarray:
        return np.full(self.n_devices, _sigmoid(np.array([self._mu]))[0])
