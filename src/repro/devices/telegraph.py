"""Random-telegraph-noise device pool.

Magnetic tunnel junctions and similar two-state devices switch between states
with characteristic dwell times rather than re-flipping independently every
clock tick.  This pool models each device as a two-state Markov chain with
per-step switching probabilities ``p_{0->1}`` and ``p_{1->0}``, which produces
temporally correlated bit streams (the imperfection the paper's Discussion
calls "internal correlations").

With symmetric switching probabilities the stationary distribution is a fair
coin, but consecutive samples are positively correlated when the switching
probability is below 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import DevicePool
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import check_probability

__all__ = ["TelegraphNoisePool"]


class TelegraphNoisePool(DevicePool):
    """Two-state Markov (random telegraph noise) devices.

    Parameters
    ----------
    n_devices:
        Number of devices.
    switch_up:
        Per-step probability of a 0 -> 1 transition.
    switch_down:
        Per-step probability of a 1 -> 0 transition (defaults to *switch_up*).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_devices: int,
        switch_up: float = 0.5,
        switch_down: float | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(n_devices)
        self._p_up = check_probability(switch_up, "switch_up")
        self._p_down = check_probability(
            switch_up if switch_down is None else switch_down, "switch_down"
        )
        self._rng = as_generator(seed)
        # Start each device in its stationary distribution.
        stationary_p1 = self.expected_mean()
        self._state = (self._rng.random(self.n_devices) < stationary_p1).astype(np.int8)

    @property
    def switching_probabilities(self) -> tuple[float, float]:
        """``(p_up, p_down)`` per-step switching probabilities."""
        return self._p_up, self._p_down

    def lag1_autocorrelation(self) -> float:
        """Theoretical lag-1 autocorrelation ``1 - p_up - p_down`` of each device."""
        return 1.0 - self._p_up - self._p_down

    def sample(self, n_steps: int) -> np.ndarray:
        n_steps = self._check_steps(n_steps)
        if n_steps == 0:
            return np.zeros((0, self.n_devices), dtype=np.int8)
        states = np.empty((n_steps, self.n_devices), dtype=np.int8)
        state = self._state
        uniforms = self._rng.random((n_steps, self.n_devices))
        for t in range(n_steps):
            switch_prob = np.where(state == 0, self._p_up, self._p_down)
            flips = uniforms[t] < switch_prob
            state = np.where(flips, 1 - state, state).astype(np.int8)
            states[t] = state
        self._state = state
        return states

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        """Independent replicas, each started from the stationary distribution.

        Vectorised across trials: the two-state Markov chain advances all
        ``n_trials x n_devices`` chains at once per step.  The pool's own
        persistent state is not consumed or modified.
        """
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        shape = (n_trials, self.n_devices)
        if n_steps == 0 or n_trials == 0:
            return np.zeros((n_trials, n_steps, self.n_devices), dtype=np.int8)
        stationary_p1 = self.expected_mean()[None, :]
        state = (generator.random(shape) < stationary_p1).astype(np.int8)
        uniforms = generator.random((n_steps,) + shape)
        states = np.empty((n_trials, n_steps, self.n_devices), dtype=np.int8)
        for t in range(n_steps):
            switch_prob = np.where(state == 0, self._p_up, self._p_down)
            flips = uniforms[t] < switch_prob
            state = np.where(flips, 1 - state, state).astype(np.int8)
            states[:, t] = state
        return states

    def expected_mean(self) -> np.ndarray:
        total = self._p_up + self._p_down
        if total == 0.0:
            # Devices never switch: they stay wherever they started; report 0.5
            # as the ensemble mean over random initial states.
            stationary = 0.5
        else:
            stationary = self._p_up / total
        return np.full(self.n_devices, stationary)
