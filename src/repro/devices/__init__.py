"""Stochastic device models (paper §III.A).

The paper idealises stochastic microelectronic devices (magnetic tunnel
junctions, tunnel diodes) as independent fair coins: at every time step each
device is 0 or 1 with probability 0.5.  The Discussion section notes that real
devices may be biased, correlated, or drift over time; this package implements
the idealised pool and those imperfection models so the ablation experiments
(DESIGN.md E4) can quantify robustness.
"""

from repro.devices.base import DevicePool, DeviceStatistics, estimate_statistics
from repro.devices.bernoulli import FairCoinPool, BiasedCoinPool
from repro.devices.correlated import CorrelatedDevicePool
from repro.devices.drift import DriftingDevicePool
from repro.devices.telegraph import TelegraphNoisePool

__all__ = [
    "DevicePool",
    "DeviceStatistics",
    "estimate_statistics",
    "FairCoinPool",
    "BiasedCoinPool",
    "CorrelatedDevicePool",
    "DriftingDevicePool",
    "TelegraphNoisePool",
]
