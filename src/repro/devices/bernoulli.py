"""Independent Bernoulli device pools: fair coins (the paper's model) and biased coins."""

from __future__ import annotations

import numpy as np

from repro.devices.base import DevicePool
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError, check_probability

__all__ = ["FairCoinPool", "BiasedCoinPool"]


class FairCoinPool(DevicePool):
    """Pool of independent fair coins — the idealised device of the paper.

    Every device is 0 or 1 with probability exactly 0.5, independently across
    devices and time steps.
    """

    def __init__(self, n_devices: int, seed: RandomState = None) -> None:
        super().__init__(n_devices)
        self._rng = as_generator(seed)

    def sample(self, n_steps: int) -> np.ndarray:
        n_steps = self._check_steps(n_steps)
        return self._rng.integers(
            0, 2, size=(n_steps, self.n_devices), dtype=np.int8
        )

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        return generator.integers(
            0, 2, size=(n_trials, n_steps, self.n_devices), dtype=np.int8
        )

    def expected_mean(self) -> np.ndarray:
        return np.full(self.n_devices, 0.5)


class BiasedCoinPool(DevicePool):
    """Pool of independent biased coins with per-device success probabilities.

    Models fabrication variability: each device has its own probability
    ``p_alpha`` of being in state 1.
    """

    def __init__(
        self,
        probabilities: np.ndarray | float,
        n_devices: int | None = None,
        seed: RandomState = None,
    ) -> None:
        if np.isscalar(probabilities):
            if n_devices is None:
                raise ValidationError(
                    "n_devices is required when probabilities is a scalar"
                )
            probabilities = np.full(int(n_devices), float(probabilities))
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.ndim != 1:
            raise ValidationError("probabilities must be 1-D")
        for p in probabilities:
            check_probability(p, "device probability")
        super().__init__(probabilities.shape[0])
        self._probabilities = probabilities
        self._rng = as_generator(seed)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-device probability of state 1."""
        return self._probabilities.copy()

    def sample(self, n_steps: int) -> np.ndarray:
        n_steps = self._check_steps(n_steps)
        uniform = self._rng.random((n_steps, self.n_devices))
        return (uniform < self._probabilities[None, :]).astype(np.int8)

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        uniform = generator.random((n_trials, n_steps, self.n_devices))
        return (uniform < self._probabilities[None, None, :]).astype(np.int8)

    def expected_mean(self) -> np.ndarray:
        return self._probabilities.copy()
