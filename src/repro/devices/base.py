"""Device pool interface and empirical device statistics.

A *device pool* is a collection of ``n_devices`` binary stochastic elements.
Calling :meth:`DevicePool.sample` with ``n_steps`` returns an
``(n_steps, n_devices)`` int8 array of 0/1 states — the raw randomness the
neuromorphic circuits integrate.  Pools are stateful only where the physical
model requires it (drift, telegraph noise); sampling is always vectorised
over time steps.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["DevicePool", "DeviceStatistics", "estimate_statistics"]


class DevicePool(abc.ABC):
    """Abstract pool of binary stochastic devices."""

    def __init__(self, n_devices: int) -> None:
        n_devices = int(n_devices)
        if n_devices < 1:
            raise ValidationError(f"n_devices must be >= 1, got {n_devices}")
        self._n_devices = n_devices

    @property
    def n_devices(self) -> int:
        """Number of devices in the pool."""
        return self._n_devices

    @abc.abstractmethod
    def sample(self, n_steps: int) -> np.ndarray:
        """Draw *n_steps* simultaneous states of every device.

        Returns
        -------
        numpy.ndarray
            ``(n_steps, n_devices)`` array of 0/1 values (int8).
        """

    def sample_step(self) -> np.ndarray:
        """Draw a single time step: ``(n_devices,)`` array of 0/1 values."""
        return self.sample(1)[0]

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        """Draw *n_trials* independent trial blocks: ``(n_trials, n_steps, n_devices)``.

        Each trial is an independent replica of the pool's stochastic process
        started from a fresh initial state, with its randomness drawn from
        *rng* (``None`` falls back to the pool's own stream).  The built-in
        pools override this with implementations vectorised across all three
        axes.

        This default serves custom subclasses by looping :meth:`sample`,
        honouring *rng* by temporarily substituting it for the pool's
        ``_rng`` stream (the seeding idiom every pool in this library
        follows).  A subclass that stores its generator elsewhere must
        override ``sample_batch`` to accept *rng*; passing one to the
        default raises rather than silently sampling from the wrong
        stream.  Trials are consecutive segments of one stream, so
        temporally-stateful custom pools should also override if strict
        fresh-replica semantics matter.

        Note: the batched engine does *not* use this method for its
        bit-reproducible path (it builds one pool per trial from per-trial
        seeds); ``sample_batch`` is the bulk-sampling API for statistics,
        calibration, and Monte-Carlo sweeps where trial-vs-batch-size
        reproducibility is not required.
        """
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        if rng is not None and not hasattr(self, "_rng"):
            raise ValidationError(
                f"{type(self).__name__} does not store its generator at _rng; "
                "override sample_batch to honour an explicit rng"
            )
        if n_trials == 0:
            return np.zeros((0, n_steps, self.n_devices), dtype=np.int8)
        substitute = rng is not None and hasattr(self, "_rng")
        saved = self._rng if substitute else None
        if substitute:
            self._rng = generator
        try:
            return np.stack([self.sample(n_steps) for _ in range(n_trials)])
        finally:
            if substitute:
                self._rng = saved

    @abc.abstractmethod
    def expected_mean(self) -> np.ndarray:
        """Theoretical per-device mean state (length ``n_devices``)."""

    def expected_covariance(self) -> np.ndarray:
        """Theoretical device-state covariance matrix.

        The default implementation assumes independent devices, i.e. a
        diagonal matrix with Bernoulli variances ``p (1 - p)``.
        Subclasses with engineered correlations override this.
        """
        p = self.expected_mean()
        return np.diag(p * (1.0 - p))

    def _check_steps(self, n_steps: int) -> int:
        n_steps = int(n_steps)
        if n_steps < 0:
            raise ValidationError(f"n_steps must be non-negative, got {n_steps}")
        return n_steps

    def _batch_args(self, n_trials: int, n_steps: int, rng) -> tuple:
        """Validate batch-sampling arguments and resolve the generator.

        Returns ``(n_trials, n_steps, generator)`` where the generator is
        *rng* normalised, or the pool's own stream when *rng* is ``None``.
        """
        from repro.utils.rng import as_generator

        n_trials = int(n_trials)
        if n_trials < 0:
            raise ValidationError(f"n_trials must be non-negative, got {n_trials}")
        n_steps = self._check_steps(n_steps)
        if rng is None:
            generator = getattr(self, "_rng", None)
            if generator is None:
                generator = as_generator(None)
        else:
            generator = as_generator(rng)
        return n_trials, n_steps, generator

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}(n_devices={self._n_devices})"


@dataclass(frozen=True)
class DeviceStatistics:
    """Empirical statistics of a sampled device pool."""

    mean: np.ndarray            # per-device empirical mean, shape (r,)
    covariance: np.ndarray      # empirical covariance, shape (r, r)
    n_steps: int

    @property
    def max_bias(self) -> float:
        """Largest deviation of any device's mean from the fair-coin value 0.5."""
        if self.mean.size == 0:
            return 0.0
        return float(np.max(np.abs(self.mean - 0.5)))

    @property
    def max_cross_correlation(self) -> float:
        """Largest absolute off-diagonal correlation coefficient."""
        if self.covariance.shape[0] < 2:
            return 0.0
        std = np.sqrt(np.clip(np.diag(self.covariance), 1e-30, None))
        corr = self.covariance / np.outer(std, std)
        off_diag = corr - np.diag(np.diag(corr))
        return float(np.max(np.abs(off_diag)))


def estimate_statistics(pool: DevicePool, n_steps: int = 10_000) -> DeviceStatistics:
    """Estimate the empirical mean and covariance of *pool* from *n_steps* samples."""
    if n_steps < 2:
        raise ValidationError(f"n_steps must be >= 2 to estimate covariance, got {n_steps}")
    states = pool.sample(n_steps).astype(np.float64)
    mean = states.mean(axis=0)
    covariance = np.cov(states, rowvar=False)
    covariance = np.atleast_2d(covariance)
    return DeviceStatistics(mean=mean, covariance=covariance, n_steps=n_steps)
