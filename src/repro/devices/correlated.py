"""Device pools with engineered cross-device correlation.

Real device arrays can show correlations from shared supply lines, thermal
coupling, or crosstalk.  This pool produces binary states whose pairwise
correlation is (approximately) a target value ``rho`` for every pair, using a
Gaussian copula: a common factor plus an independent factor are mixed and
thresholded at zero.

For threshold-at-zero Bernoulli(0.5) marginals, a latent Gaussian correlation
``rho_g`` yields binary correlation ``(2/pi) arcsin(rho_g)``; the constructor
inverts that map so the *binary* correlation matches the request.
"""

from __future__ import annotations

import numpy as np

from repro.devices.base import DevicePool
from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = ["CorrelatedDevicePool"]


class CorrelatedDevicePool(DevicePool):
    """Equicorrelated binary devices with Bernoulli(0.5) marginals.

    Parameters
    ----------
    n_devices:
        Number of devices.
    correlation:
        Target pairwise correlation of the binary states, in ``(-1/(r-1), 1)``
        practically restricted to ``[0, 1)`` (a single common factor cannot
        produce strong negative equicorrelation).
    seed:
        RNG seed.
    """

    def __init__(
        self, n_devices: int, correlation: float, seed: RandomState = None
    ) -> None:
        super().__init__(n_devices)
        correlation = float(correlation)
        if not (0.0 <= correlation < 1.0):
            raise ValidationError(
                f"correlation must be in [0, 1), got {correlation}"
            )
        self._binary_correlation = correlation
        # Invert rho_binary = (2/pi) * arcsin(rho_gaussian).
        self._gaussian_correlation = float(np.sin(np.pi * correlation / 2.0))
        self._rng = as_generator(seed)

    @property
    def correlation(self) -> float:
        """Target pairwise binary correlation."""
        return self._binary_correlation

    def sample(self, n_steps: int) -> np.ndarray:
        n_steps = self._check_steps(n_steps)
        if n_steps == 0:
            return np.zeros((0, self.n_devices), dtype=np.int8)
        rho = self._gaussian_correlation
        common = self._rng.standard_normal((n_steps, 1))
        independent = self._rng.standard_normal((n_steps, self.n_devices))
        latent = np.sqrt(rho) * common + np.sqrt(1.0 - rho) * independent
        return (latent > 0.0).astype(np.int8)

    def sample_batch(self, n_trials: int, n_steps: int, rng=None) -> np.ndarray:
        """Independent replicas, fully vectorised (one Gaussian draw per axis).

        The common factor is shared within each trial's time step but
        independent across trials, preserving the engineered equicorrelation
        per trial.
        """
        n_trials, n_steps, generator = self._batch_args(n_trials, n_steps, rng)
        if n_steps == 0 or n_trials == 0:
            return np.zeros((n_trials, n_steps, self.n_devices), dtype=np.int8)
        rho = self._gaussian_correlation
        common = generator.standard_normal((n_trials, n_steps, 1))
        independent = generator.standard_normal((n_trials, n_steps, self.n_devices))
        latent = np.sqrt(rho) * common + np.sqrt(1.0 - rho) * independent
        return (latent > 0.0).astype(np.int8)

    def expected_mean(self) -> np.ndarray:
        return np.full(self.n_devices, 0.5)

    def expected_covariance(self) -> np.ndarray:
        variance = 0.25
        covariance = np.full(
            (self.n_devices, self.n_devices), self._binary_correlation * variance
        )
        np.fill_diagonal(covariance, variance)
        return covariance
