"""The array-API seam: one engine code path for CPU and GPU tensors.

The batched engine's hot loop — device-state transfer, the weight matmul,
the lock-step membrane updates, the cut read-out — is pure ndarray math.
This module abstracts *which* ndarray library executes it behind an
:class:`ArrayBackend`: a thin, registered adapter exposing the handful of
namespace operations the engine uses (``matmul``, ``multiply``, ``add``,
``where``, allocation, host transfer) with NumPy semantics.  Three adapters
ship:

``numpy`` (default)
    The identity adapter.  Every operation *is* the module-level NumPy call
    the engine historically made, so the engine's NumPy path remains
    bit-identical to the sequential circuits.
``torch`` / ``cupy``
    Optional GPU-capable adapters, registered unconditionally but gated by
    an availability probe (importable? device visible?).  Resolving one
    that is unavailable fails loudly with the probe's reason.

RNG bridge
----------
Random sampling stays on **host NumPy**, whatever the array backend: the
per-trial ``SeedSequence`` chain (``spawn_key=(i,)`` children, the identity
every subsystem shares) drives the circuits' own device pools on the CPU,
and only the sampled state block is transferred with
:meth:`ArrayBackend.asarray`.  Seeds therefore stay bit-identical across
backends — a torch run consumes exactly the random numbers a numpy run
does, and differences are confined to floating-point summation order.
Small per-round reductions (the ``(trials,)`` cut-weight vector consumed by
the :class:`~repro.engine.tracker.BestCutTracker`) travel back through
:meth:`ArrayBackend.to_numpy` for the same reason: control flow stays on
the host, kernels stay on the device.

Backend specs
-------------
:func:`resolve_backend` is the single entry point for backend selection —
the redesigned API that replaces the ad-hoc ``select_backend`` free
function.  It accepts a compact spec naming either or both seams::

    resolve_backend("auto")          # numpy array path, auto weight routing
    resolve_backend("dense")         # numpy + dense weights, forced
    resolve_backend("torch")         # torch array path, auto weights
    resolve_backend("torch:dense")   # torch + dense, forced
    resolve_backend("numpy:sparse")  # numpy + scipy CSR weights, forced

i.e. ``"<array>"``, ``"<weight>"``, or ``"<array>:<weight>"``; ``None`` and
``"auto"`` mean "numpy, auto weight routing".  The same spec strings are
accepted end-to-end: ``SolveRequest.backend``, ``ExecutionPolicy.backend``,
``repro run/solve/compare/engine --backend``, and the serve payload's
``"backend"`` key.  Weight-backend *construction* for a resolved spec lives
in :meth:`repro.engine.backends.WeightBackend.for_graph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "ArrayBackend",
    "NumpyArrayBackend",
    "TorchArrayBackend",
    "CupyArrayBackend",
    "BackendSpec",
    "ResolvedBackend",
    "register_array_backend",
    "get_array_backend",
    "list_array_backends",
    "probe_array_backends",
    "parse_backend_spec",
    "resolve_backend",
]


class ArrayBackend:
    """Adapter protocol: the namespace operations the engine hot loop uses.

    Subclasses bind ``name`` and implement the namespace hooks.  All array
    arguments and results are the backend's native arrays except where a
    method is explicitly a host bridge (:meth:`asarray` in,
    :meth:`to_numpy` out).  Dtypes are named by NumPy-style strings
    (``"float64"``, ``"int8"``, ``"bool"``) and mapped to the backend's
    dtype objects by :meth:`dtype` — the engine's dtype policy is float64
    state everywhere (GPU backends run fp64 so parity with the CPU path
    stays within summation-order round-off; narrower policies can subclass).
    """

    name: str = "array"

    # -- availability ------------------------------------------------------
    def available(self) -> Tuple[bool, str]:
        """``(ok, reason)`` — may the backend be resolved on this host?"""
        raise NotImplementedError

    def device_label(self) -> str:
        """Human-readable execution device (``"cpu"``, ``"cuda:0"``, ...)."""
        return "cpu"

    # -- host bridge -------------------------------------------------------
    def asarray(self, array: Any, dtype: Optional[str] = None) -> Any:
        """Transfer a host array in (no copy when already native + on-device)."""
        raise NotImplementedError

    def to_numpy(self, array: Any) -> np.ndarray:
        """Transfer a backend array back to host NumPy (identity on numpy)."""
        raise NotImplementedError

    # -- dtype / allocation ------------------------------------------------
    def dtype(self, name: str) -> Any:
        """The backend dtype object for a NumPy-style dtype name."""
        raise NotImplementedError

    def empty(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        raise NotImplementedError

    def zeros(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        raise NotImplementedError

    def astype(self, array: Any, dtype: str) -> Any:
        raise NotImplementedError

    def copy(self, array: Any) -> Any:
        raise NotImplementedError

    # -- kernels -----------------------------------------------------------
    def matmul(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        raise NotImplementedError

    def multiply(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        raise NotImplementedError

    def add(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        raise NotImplementedError

    def where(self, condition: Any, x: Any, y: Any) -> Any:
        raise NotImplementedError

    def count_nonzero(self, array: Any, axis: int) -> Any:
        raise NotImplementedError

    # -- introspection -----------------------------------------------------
    def probe(self) -> Dict[str, Any]:
        """JSON-safe availability report (``repro backends``)."""
        ok, reason = self.available()
        return {
            "name": self.name,
            "available": bool(ok),
            "reason": reason,
            "device": self.device_label() if ok else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyArrayBackend(ArrayBackend):
    """The default host backend: every hook is the plain NumPy call.

    This adapter is deliberately transparent — ``asarray``/``to_numpy`` are
    ``np.asarray`` (no copies for ndarray input), and each kernel delegates
    to the module-level function the engine used before the seam existed —
    so routing the engine through it is a refactor, not a numeric change:
    outputs are bit-identical to the pre-seam engine.
    """

    name = "numpy"

    def available(self) -> Tuple[bool, str]:
        return True, "numpy is always available"

    def asarray(self, array: Any, dtype: Optional[str] = None) -> Any:
        if dtype is None:
            return np.asarray(array)
        return np.asarray(array, dtype=self.dtype(dtype))

    def to_numpy(self, array: Any) -> np.ndarray:
        return np.asarray(array)

    def dtype(self, name: str) -> Any:
        return np.dtype(name)

    def empty(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        return np.empty(shape, dtype=self.dtype(dtype))

    def zeros(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        return np.zeros(shape, dtype=self.dtype(dtype))

    def astype(self, array: Any, dtype: str) -> Any:
        return array.astype(self.dtype(dtype))

    def copy(self, array: Any) -> Any:
        return array.copy()

    def matmul(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    def multiply(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        if out is None:
            return np.multiply(a, b)
        return np.multiply(a, b, out=out)

    def add(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        if out is None:
            return np.add(a, b)
        return np.add(a, b, out=out)

    def where(self, condition: Any, x: Any, y: Any) -> Any:
        return np.where(condition, x, y)

    def count_nonzero(self, array: Any, axis: int) -> Any:
        return np.count_nonzero(array, axis=axis)


class TorchArrayBackend(ArrayBackend):
    """PyTorch adapter (CPU or CUDA), float64 state for near-parity.

    The device policy is "best visible": CUDA when available, else CPU —
    fixed at first use so one resolved backend never migrates mid-run.
    Torch's ``out=`` kernels and boolean mask assignment line up with the
    NumPy expressions the engine writes; the only deliberate divergences
    are ``.clone()`` for :meth:`copy` and ``dim=`` for
    :meth:`count_nonzero`.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        self._requested_device = device
        self._device = None

    def _torch(self):
        import torch

        return torch

    def available(self) -> Tuple[bool, str]:
        try:
            self._torch()
        except ImportError:
            return False, "torch is not importable (pip install torch)"
        return True, f"torch on {self.device_label()}"

    def device_label(self) -> str:
        if self._device is None:
            if self._requested_device is not None:
                self._device = self._requested_device
            else:
                try:
                    torch = self._torch()
                    self._device = "cuda" if torch.cuda.is_available() else "cpu"
                except ImportError:
                    return "unavailable"
        return self._device

    def asarray(self, array: Any, dtype: Optional[str] = None) -> Any:
        torch = self._torch()
        kwargs = {"device": self.device_label()}
        if dtype is not None:
            kwargs["dtype"] = self.dtype(dtype)
        return torch.asarray(np.ascontiguousarray(array), **kwargs)

    def to_numpy(self, array: Any) -> np.ndarray:
        if isinstance(array, np.ndarray):
            # Host-bridge read-outs (plasticity) hand back arrays that never
            # left the host; pass them through untouched.
            return array
        return array.detach().cpu().numpy()

    def dtype(self, name: str) -> Any:
        torch = self._torch()
        return {
            "float64": torch.float64,
            "float32": torch.float32,
            "int64": torch.int64,
            "int8": torch.int8,
            "bool": torch.bool,
        }[name]

    def empty(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        torch = self._torch()
        return torch.empty(shape, dtype=self.dtype(dtype), device=self.device_label())

    def zeros(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        torch = self._torch()
        return torch.zeros(shape, dtype=self.dtype(dtype), device=self.device_label())

    def astype(self, array: Any, dtype: str) -> Any:
        return array.to(self.dtype(dtype))

    def copy(self, array: Any) -> Any:
        return array.clone()

    def matmul(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        torch = self._torch()
        if out is None:
            return torch.matmul(a, b)
        torch.matmul(a, b, out=out)
        return out

    def multiply(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        torch = self._torch()
        if out is None:
            return torch.multiply(a, b)
        torch.multiply(a, b, out=out)
        return out

    def add(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        torch = self._torch()
        if out is None:
            return torch.add(a, b)
        torch.add(a, b, out=out)
        return out

    def where(self, condition: Any, x: Any, y: Any) -> Any:
        torch = self._torch()
        return torch.where(condition, x, y)

    def count_nonzero(self, array: Any, axis: int) -> Any:
        torch = self._torch()
        return torch.count_nonzero(array, dim=axis)


class CupyArrayBackend(ArrayBackend):
    """CuPy adapter: NumPy-compatible namespace, so hooks mostly delegate."""

    name = "cupy"

    def _cupy(self):
        import cupy

        return cupy

    def available(self) -> Tuple[bool, str]:
        try:
            cupy = self._cupy()
        except ImportError:
            return False, "cupy is not importable (pip install cupy-cuda12x)"
        try:
            count = cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # noqa: BLE001 - any runtime error means no GPU
            return False, f"cupy importable but no CUDA runtime ({exc})"
        if count < 1:
            return False, "cupy importable but no CUDA device is visible"
        return True, f"cupy on {self.device_label()}"

    def device_label(self) -> str:
        try:
            cupy = self._cupy()
            return f"cuda:{cupy.cuda.runtime.getDevice()}"
        except Exception:  # noqa: BLE001 - label only
            return "unavailable"

    def asarray(self, array: Any, dtype: Optional[str] = None) -> Any:
        cupy = self._cupy()
        if dtype is None:
            return cupy.asarray(array)
        return cupy.asarray(array, dtype=self.dtype(dtype))

    def to_numpy(self, array: Any) -> np.ndarray:
        return self._cupy().asnumpy(array)

    def dtype(self, name: str) -> Any:
        return np.dtype(name)

    def empty(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        return self._cupy().empty(shape, dtype=self.dtype(dtype))

    def zeros(self, shape: Tuple[int, ...], dtype: str = "float64") -> Any:
        return self._cupy().zeros(shape, dtype=self.dtype(dtype))

    def astype(self, array: Any, dtype: str) -> Any:
        return array.astype(self.dtype(dtype))

    def copy(self, array: Any) -> Any:
        return array.copy()

    def matmul(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        cupy = self._cupy()
        if out is None:
            return cupy.matmul(a, b)
        return cupy.matmul(a, b, out=out)

    def multiply(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        cupy = self._cupy()
        if out is None:
            return cupy.multiply(a, b)
        return cupy.multiply(a, b, out=out)

    def add(self, a: Any, b: Any, out: Optional[Any] = None) -> Any:
        cupy = self._cupy()
        if out is None:
            return cupy.add(a, b)
        return cupy.add(a, b, out=out)

    def where(self, condition: Any, x: Any, y: Any) -> Any:
        return self._cupy().where(condition, x, y)

    def count_nonzero(self, array: Any, axis: int) -> Any:
        return self._cupy().count_nonzero(array, axis=axis)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_ARRAY_REGISTRY: Dict[str, ArrayBackend] = {}

#: Spec segment meaning "pick for me" on either seam.
AUTO = "auto"


def register_array_backend(backend: ArrayBackend, overwrite: bool = False) -> ArrayBackend:
    """Register an :class:`ArrayBackend` instance under its ``name``.

    Registration is unconditional — availability is probed at *resolve*
    time, so listing shows unavailable backends with their reasons instead
    of hiding them.  Returns the backend, so it composes as a decorator on
    factories returning instances.
    """
    name = backend.name
    if not name or name == AUTO or ":" in name:
        raise ValidationError(f"invalid array backend name {name!r}")
    if name in _ARRAY_REGISTRY and not overwrite:
        raise ValidationError(
            f"array backend {name!r} is already registered "
            f"(pass overwrite=True to replace it)"
        )
    _ARRAY_REGISTRY[name] = backend
    return backend


def get_array_backend(name: str) -> ArrayBackend:
    """Look up a registered array backend by name (no availability check)."""
    try:
        return _ARRAY_REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown array backend {name!r}; registered: {list_array_backends()}"
        ) from None


def list_array_backends() -> list:
    """Names of all registered array backends."""
    return sorted(_ARRAY_REGISTRY)


def probe_array_backends() -> list:
    """Availability report for every registered array backend."""
    return [_ARRAY_REGISTRY[name].probe() for name in list_array_backends()]


register_array_backend(NumpyArrayBackend())
register_array_backend(TorchArrayBackend())
register_array_backend(CupyArrayBackend())


# ---------------------------------------------------------------------------
# Backend specs and resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BackendSpec:
    """A parsed backend spec: which array namespace, which weight backend."""

    array: str = AUTO
    weight: str = AUTO

    def __str__(self) -> str:
        return f"{self.array}:{self.weight}"


@dataclass(frozen=True)
class ResolvedBackend:
    """A resolved spec: a live (available) array backend + a weight choice.

    ``weight`` is either a registered weight-backend name or ``"auto"``
    (density-routed per graph by
    :meth:`repro.engine.backends.WeightBackend.for_graph`).
    """

    array: ArrayBackend
    weight: str = AUTO

    @property
    def describe(self) -> str:
        return f"{self.array.name}:{self.weight}"


def _weight_backend_names() -> list:
    # Function-level import: backends.py imports this module for the
    # ArrayBackend types, so the registry lookup must be lazy here.
    from repro.engine.backends import list_backends

    return list_backends()


def parse_backend_spec(
    spec: Union[None, str, BackendSpec],
) -> BackendSpec:
    """Parse a backend spec without probing availability.

    Accepts ``None``/``"auto"`` (numpy seam, auto weight), a bare array
    backend name (``"torch"``), a bare weight backend name (``"sparse"``),
    or the explicit two-seam form ``"<array>:<weight>"``.  Raises
    :class:`ValidationError` on unknown names or malformed specs.
    """
    if spec is None:
        return BackendSpec()
    if isinstance(spec, BackendSpec):
        spec = str(spec)
    if not isinstance(spec, str):
        raise ValidationError(
            f"backend spec must be a string (or None/BackendSpec), "
            f"got {type(spec).__name__}"
        )
    text = spec.strip().lower()
    if not text or text == AUTO:
        return BackendSpec()
    arrays = list_array_backends()
    weights = _weight_backend_names()
    if ":" in text:
        array_part, _, weight_part = text.partition(":")
        array_part = array_part or AUTO
        weight_part = weight_part or AUTO
        if array_part != AUTO and array_part not in arrays:
            raise ValidationError(
                f"unknown array backend {array_part!r} in spec {spec!r}; "
                f"registered: {arrays}"
            )
        if weight_part != AUTO and weight_part not in weights:
            raise ValidationError(
                f"unknown weight backend {weight_part!r} in spec {spec!r}; "
                f"registered: {weights}"
            )
        return BackendSpec(array=array_part, weight=weight_part)
    if text in arrays:
        return BackendSpec(array=text)
    if text in weights:
        return BackendSpec(weight=text)
    raise ValidationError(
        f"unknown backend spec {spec!r}; expected 'auto', an array backend "
        f"{arrays}, a weight backend {weights}, or '<array>:<weight>'"
    )


def resolve_backend(
    spec: Union[None, str, BackendSpec, ArrayBackend, ResolvedBackend] = None,
) -> ResolvedBackend:
    """Resolve a backend spec into a live, availability-checked backend pair.

    The single entry point for backend selection (module docstring).  An
    :class:`ArrayBackend` instance passes through (with an availability
    check); a :class:`ResolvedBackend` is returned as-is.  ``"auto"`` — and
    an ``"auto"`` array segment — resolves to ``numpy``: accelerators are
    opt-in, because only the numpy path carries the bit-identity guarantee.
    """
    if isinstance(spec, ResolvedBackend):
        return spec
    if isinstance(spec, ArrayBackend):
        ok, reason = spec.available()
        if not ok:
            raise ValidationError(
                f"array backend {spec.name!r} is unavailable: {reason}"
            )
        return ResolvedBackend(array=spec, weight=AUTO)
    parsed = parse_backend_spec(spec)
    array_name = "numpy" if parsed.array == AUTO else parsed.array
    array = get_array_backend(array_name)
    ok, reason = array.available()
    if not ok:
        raise ValidationError(
            f"array backend {array_name!r} is unavailable: {reason}"
        )
    return ResolvedBackend(array=array, weight=parsed.weight)
