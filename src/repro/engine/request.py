"""Request/result containers for the batched solver engine.

A :class:`SolveRequest` describes a *batch* of independent circuit trials on
one graph: which circuit to run, how many trials, how many cut read-outs per
trial, the root seed, the weight-application backend, and (optionally) an
early-stopping rule.  :class:`SolveResult` carries everything the experiment
harness needs back: the global best cut, per-trial bests, the per-round cut
trajectories, and timing/backend metadata.

Seeding contract
----------------
Trial *i* of a request with root seed ``s`` receives the seed sequence
``SeedSequence(entropy=s, spawn_key=(i,))`` — the same child that
:class:`repro.utils.rng.SeedStream` and :func:`repro.parallel.seeds.seeded_tasks`
hand to work item *i*.  Running the engine with ``n_trials=k`` is therefore
bit-identical (dense backend) to the sequential loop

    for i in range(k):
        circuit.sample_cuts(n_samples, seed=SeedSequence(s, spawn_key=(i,)))

regardless of trial-block size or execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

import numpy as np

from repro.circuits.base import CircuitResult, NeuromorphicCircuit, SampleTrajectory
from repro.cuts.cut import Cut
from repro.utils.validation import ValidationError

__all__ = ["EarlyStopConfig", "SolveRequest", "SolveResult"]


@dataclass(frozen=True)
class EarlyStopConfig:
    """Plateau rule for streaming best-cut tracking.

    The engine stops simulating further read-out rounds once the best cut seen
    so far has not improved by at least ``rel_improvement`` (relative to the
    current best, with an absolute floor of ``abs_improvement``) for
    ``patience`` consecutive rounds, provided at least ``min_rounds`` rounds
    have completed.  While a rule is active, a cut equal to the graph's total
    edge weight (every edge cut) stops immediately — no later sample can beat
    it.  Without a rule (``early_stop=None``) the engine never truncates, the
    ceiling included, preserving exact sequential equivalence.

    Attributes
    ----------
    patience:
        Number of consecutive non-improving rounds tolerated before stopping.
    min_rounds:
        Rounds always simulated before the plateau rule may fire.
    rel_improvement:
        Minimum relative improvement that resets the plateau counter.
    abs_improvement:
        Absolute floor on the improvement threshold (guards weight-0 bests).
    """

    patience: int = 32
    min_rounds: int = 64
    rel_improvement: float = 1e-3
    abs_improvement: float = 1e-9

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise ValidationError(f"patience must be >= 1, got {self.patience}")
        if self.min_rounds < 1:
            raise ValidationError(f"min_rounds must be >= 1, got {self.min_rounds}")
        if self.rel_improvement < 0 or self.abs_improvement < 0:
            raise ValidationError("improvement thresholds must be non-negative")


@dataclass(frozen=True)
class SolveRequest:
    """A batch of independent trials of one circuit on one graph.

    Attributes
    ----------
    circuit:
        Either an already-built :class:`NeuromorphicCircuit` (its graph and
        configuration are used as-is; the SDP, if any, is not re-solved), or a
        circuit name (``"lif_gw"`` / ``"lif_tr"``) — in which case ``graph``
        is required and the engine constructs the circuit itself, seeding any
        offline stage (the LIF-GW SDP solve) from ``seed``.
    graph:
        Graph to cut (ignored when ``circuit`` is an instance).
    n_trials:
        Number of independent trials.  ``0`` is allowed and produces an empty
        result.
    n_samples:
        Cut read-outs per trial (upper bound when early stopping is enabled).
    trial_offset:
        Index of the first trial in the batch.  Trial ``j`` of the batch is
        seeded as *global* trial ``trial_offset + j``, so a request split
        into consecutive offset blocks reproduces the unsplit batch trial
        for trial (used by the sharded executor, :mod:`repro.distrib`).
    seed:
        Root seed; see the module docstring for the per-trial derivation.
    trial_seeds:
        Optional explicit per-trial ``SeedSequence`` list overriding the
        root-seed derivation entirely (``seed`` and ``trial_offset`` are
        then ignored; the length must equal ``n_trials``).  This is the
        batch *merge seam*: a request coalesced from several requests
        (:mod:`repro.engine.coalesce`, the solve service) carries each
        constituent's own paired seeds, so every trial computes exactly
        what it would have computed in its original standalone request.
    config:
        Circuit configuration forwarded when the engine builds the circuit.
    backend:
        Backend spec resolved by :func:`repro.engine.xp.resolve_backend`:
        ``"auto"``, a weight backend (``"dense"``/``"sparse"`` or any name
        registered with :func:`repro.engine.backends.register_backend`), an
        array backend (``"numpy"``/``"torch"``/``"cupy"``), or the combined
        ``"<array>:<weight>"`` form (e.g. ``"torch:dense"``).  An explicit
        weight name is always honoured; ``"auto"`` picks ``sparse`` for
        large low-density graphs with square weight matrices and ``dense``
        otherwise.  Only the numpy array path guarantees bitwise identity
        with the sequential circuits; sparse and accelerator (torch/cupy)
        paths agree to floating-point round-off.
    early_stop:
        Optional plateau rule; ``None`` disables early stopping (required for
        exact sample-for-sample equivalence with the sequential path).
    deadline_seconds:
        Optional hard wall-clock deadline for the whole batch, independent of
        the plateau rule.  Once exceeded, the engine stops launching further
        read-out rounds and returns the (partial but valid) best cuts found
        so far; at least one round always completes.  Plumbed from
        :attr:`repro.workloads.spec.Budget.max_seconds` by the executor and
        from per-request timeouts by the solve service.
    record_potentials:
        If True, the result includes the membrane rows at every read-out step
        (LIF-GW membrane read-out and LIF-TR only) — memory scales with
        ``trials x rounds x neurons``.
    record_assignments:
        If True, the result includes every read-out's ±1 assignment
        (``trials x rounds x vertices``), not just the per-trial bests.
    max_block_bytes:
        Soft cap on the per-block drive-current buffer; trials are processed
        in blocks so memory stays bounded for large graphs / long runs.
    """

    circuit: Union[str, NeuromorphicCircuit] = "lif_gw"
    graph: Optional[object] = None
    n_trials: int = 1
    n_samples: int = 64
    trial_offset: int = 0
    seed: Union[None, int, np.random.SeedSequence] = None
    trial_seeds: Optional[Tuple[np.random.SeedSequence, ...]] = None
    config: Optional[object] = None
    backend: str = "auto"
    early_stop: Optional[EarlyStopConfig] = None
    deadline_seconds: Optional[float] = None
    record_potentials: bool = False
    record_assignments: bool = False
    max_block_bytes: int = 256 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.n_trials < 0:
            raise ValidationError(f"n_trials must be >= 0, got {self.n_trials}")
        if self.trial_offset < 0:
            raise ValidationError(
                f"trial_offset must be >= 0, got {self.trial_offset}"
            )
        if self.n_samples < 1:
            raise ValidationError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.max_block_bytes < 1:
            raise ValidationError("max_block_bytes must be positive")
        if self.trial_seeds is not None:
            # Normalise lists/generators to the declared tuple form (the
            # dataclass is frozen, hence the object.__setattr__).
            object.__setattr__(self, "trial_seeds", tuple(self.trial_seeds))
            if not all(
                isinstance(s, np.random.SeedSequence) for s in self.trial_seeds
            ):
                raise ValidationError(
                    "trial_seeds must contain numpy SeedSequence objects"
                )
            if len(self.trial_seeds) != self.n_trials:
                raise ValidationError(
                    f"trial_seeds must have one seed per trial: got "
                    f"{len(self.trial_seeds)} seed(s) for n_trials="
                    f"{self.n_trials}"
                )
        if self.deadline_seconds is not None and not (
            isinstance(self.deadline_seconds, (int, float))
            and not isinstance(self.deadline_seconds, bool)
            and self.deadline_seconds > 0
        ):
            raise ValidationError(
                f"deadline_seconds must be a positive number or None, "
                f"got {self.deadline_seconds!r}"
            )
        if isinstance(self.circuit, str):
            if self.graph is None:
                raise ValidationError(
                    "graph is required when circuit is given by name"
                )
        elif not isinstance(self.circuit, NeuromorphicCircuit):
            raise ValidationError(
                "circuit must be a circuit name or a NeuromorphicCircuit instance, "
                f"got {type(self.circuit).__name__}"
            )


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a batched solve.

    Attributes
    ----------
    graph_name, circuit_name, backend_name:
        Identifiers of what ran and on which weight backend.
    n_trials:
        Trials simulated.
    n_samples:
        Read-outs requested per trial.
    n_rounds:
        Read-out rounds actually completed (``< n_samples`` after an early
        stop).
    n_steps:
        LIF time steps simulated per trial (burn-in included).
    best_cut:
        Best cut across all trials and rounds (``None`` for ``n_trials=0``).
    trial_best_weights:
        ``(n_trials,)`` best cut weight per trial.
    trial_best_assignments:
        ``(n_trials, n)`` ±1 assignment achieving each trial's best.
    trajectories:
        ``(n_trials, n_rounds)`` cut weight of every read-out.
    early_stopped:
        True when the plateau rule truncated the run.
    elapsed_seconds:
        Wall-clock time of the batched simulation.
    potentials:
        ``(n_trials, n_rounds, n)`` read-out membrane rows when requested.
    assignments:
        ``(n_trials, n_rounds, n)`` read-out assignments when requested.
    metadata:
        Engine extras (block count, device count, early-stop round, ...).
    """

    graph_name: str
    circuit_name: str
    backend_name: str
    n_trials: int
    n_samples: int
    n_rounds: int
    n_steps: int
    best_cut: Optional[Cut]
    trial_best_weights: np.ndarray
    trial_best_assignments: np.ndarray
    trajectories: np.ndarray
    early_stopped: bool = False
    elapsed_seconds: float = 0.0
    potentials: Optional[np.ndarray] = None
    assignments: Optional[np.ndarray] = None
    metadata: dict = field(default_factory=dict)

    @property
    def best_weight(self) -> float:
        """Best cut weight across the batch (0 for an empty batch)."""
        return self.best_cut.weight if self.best_cut is not None else 0.0

    @property
    def samples_per_second(self) -> float:
        """Aggregate read-out throughput of the batched run."""
        total = self.n_trials * self.n_rounds
        if self.elapsed_seconds <= 0.0:
            return float("inf") if total else 0.0
        return total / self.elapsed_seconds

    def circuit_result(self, trial: int) -> CircuitResult:
        """View one trial as a sequential-style :class:`CircuitResult`."""
        if not (0 <= trial < self.n_trials):
            raise ValidationError(
                f"trial must be in [0, {self.n_trials}), got {trial}"
            )
        weights = self.trajectories[trial]
        best_index = int(np.argmax(weights)) if weights.size else 0
        cut = Cut(
            assignment=self.trial_best_assignments[trial].astype(np.int8),
            weight=float(self.trial_best_weights[trial]),
            graph_name=self.graph_name,
        )
        return CircuitResult(
            graph_name=self.graph_name,
            best_cut=cut,
            trajectory=SampleTrajectory(weights=weights),
            n_samples=int(weights.shape[0]),
            n_steps=self.n_steps,
            metadata={"engine": True, "backend": self.backend_name,
                      "trial": trial, "best_round": best_index},
        )
