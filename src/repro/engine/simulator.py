"""Batched (trial-parallel) LIF membrane integration.

:class:`BatchLIFSimulator` advances *all trials at once*: the membrane state
is a ``(trials, neurons)`` matrix and every Euler step is a single vectorised
update ``V <- leak * V + gain * I_t`` on that matrix, with the synaptic
currents ``I`` produced by one weight-application matmul per trial (dense or
sparse backend).  Where the sequential :class:`repro.neurons.lif.LIFPopulation`
runs a Python loop of ``trials x steps`` iterations, the batched simulator
loops ``steps`` times over ``(trials, neurons)`` arrays — the source of the
engine's throughput win.

Every array operation is issued through the weight backend's
:class:`~repro.engine.xp.ArrayBackend` namespace, so the same integration
code runs on NumPy, torch, or cupy state tensors; the state lives wherever
the array backend puts it (host or device) for the whole integration.

Numerical contract: every per-element operation (leak, gain, threshold,
reset) is evaluated with the same scalar arithmetic as ``LIFPopulation``'s
``_integrate`` / ``run_subthreshold``, and on the NumPy array path each
namespace call *is* the module-level NumPy call the pre-seam simulator made,
with the dense backend evaluating the drive matmul with the identical
expression and operand shapes — so batched trajectories are bit-identical to
sequential trials under the same seeds.  Accelerator paths agree to
floating-point round-off (kernel summation order differs).

The fused currents entry point (``drive_currents(..., out=...)``) lets the
graph-axis batcher (:mod:`repro.engine.instances`) drive several instances'
weight products into row slices of one shared ``(trials, steps, neurons)``
buffer and integrate them in a single lock-step loop.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.engine.backends import WeightBackend
from repro.engine.xp import ArrayBackend, get_array_backend
from repro.neurons.lif import LIFParameters
from repro.obs.trace import span
from repro.utils.validation import ValidationError

__all__ = ["BatchLIFSimulator"]


class BatchLIFSimulator:
    """Integrates a block of independent LIF trials in lock-step.

    Parameters
    ----------
    backend:
        Weight-application backend turning centred device states into
        synaptic currents.  Its ``array`` attribute fixes the array
        namespace the integration runs in.
    params:
        Electrical parameters shared by all neurons and trials (the same
        :class:`LIFParameters` the sequential circuits use, including
        threshold/reset semantics).
    n_neurons:
        Number of neurons per trial.
    array_backend:
        Optional explicit array backend; defaults to the weight backend's
        (falling back to numpy).
    """

    def __init__(
        self,
        backend: WeightBackend,
        params: LIFParameters,
        n_neurons: int,
        array_backend: Optional[ArrayBackend] = None,
    ) -> None:
        if n_neurons < 1:
            raise ValidationError(f"n_neurons must be >= 1, got {n_neurons}")
        self._backend = backend
        self._params = params
        self._n_neurons = int(n_neurons)
        self._xp = (
            array_backend
            or getattr(backend, "array", None)
            or get_array_backend("numpy")
        )

    @property
    def xp(self) -> ArrayBackend:
        """The array backend the integration runs in."""
        return self._xp

    # ------------------------------------------------------------------
    def drive_currents(self, device_states, split_at: int = 0, out=None):
        """Synaptic currents ``(trials, steps, neurons)`` for a state block.

        Each trial's currents come from its own 2-D weight application — the
        same call shape the sequential circuits issue — so dense numpy
        results are bitwise reproducible.  ``split_at`` mirrors the
        sequential spike path, which computes burn-in head and recorded tail
        in *separate* products (:meth:`LIFPopulation.run`): pass ``burn_in``
        there to keep the spike read-out bit-identical; the
        membrane/subthreshold path uses one product over all steps
        (``split_at=0``), as ``run_subthreshold`` does.

        ``out``, when given, receives the currents in place — a
        ``(trials, steps, neurons)`` buffer in the simulator's array
        namespace.  The instance batcher passes row slices of a block-wide
        buffer here so several graphs' drives land in one tensor.
        """
        if device_states.ndim != 3:
            raise ValidationError(
                f"device_states must be (trials, steps, devices), got {device_states.shape}"
            )
        n_trials, n_steps, _ = device_states.shape
        offset = self._params.input_offset
        # One span over the whole block of weight-backend matmuls — the
        # per-trial drive calls are the hot inner loop and stay span-free.
        with span(
            "engine.drive", n_trials=n_trials, n_steps=n_steps,
            backend=getattr(self._backend, "name", "?"),
        ):
            currents = out
            if currents is None:
                currents = self._xp.empty(
                    (n_trials, n_steps, self._n_neurons), dtype="float64"
                )
            for b in range(n_trials):
                if 0 < split_at < n_steps:
                    self._backend.drive(
                        device_states[b, :split_at], offset, out=currents[b, :split_at]
                    )
                    self._backend.drive(
                        device_states[b, split_at:], offset, out=currents[b, split_at:]
                    )
                else:
                    self._backend.drive(device_states[b], offset, out=currents[b])
            return currents

    # ------------------------------------------------------------------
    def iter_membrane_readouts(
        self,
        currents,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, object]]:
        """Subthreshold integration yielding ``(round, potentials)`` per read-out.

        Spiking is disabled (no reset), matching
        :meth:`LIFPopulation.run_subthreshold`; the yielded ``(trials,
        neurons)`` rows are the membrane potentials at read-out steps
        ``burn_in + (r + 1) * interval - 1``.

        The ``currents`` buffer is scaled by ``dt / C`` in place on first
        iteration (one vectorised pass instead of one multiply per step);
        iterate a fresh buffer each time.
        """
        xp = self._xp
        leak = self._params.leak_factor
        xp.multiply(currents, self._params.dt / self._params.capacitance, out=currents)
        potentials = xp.zeros((currents.shape[0], self._n_neurons), dtype="float64")
        # In-place V <- leak*V; V <- V + I_t applies the identical elementwise
        # operations as `leak * V + I_t` without per-step temporaries.
        for t in range(burn_in):
            xp.multiply(potentials, leak, out=potentials)
            xp.add(potentials, currents[:, t], out=potentials)
        for r in range(n_rounds):
            base = burn_in + r * interval
            for k in range(interval):
                xp.multiply(potentials, leak, out=potentials)
                xp.add(potentials, currents[:, base + k], out=potentials)
            yield r, xp.copy(potentials)

    def iter_spike_readouts(
        self,
        currents,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, object]]:
        """Spiking integration yielding ``(round, fired)`` boolean masks.

        Threshold crossings reset the membrane to ``reset_potential`` exactly
        as :meth:`LIFPopulation.run` does (including during burn-in); the
        yielded mask is the spike raster row at each read-out step.
        """
        xp = self._xp
        params = self._params
        leak = params.leak_factor
        threshold, reset = params.threshold, params.reset_potential
        xp.multiply(currents, params.dt / params.capacitance, out=currents)
        potentials = xp.zeros((currents.shape[0], self._n_neurons), dtype="float64")
        for t in range(burn_in):
            xp.multiply(potentials, leak, out=potentials)
            xp.add(potentials, currents[:, t], out=potentials)
            fired = potentials >= threshold
            if fired.any():
                potentials[fired] = reset
        for r in range(n_rounds):
            base = burn_in + r * interval
            # interval >= 1 (validated in BatchPlan), so the loop always
            # assigns `fired` before the yield below.
            for k in range(interval):
                xp.multiply(potentials, leak, out=potentials)
                xp.add(potentials, currents[:, base + k], out=potentials)
                fired = potentials >= threshold
                if fired.any():
                    potentials[fired] = reset
            yield r, fired

    def iter_subthreshold_rounds(
        self,
        currents,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, object]]:
        """Subthreshold integration yielding every round's full row block.

        Yields ``(round, rows)`` with ``rows`` of shape ``(trials, interval,
        neurons)`` — the post-burn-in membrane trajectory segment the
        LIF-Trevisan plasticity rule consumes step by step.
        """
        xp = self._xp
        leak = self._params.leak_factor
        xp.multiply(currents, self._params.dt / self._params.capacitance, out=currents)
        n_trials = currents.shape[0]
        potentials = xp.zeros((n_trials, self._n_neurons), dtype="float64")
        for t in range(burn_in):
            xp.multiply(potentials, leak, out=potentials)
            xp.add(potentials, currents[:, t], out=potentials)
        for r in range(n_rounds):
            base = burn_in + r * interval
            rows = xp.empty((n_trials, interval, self._n_neurons), dtype="float64")
            for k in range(interval):
                xp.multiply(potentials, leak, out=potentials)
                xp.add(potentials, currents[:, base + k], out=potentials)
                rows[:, k] = potentials
            yield r, rows
