"""Batched (trial-parallel) LIF membrane integration.

:class:`BatchLIFSimulator` advances *all trials at once*: the membrane state
is a ``(trials, neurons)`` matrix and every Euler step is a single vectorised
update ``V <- leak * V + gain * I_t`` on that matrix, with the synaptic
currents ``I`` produced by one weight-application matmul per trial (dense or
sparse backend).  Where the sequential :class:`repro.neurons.lif.LIFPopulation`
runs a Python loop of ``trials x steps`` iterations, the batched simulator
loops ``steps`` times over ``(trials, neurons)`` arrays — the source of the
engine's throughput win.

Numerical contract: every per-element operation (leak, gain, threshold,
reset) is evaluated with the same scalar arithmetic as ``LIFPopulation``'s
``_integrate`` / ``run_subthreshold``, and the dense backend evaluates the
drive matmul with the identical expression and operand shapes, so the batched
trajectories are bit-identical to sequential trials under the same seeds.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.engine.backends import WeightBackend
from repro.neurons.lif import LIFParameters
from repro.utils.validation import ValidationError

__all__ = ["BatchLIFSimulator"]


class BatchLIFSimulator:
    """Integrates a block of independent LIF trials in lock-step.

    Parameters
    ----------
    backend:
        Weight-application backend turning centred device states into
        synaptic currents.
    params:
        Electrical parameters shared by all neurons and trials (the same
        :class:`LIFParameters` the sequential circuits use, including
        threshold/reset semantics).
    n_neurons:
        Number of neurons per trial.
    """

    def __init__(
        self, backend: WeightBackend, params: LIFParameters, n_neurons: int
    ) -> None:
        if n_neurons < 1:
            raise ValidationError(f"n_neurons must be >= 1, got {n_neurons}")
        self._backend = backend
        self._params = params
        self._n_neurons = int(n_neurons)

    # ------------------------------------------------------------------
    def drive_currents(self, device_states: np.ndarray, split_at: int = 0) -> np.ndarray:
        """Synaptic currents ``(trials, steps, neurons)`` for a state block.

        Each trial's currents come from its own 2-D weight application — the
        same call shape the sequential circuits issue — so dense results are
        bitwise reproducible.  ``split_at`` mirrors the sequential spike path,
        which computes burn-in head and recorded tail in *separate* products
        (:meth:`LIFPopulation.run`): pass ``burn_in`` there to keep the spike
        read-out bit-identical; the membrane/subthreshold path uses one
        product over all steps (``split_at=0``), as ``run_subthreshold`` does.
        """
        if device_states.ndim != 3:
            raise ValidationError(
                f"device_states must be (trials, steps, devices), got {device_states.shape}"
            )
        n_trials, n_steps, _ = device_states.shape
        offset = self._params.input_offset
        currents = np.empty((n_trials, n_steps, self._n_neurons), dtype=np.float64)
        for b in range(n_trials):
            if 0 < split_at < n_steps:
                self._backend.drive(
                    device_states[b, :split_at], offset, out=currents[b, :split_at]
                )
                self._backend.drive(
                    device_states[b, split_at:], offset, out=currents[b, split_at:]
                )
            else:
                self._backend.drive(device_states[b], offset, out=currents[b])
        return currents

    # ------------------------------------------------------------------
    def iter_membrane_readouts(
        self,
        currents: np.ndarray,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Subthreshold integration yielding ``(round, potentials)`` per read-out.

        Spiking is disabled (no reset), matching
        :meth:`LIFPopulation.run_subthreshold`; the yielded ``(trials,
        neurons)`` rows are the membrane potentials at read-out steps
        ``burn_in + (r + 1) * interval - 1``.

        The ``currents`` buffer is scaled by ``dt / C`` in place on first
        iteration (one vectorised pass instead of one multiply per step);
        iterate a fresh buffer each time.
        """
        leak = self._params.leak_factor
        np.multiply(currents, self._params.dt / self._params.capacitance, out=currents)
        potentials = np.zeros((currents.shape[0], self._n_neurons), dtype=np.float64)
        # In-place V <- leak*V; V <- V + I_t applies the identical elementwise
        # operations as `leak * V + I_t` without per-step temporaries.
        for t in range(burn_in):
            np.multiply(potentials, leak, out=potentials)
            np.add(potentials, currents[:, t], out=potentials)
        for r in range(n_rounds):
            base = burn_in + r * interval
            for k in range(interval):
                np.multiply(potentials, leak, out=potentials)
                np.add(potentials, currents[:, base + k], out=potentials)
            yield r, potentials.copy()

    def iter_spike_readouts(
        self,
        currents: np.ndarray,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Spiking integration yielding ``(round, fired)`` boolean masks.

        Threshold crossings reset the membrane to ``reset_potential`` exactly
        as :meth:`LIFPopulation.run` does (including during burn-in); the
        yielded mask is the spike raster row at each read-out step.
        """
        params = self._params
        leak = params.leak_factor
        threshold, reset = params.threshold, params.reset_potential
        np.multiply(currents, params.dt / params.capacitance, out=currents)
        potentials = np.zeros((currents.shape[0], self._n_neurons), dtype=np.float64)
        for t in range(burn_in):
            np.multiply(potentials, leak, out=potentials)
            np.add(potentials, currents[:, t], out=potentials)
            fired = potentials >= threshold
            if fired.any():
                potentials[fired] = reset
        for r in range(n_rounds):
            base = burn_in + r * interval
            # interval >= 1 (validated in BatchPlan), so the loop always
            # assigns `fired` before the yield below.
            for k in range(interval):
                np.multiply(potentials, leak, out=potentials)
                np.add(potentials, currents[:, base + k], out=potentials)
                fired = potentials >= threshold
                if fired.any():
                    potentials[fired] = reset
            yield r, fired

    def iter_subthreshold_rounds(
        self,
        currents: np.ndarray,
        burn_in: int,
        interval: int,
        n_rounds: int,
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Subthreshold integration yielding every round's full row block.

        Yields ``(round, rows)`` with ``rows`` of shape ``(trials, interval,
        neurons)`` — the post-burn-in membrane trajectory segment the
        LIF-Trevisan plasticity rule consumes step by step.
        """
        leak = self._params.leak_factor
        np.multiply(currents, self._params.dt / self._params.capacitance, out=currents)
        n_trials = currents.shape[0]
        potentials = np.zeros((n_trials, self._n_neurons), dtype=np.float64)
        for t in range(burn_in):
            np.multiply(potentials, leak, out=potentials)
            np.add(potentials, currents[:, t], out=potentials)
        for r in range(n_rounds):
            base = burn_in + r * interval
            rows = np.empty((n_trials, interval, self._n_neurons), dtype=np.float64)
            for k in range(interval):
                np.multiply(potentials, leak, out=potentials)
                np.add(potentials, currents[:, base + k], out=potentials)
                rows[:, k] = potentials
            yield r, rows
