"""Graph-axis batching: many same-shape instances in one kernel invocation.

The trial-parallel engine already fuses a request's trials into one
``(trials, steps, neurons)`` current tensor and one lock-step integration.
But a workload rarely solves *one* graph: arena suites race a circuit over a
family of same-size instances, the problem compiler emits batches of
same-shape reductions, and the solve service queues many small requests at
once.  Each instance paid the per-step Python dispatch of its own
integration loop.

:class:`InstanceBlock` stacks same-shape instances × trials along the trial
axis: every instance's weight product is driven into its row slice of one
shared current tensor (``BatchLIFSimulator.drive_currents(..., out=rows)``),
and a *single* integration loop advances all instances' membranes together.
Because every engine operation is trial-row-independent — elementwise
integration, per-trial drives, per-row read-outs — each instance's rows are
bitwise identical to what its standalone :func:`repro.engine.engine.solve`
would produce (the same composition property the serve coalescer exploits
along the trials axis; this module extends it along the graph axis).

Fusion requirements (checked by :meth:`InstanceBlock.build`): identical
execution shape (``n_neurons``, ``n_devices``, ``burn_in``, ``interval``,
read-out mode, LIF parameters, ``n_samples``), the same resolved array
backend and weight-backend name, a ``membrane`` or ``spike`` read-out
(plasticity learners are stateful host objects with per-trial RNG — fusing
them buys nothing), and no ``early_stop``/``deadline_seconds`` (a stop
driven by the fused distribution would couple instances to their
block-mates).  :func:`solve_instance_block` is the lenient front door: it
fuses when it can and transparently falls back to per-request
:func:`~repro.engine.engine.solve` calls when it cannot, so callers (the
workload executor, the serve batch loop, the bench harness) need no
pre-checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cuts.cut import BatchCutEvaluator, Cut
from repro.engine.backends import WeightBackend
from repro.engine.coalesce import request_trial_seeds
from repro.engine.engine import BatchedSolverEngine
from repro.engine.request import SolveRequest, SolveResult
from repro.engine.sampler import BatchDeviceSampler
from repro.engine.simulator import BatchLIFSimulator
from repro.neurons.encoding import (
    membrane_sign_assignments_xp,
    spikes_to_assignments_xp,
)
from repro.obs.trace import span
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["InstanceBlock", "solve_instance_block", "fusion_compatible"]

_logger = get_logger("engine.instances")

#: Read-out modes the fused integration supports.
_FUSABLE_READOUTS = ("membrane", "spike")


@dataclass
class _PreparedInstance:
    """One request, resolved down to the artefacts the fused run needs."""

    request: SolveRequest
    circuit: object
    plan: object
    backend: WeightBackend
    lo: int = 0
    hi: int = 0


def _prepare(requests: Sequence[SolveRequest]) -> List[_PreparedInstance]:
    engine = BatchedSolverEngine()
    prepared = []
    for request in requests:
        circuit = engine._resolve_circuit(request)
        plan = circuit.engine_plan()
        backend = WeightBackend.for_graph(
            circuit.graph, plan.weights, policy=request.backend,
            sparse_weights=plan.sparse_weights,
        )
        prepared.append(_PreparedInstance(request, circuit, plan, backend))
    return prepared


def _compatibility_error(prepared: List[_PreparedInstance]) -> Optional[str]:
    """Reason the prepared instances cannot fuse, or None when they can."""
    if len(prepared) < 1:
        return "no requests"
    first = prepared[0]
    shape0 = _shape(first)
    for index, inst in enumerate(prepared):
        request, plan = inst.request, inst.plan
        if request.n_trials < 1:
            return f"request {index}: n_trials must be >= 1"
        if request.early_stop is not None:
            return (
                f"request {index}: early_stop is set — a stop over the fused "
                f"block would couple instances to their block-mates"
            )
        if request.deadline_seconds is not None:
            return (
                f"request {index}: deadline_seconds is set — a deadline "
                f"truncating the fused block would couple instances"
            )
        if plan.readout not in _FUSABLE_READOUTS:
            return (
                f"request {index}: readout {plan.readout!r} is not fusable "
                f"(supported: {_FUSABLE_READOUTS})"
            )
        if inst.backend.array.name != first.backend.array.name:
            return (
                f"request {index}: array backend {inst.backend.array.name!r} "
                f"!= {first.backend.array.name!r}"
            )
        shape = _shape(inst)
        if shape != shape0:
            return f"request {index}: execution shape {shape} != {shape0}"
        if plan.lif != first.plan.lif:
            return f"request {index}: LIF parameters differ"
    return None


def _shape(inst: _PreparedInstance) -> Tuple:
    plan = inst.plan
    return (
        plan.n_neurons,
        plan.n_devices,
        plan.burn_in,
        plan.interval,
        plan.readout,
        inst.request.n_samples,
        inst.backend.name,
    )


def fusion_compatible(requests: Sequence[SolveRequest]) -> Tuple[bool, str]:
    """``(ok, reason)`` — may *requests* run as one :class:`InstanceBlock`?

    Builds circuits (cached instances pass through unbuilt), so prefer
    passing requests that already carry circuit instances.
    """
    try:
        reason = _compatibility_error(_prepare(requests))
    except ValidationError as exc:
        return False, str(exc)
    return (reason is None), (reason or "compatible")


class InstanceBlock:
    """A validated stack of same-shape solve requests, run as one kernel batch.

    Build with :meth:`build` (raises :class:`ValidationError` when the
    requests cannot fuse), execute with :meth:`solve`, which returns one
    :class:`~repro.engine.request.SolveResult` per input request — each
    bitwise identical (numpy array path) to its standalone engine solve.
    """

    def __init__(self, prepared: List[_PreparedInstance]) -> None:
        self._prepared = prepared
        lo = 0
        for inst in prepared:
            inst.lo = lo
            lo += inst.request.n_trials
            inst.hi = lo
        self._total_trials = lo

    @classmethod
    def build(cls, requests: Sequence[SolveRequest]) -> "InstanceBlock":
        prepared = _prepare(requests)
        reason = _compatibility_error(prepared)
        if reason is not None:
            raise ValidationError(f"cannot fuse instance block: {reason}")
        block = cls(prepared)
        # Memory guard: the fused current tensor must respect the tightest
        # constituent block cap (the engine's per-request blocking does not
        # apply inside a fused run).
        plan0 = prepared[0].plan
        n_steps = plan0.burn_in + prepared[0].request.n_samples * plan0.interval
        fused_bytes = block._total_trials * n_steps * plan0.n_neurons * 8
        cap = min(inst.request.max_block_bytes for inst in prepared)
        if fused_bytes > cap:
            raise ValidationError(
                f"cannot fuse instance block: fused current tensor needs "
                f"{fused_bytes} bytes, over the {cap}-byte block cap"
            )
        return block

    @property
    def n_instances(self) -> int:
        return len(self._prepared)

    @property
    def n_trials(self) -> int:
        return self._total_trials

    # ------------------------------------------------------------------
    def solve(self) -> List[SolveResult]:
        """Run the fused batch and split results back per request."""
        with span(
            "engine.fuse.block",
            n_instances=self.n_instances, fused_trials=self._total_trials,
        ):
            return self._solve()

    def _solve(self) -> List[SolveResult]:
        start = time.perf_counter()
        prepared = self._prepared
        first = prepared[0]
        plan0, request0 = first.plan, first.request
        xp = first.backend.array
        n_neurons = plan0.n_neurons
        n_samples = request0.n_samples
        n_steps = plan0.burn_in + n_samples * plan0.interval
        split = plan0.burn_in if plan0.readout == "spike" else 0

        # Phase 1 — drive: every instance's weight product lands in its row
        # slice of one block-wide current tensor.  Sampling stays on host
        # NumPy per trial (the RNG bridge), so each trial consumes exactly
        # the random numbers of its standalone run.
        currents = xp.empty((self._total_trials, n_steps, n_neurons), dtype="float64")
        with span("engine.fuse.drive", n_instances=self.n_instances):
            for inst in prepared:
                seeds = request_trial_seeds(inst.request)
                sampler = BatchDeviceSampler(
                    inst.circuit.build_device_pool, seeds,
                    n_devices=inst.plan.n_devices,
                )
                states = sampler.sample_block(range(inst.request.n_trials), n_steps)
                simulator = BatchLIFSimulator(inst.backend, inst.plan.lif, n_neurons)
                simulator.drive_currents(
                    xp.asarray(states), split_at=split, out=currents[inst.lo:inst.hi]
                )

        # Phase 2 — one lock-step integration over every instance's rows.
        integrator = BatchLIFSimulator(first.backend, plan0.lif, n_neurons)
        if plan0.readout == "membrane":
            rounds = integrator.iter_membrane_readouts(
                currents, plan0.burn_in, plan0.interval, n_samples
            )
        else:
            rounds = integrator.iter_spike_readouts(
                currents, plan0.burn_in, plan0.interval, n_samples
            )

        evaluators = [
            BatchCutEvaluator(inst.circuit.graph, array_backend=xp)
            for inst in prepared
        ]
        trajectories = np.zeros((self._total_trials, n_samples))
        best_weights = np.full(self._total_trials, -np.inf)
        best_assignments = np.zeros(
            (self._total_trials, n_neurons), dtype=np.int8
        )
        potential_rows = [
            np.zeros((inst.request.n_trials, n_samples, n_neurons))
            if inst.request.record_potentials and plan0.readout != "spike"
            else None
            for inst in prepared
        ]
        assignment_rows = [
            np.zeros((inst.request.n_trials, n_samples, n_neurons), dtype=np.int8)
            if inst.request.record_assignments
            else None
            for inst in prepared
        ]

        with span(
            "engine.fuse.integrate",
            n_instances=self.n_instances, rounds=n_samples,
        ):
            for r, payload in rounds:
                if plan0.readout == "membrane":
                    assignments = membrane_sign_assignments_xp(xp, payload)
                else:
                    assignments = spikes_to_assignments_xp(xp, payload)
                for i, inst in enumerate(prepared):
                    lo, hi = inst.lo, inst.hi
                    rows = assignments[lo:hi]
                    weights = xp.to_numpy(evaluators[i].weights(rows))
                    rows_host = xp.to_numpy(rows)
                    trajectories[lo:hi, r] = weights
                    improved = weights > best_weights[lo:hi]
                    if improved.any():
                        best_weights[lo:hi][improved] = weights[improved]
                        best_assignments[lo:hi][improved] = rows_host[improved]
                    if potential_rows[i] is not None:
                        potential_rows[i][:, r] = xp.to_numpy(payload[lo:hi])
                    if assignment_rows[i] is not None:
                        assignment_rows[i][:, r] = rows_host

        elapsed = time.perf_counter() - start
        _logger.debug(
            "instance block: %d instances x %d trials fused, %d rounds in %.3fs",
            self.n_instances, self._total_trials, n_samples, elapsed,
        )
        results = []
        for i, inst in enumerate(prepared):
            lo, hi = inst.lo, inst.hi
            weights = best_weights[lo:hi]
            best_trial = int(np.argmax(weights))
            graph = inst.circuit.graph
            best_cut = Cut(
                assignment=best_assignments[lo:hi][best_trial].copy(),
                weight=float(weights[best_trial]),
                graph_name=graph.name,
            )
            results.append(SolveResult(
                graph_name=graph.name,
                circuit_name=inst.circuit.name,
                backend_name=inst.backend.name,
                n_trials=inst.request.n_trials,
                n_samples=n_samples,
                n_rounds=n_samples,
                n_steps=n_steps,
                best_cut=best_cut,
                trial_best_weights=weights,
                trial_best_assignments=best_assignments[lo:hi],
                trajectories=trajectories[lo:hi],
                early_stopped=False,
                elapsed_seconds=elapsed,
                potentials=potential_rows[i],
                assignments=assignment_rows[i],
                metadata={
                    "n_blocks": 1,
                    "n_devices": inst.plan.n_devices,
                    "readout": inst.plan.readout,
                    "array_backend": xp.name,
                    "array_device": xp.device_label(),
                    "early_stop_round": None,
                    "deadline_exceeded": False,
                    **inst.plan.metadata,
                    "instance_block": {
                        "size": self.n_instances,
                        "index": i,
                        "fused_trials": int(self._total_trials),
                    },
                },
            ))
        return results


def solve_instance_block(
    requests: Sequence[SolveRequest],
) -> List[SolveResult]:
    """Solve *requests*, fusing them into one kernel batch when possible.

    The lenient front door: a single request, or any block that fails the
    fusion requirements, falls back to per-request
    :func:`repro.engine.engine.solve` calls (logging the reason at debug
    level).  Results are always positionally aligned with *requests*; fused
    results carry an ``instance_block`` metadata entry.
    """
    requests = list(requests)
    if not requests:
        return []
    engine = BatchedSolverEngine()
    if len(requests) == 1:
        return [engine.solve(requests[0])]
    try:
        block = InstanceBlock.build(requests)
    except ValidationError as exc:
        _logger.debug("instance block fallback: %s", exc)
        return [engine.solve(request) for request in requests]
    return block.solve()
