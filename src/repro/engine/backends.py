"""Weight-application backends for the batched solver engine.

The inner loop of every circuit is "apply the device-to-neuron weight matrix
to a block of centred device states".  For the LIF-GW circuit the weight
matrix is a skinny ``(n, rank)`` dense array; for LIF-Trevisan it is the
``(n, n)`` Trevisan matrix, which for the large low-density instances in
:mod:`repro.graphs.repository` is mostly zeros.  The engine therefore routes
the product through a small registry of backends:

* ``dense`` — namespace matmul through an :class:`~repro.engine.xp.ArrayBackend`
  (NumPy by default, torch/cupy opt-in).  On the NumPy array path the product
  is evaluated with exactly the same expression as
  :meth:`repro.neurons.lif.LIFPopulation._drive_current`, so the fast path
  stays bit-identical to the sequential circuits.
* ``sparse`` — :mod:`scipy.sparse` CSR product, built from the graph's cached
  CSR adjacency (:meth:`repro.graphs.graph.Graph.to_csr`) when the circuit
  provides a sparse weight builder.  Results agree with ``dense`` to
  floating-point round-off (summation order differs).  Host-only: scipy has
  no tensor namespace, so ``sparse`` pairs only with the ``numpy`` array
  backend.

Selection API
-------------
:meth:`WeightBackend.for_graph` is the one constructor-selector: it resolves
a backend spec/policy through :func:`repro.engine.xp.resolve_backend` and
builds the weight backend for a graph.  An explicit weight name in the spec
(``"sparse"``, ``"torch:dense"``, an ``ExecutionPolicy`` whose ``backend``
says so) is **always honoured**; only ``"auto"`` consults the density
heuristic — ``sparse`` when the weights are square, the graph is large
(>= ``SPARSE_MIN_VERTICES``) and its edge density is below
``SPARSE_DENSITY_THRESHOLD``, ``dense`` otherwise.  New backends (GPU,
blocked, ...) can be registered with :func:`register_backend`.

The former free functions :func:`select_backend` and :func:`get_backend`
remain as thin shims that warn once (``DeprecationWarning``) and delegate,
with outputs pinned equal to the old behaviour.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.engine.xp import (
    AUTO,
    ArrayBackend,
    get_array_backend,
    resolve_backend,
)
from repro.utils.validation import ValidationError

__all__ = [
    "WeightBackend",
    "DenseBackend",
    "SparseBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "select_backend",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_MIN_VERTICES",
]

#: Graphs at least this dense always use the dense backend under ``"auto"``.
SPARSE_DENSITY_THRESHOLD: float = 0.05

#: Graphs smaller than this always use the dense backend under ``"auto"``.
SPARSE_MIN_VERTICES: int = 128


def _policy_to_spec(policy):
    """Extract the backend spec from a policy-like object.

    Accepts the spec forms :func:`repro.engine.xp.resolve_backend` takes
    directly (``None`` / str / ``BackendSpec`` / ``ResolvedBackend`` /
    ``ArrayBackend``) plus any object carrying a ``backend`` attribute —
    notably :class:`repro.workloads.spec.ExecutionPolicy` — so an explicit
    ``--backend`` override travels with the policy instead of being lost.
    """
    if isinstance(policy, (str, bytes)) or policy is None:
        return policy
    backend = getattr(policy, "backend", None)
    if isinstance(backend, str):
        return backend
    return policy


class WeightBackend:
    """Interface: turn centred device-state blocks into synaptic currents."""

    name: str = "backend"

    #: The array backend whose namespace :meth:`drive` computes in.  Set by
    #: the concrete constructors (or by :meth:`for_graph` for third-party
    #: backends that predate the seam); ``None`` means "host numpy".
    array: Optional[ArrayBackend] = None

    def drive(
        self,
        device_block,
        input_offset: float,
        out=None,
    ):
        """Currents ``(s - offset) W^T`` for a ``(steps, devices)`` block.

        Blocks and results are arrays of the backend's array namespace
        (:attr:`array`).  ``out``, when given, receives the product in place
        (a C-contiguous ``(steps, neurons)`` buffer), avoiding an
        intermediate allocation.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    @classmethod
    def for_graph(
        cls,
        graph,
        weights: np.ndarray,
        policy="auto",
        sparse_weights=None,
    ) -> "WeightBackend":
        """Resolve *policy* and construct the weight backend for *graph*.

        Parameters
        ----------
        graph:
            The graph being solved; supplies the density signal for the
            ``"auto"`` weight route (may be ``None``, which routes dense).
        weights:
            Dense device-to-neuron weight matrix.
        policy:
            A backend spec (``"auto"``, ``"sparse"``, ``"torch:dense"``, a
            :class:`~repro.engine.xp.BackendSpec`/``ResolvedBackend``), or a
            policy object with a ``backend`` attribute
            (:class:`~repro.workloads.spec.ExecutionPolicy`).  Explicit
            weight names always win over the density heuristic.
        sparse_weights:
            Optional sparse weight matrix (or zero-argument builder) supplied
            by the circuit; required for ``"auto"`` to ever pick ``sparse``.

        The constructed backend carries the resolved
        :class:`~repro.engine.xp.ArrayBackend` on its ``array`` attribute, so
        callers get both seams from one call.
        """
        resolved = resolve_backend(_policy_to_spec(policy))
        weights = np.asarray(weights)
        name = resolved.weight
        if name == AUTO:
            n_rows, n_cols = weights.shape
            use_sparse = (
                resolved.array.name == "numpy"
                and sparse_weights is not None
                and n_rows == n_cols
                and graph is not None
                and graph.n_vertices >= SPARSE_MIN_VERTICES
                and graph.density() < SPARSE_DENSITY_THRESHOLD
            )
            name = "sparse" if use_sparse else "dense"
        factory = _get_factory(name)
        backend = _construct(factory, weights, sparse_weights, resolved.array)
        if backend.array is None:
            backend.array = resolved.array
        return backend


class DenseBackend(WeightBackend):
    """Namespace matmul backend — bit-identical to the sequential LIF drive
    on the NumPy array path."""

    name = "dense"

    def __init__(
        self,
        weights: np.ndarray,
        sparse_weights=None,
        array_backend: Optional[ArrayBackend] = None,
    ) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
        self.array = array_backend or get_array_backend("numpy")
        # On numpy this is the transpose *view* of the float64 weights — the
        # identical operand LIFPopulation._drive_current's `@ weights.T`
        # sees; accelerator backends get a device copy.
        self._weights_t = self.array.asarray(weights.T)

    def drive(self, device_block, input_offset: float, out=None):
        # Same expression (dtype, order, transpose-view) as
        # LIFPopulation._drive_current, which is what makes the engine's dense
        # numpy path bitwise-reproducible against the sequential circuits.
        xp = self.array
        centred = xp.astype(device_block, "float64") - input_offset
        return xp.matmul(centred, self._weights_t, out=out)


class SparseBackend(WeightBackend):
    """scipy.sparse CSR backend for large, low-density weight matrices.

    Host-only: the CSR product runs in scipy, so this backend pairs only
    with the ``numpy`` array backend (``"torch:sparse"`` is rejected).
    """

    name = "sparse"

    def __init__(
        self,
        weights: np.ndarray,
        sparse_weights=None,
        array_backend: Optional[ArrayBackend] = None,
    ) -> None:
        if array_backend is not None and array_backend.name != "numpy":
            raise ValidationError(
                f"the sparse weight backend is host-only (scipy CSR) and "
                f"cannot pair with array backend {array_backend.name!r}; "
                f"use '<array>:dense' or the numpy array backend"
            )
        self.array = array_backend or get_array_backend("numpy")
        if sparse_weights is not None:
            matrix = sparse_weights() if callable(sparse_weights) else sparse_weights
            self._csr = sp.csr_matrix(matrix)
        else:
            self._csr = sp.csr_matrix(np.asarray(weights, dtype=np.float64))
        if self._csr.ndim != 2:
            raise ValidationError("sparse weights must be 2-D")

    def drive(self, device_block, input_offset: float, out=None):
        centred = device_block.astype(np.float64) - input_offset
        # (W @ centred^T)^T == centred @ W^T, computed sparse-side.
        result = self._csr.dot(centred.T).T
        if out is None:
            return np.ascontiguousarray(result)
        np.copyto(out, result)
        return out


#: Registered backend factories: name -> (weights, sparse_weights) -> backend.
_REGISTRY: Dict[str, Callable[..., WeightBackend]] = {}


def register_backend(name: str, factory: Callable[..., WeightBackend]) -> None:
    """Register a backend factory ``(weights, sparse_weights=None) -> WeightBackend``.

    Factories that additionally accept an ``array_backend`` keyword are
    handed the resolved :class:`~repro.engine.xp.ArrayBackend`; older
    two-argument factories keep working (their backends run host-side).
    """
    if not name or name == AUTO:
        raise ValidationError(f"invalid backend name {name!r}")
    _REGISTRY[name] = factory


def _get_factory(name: str) -> Callable[..., WeightBackend]:
    """Registry lookup without the deprecation warning (internal use)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown backend {name!r}; registered: {list_backends()}"
        ) from None


def _construct(
    factory: Callable[..., WeightBackend],
    weights: np.ndarray,
    sparse_weights,
    array_backend: ArrayBackend,
) -> WeightBackend:
    """Call a factory, passing ``array_backend`` only if it accepts it."""
    try:
        params = inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/extensions
        params = {}
    takes_array = "array_backend" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    if takes_array:
        return factory(
            weights, sparse_weights=sparse_weights, array_backend=array_backend
        )
    return factory(weights, sparse_weights=sparse_weights)


def list_backends() -> list[str]:
    """Names of all registered weight backends."""
    return sorted(_REGISTRY)


def probe_weight_backends() -> list[dict]:
    """JSON-safe availability report for registered weight backends.

    Weight backends are pure-python factories over numpy/scipy, so they are
    always available; the report mirrors
    :func:`repro.engine.xp.probe_array_backends` for the ``repro backends``
    listing.
    """
    reports = []
    for name in list_backends():
        reason = "numpy/scipy weight backend"
        if name == "sparse":
            reason = "scipy CSR weight backend (numpy array path only)"
        elif name == "dense":
            reason = "namespace matmul (any array backend)"
        reports.append(
            {"name": name, "available": True, "reason": reason, "device": "cpu"}
        )
    return reports


register_backend("dense", DenseBackend)
register_backend("sparse", SparseBackend)


# ---------------------------------------------------------------------------
# Deprecated entry points (thin warn-once shims)
# ---------------------------------------------------------------------------

_DEPRECATION_WARNED: set = set()


def _warn_once(old: str, new: str) -> None:
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def get_backend(name: str) -> Callable[..., WeightBackend]:
    """Deprecated: look up a registered backend factory by name.

    Use :func:`repro.engine.xp.resolve_backend` +
    :meth:`WeightBackend.for_graph` instead.  This shim warns once per
    process and delegates; lookups and errors are unchanged.
    """
    _warn_once(
        "repro.engine.backends.get_backend",
        "repro.engine.xp.resolve_backend / WeightBackend.for_graph",
    )
    return _get_factory(name)


def select_backend(
    name: str,
    weights: np.ndarray,
    graph=None,
    sparse_weights=None,
) -> WeightBackend:
    """Deprecated: resolve *name* (possibly ``"auto"``) into a backend.

    Use :meth:`WeightBackend.for_graph` instead.  This shim warns once per
    process and delegates; constructed backends are pinned equal to the old
    behaviour (same routing heuristic, same factories).
    """
    _warn_once(
        "repro.engine.backends.select_backend",
        "WeightBackend.for_graph",
    )
    return WeightBackend.for_graph(
        graph, weights, policy=name, sparse_weights=sparse_weights
    )
