"""Weight-application backends for the batched solver engine.

The inner loop of every circuit is "apply the device-to-neuron weight matrix
to a block of centred device states".  For the LIF-GW circuit the weight
matrix is a skinny ``(n, rank)`` dense array; for LIF-Trevisan it is the
``(n, n)`` Trevisan matrix, which for the large low-density instances in
:mod:`repro.graphs.repository` is mostly zeros.  The engine therefore routes
the product through a small registry of backends:

* ``dense`` — plain NumPy matmul, evaluated with exactly the same expression
  as :meth:`repro.neurons.lif.LIFPopulation._drive_current`, so the fast path
  stays bit-identical to the sequential circuits.
* ``sparse`` — :mod:`scipy.sparse` CSR product, built from the graph's cached
  CSR adjacency (:meth:`repro.graphs.graph.Graph.to_csr`) when the circuit
  provides a sparse weight builder.  Results agree with ``dense`` to
  floating-point round-off (summation order differs).

``select_backend("auto", ...)`` picks ``sparse`` only when the weights are
square, the graph is large (>= ``SPARSE_MIN_VERTICES``) and its edge density
is below ``SPARSE_DENSITY_THRESHOLD``; everything else runs dense.  New
backends (GPU, blocked, ...) can be registered with :func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import ValidationError

__all__ = [
    "WeightBackend",
    "DenseBackend",
    "SparseBackend",
    "register_backend",
    "get_backend",
    "list_backends",
    "select_backend",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_MIN_VERTICES",
]

#: Graphs at least this dense always use the dense backend under ``"auto"``.
SPARSE_DENSITY_THRESHOLD: float = 0.05

#: Graphs smaller than this always use the dense backend under ``"auto"``.
SPARSE_MIN_VERTICES: int = 128


class WeightBackend:
    """Interface: turn centred device-state blocks into synaptic currents."""

    name: str = "backend"

    def drive(
        self,
        device_block: np.ndarray,
        input_offset: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Currents ``(s - offset) W^T`` for a ``(steps, devices)`` block.

        ``out``, when given, receives the product in place (a C-contiguous
        ``(steps, neurons)`` buffer), avoiding an intermediate allocation.
        """
        raise NotImplementedError


class DenseBackend(WeightBackend):
    """NumPy matmul backend — bit-identical to the sequential LIF drive."""

    name = "dense"

    def __init__(self, weights: np.ndarray, sparse_weights=None) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
        self._weights = weights

    def drive(
        self,
        device_block: np.ndarray,
        input_offset: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # Same expression (dtype, order, transpose-view) as
        # LIFPopulation._drive_current, which is what makes the engine's dense
        # path bitwise-reproducible against the sequential circuits.
        centred = device_block.astype(np.float64) - input_offset
        if out is None:
            return centred @ self._weights.T
        return np.matmul(centred, self._weights.T, out=out)


class SparseBackend(WeightBackend):
    """scipy.sparse CSR backend for large, low-density weight matrices."""

    name = "sparse"

    def __init__(self, weights: np.ndarray, sparse_weights=None) -> None:
        if sparse_weights is not None:
            matrix = sparse_weights() if callable(sparse_weights) else sparse_weights
            self._csr = sp.csr_matrix(matrix)
        else:
            self._csr = sp.csr_matrix(np.asarray(weights, dtype=np.float64))
        if self._csr.ndim != 2:
            raise ValidationError("sparse weights must be 2-D")

    def drive(
        self,
        device_block: np.ndarray,
        input_offset: float,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        centred = device_block.astype(np.float64) - input_offset
        # (W @ centred^T)^T == centred @ W^T, computed sparse-side.
        result = self._csr.dot(centred.T).T
        if out is None:
            return np.ascontiguousarray(result)
        np.copyto(out, result)
        return out


#: Registered backend factories: name -> (weights, sparse_weights) -> backend.
_REGISTRY: Dict[str, Callable[..., WeightBackend]] = {}


def register_backend(name: str, factory: Callable[..., WeightBackend]) -> None:
    """Register a backend factory ``(weights, sparse_weights=None) -> WeightBackend``."""
    if not name or name == "auto":
        raise ValidationError(f"invalid backend name {name!r}")
    _REGISTRY[name] = factory


def get_backend(name: str) -> Callable[..., WeightBackend]:
    """Look up a registered backend factory by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown backend {name!r}; registered: {list_backends()}"
        ) from None


def list_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


register_backend("dense", DenseBackend)
register_backend("sparse", SparseBackend)


def select_backend(
    name: str,
    weights: np.ndarray,
    graph=None,
    sparse_weights=None,
) -> WeightBackend:
    """Resolve *name* (possibly ``"auto"``) into a constructed backend.

    Parameters
    ----------
    name:
        ``"auto"`` or a registered backend name.
    weights:
        Dense device-to-neuron weight matrix.
    graph:
        The graph being solved; supplies the density signal for ``"auto"``.
    sparse_weights:
        Optional sparse weight matrix (or zero-argument builder) supplied by
        the circuit; required for ``"auto"`` to ever pick ``sparse``.
    """
    weights = np.asarray(weights)
    if name == "auto":
        n_rows, n_cols = weights.shape
        use_sparse = (
            sparse_weights is not None
            and n_rows == n_cols
            and graph is not None
            and graph.n_vertices >= SPARSE_MIN_VERTICES
            and graph.density() < SPARSE_DENSITY_THRESHOLD
        )
        name = "sparse" if use_sparse else "dense"
    factory = get_backend(name)
    return factory(weights, sparse_weights=sparse_weights)
