"""Batch split/merge seams: coalesce many solve requests into one.

The engine simulates a ``(trials, neurons)`` state matrix in lock-step, and
every trial is computationally independent — its devices are drawn from its
own ``SeedSequence``, its membrane row integrates separately, its cut
read-outs are evaluated per row.  Batch *composition* therefore cannot change
any trial's results (the property the engine's block splitting already relies
on).  This module turns that property into an API:

:func:`coalesce_requests`
    Merge N requests that share an execution shape (same circuit instance,
    sample count, backend, ...) into one :class:`~repro.engine.request.SolveRequest`
    whose trials are the concatenation of every constituent's trials, each
    carrying its *own* per-trial seeds (the ``trial_seeds`` merge seam).
:func:`split_result`
    Slice the merged :class:`~repro.engine.request.SolveResult` back into one
    result per constituent request, bit-identical to what each request would
    have produced standalone.

This is the core move of the solve service (:mod:`repro.serve`): N concurrent
users' requests for the same circuit shape cost one engine invocation, little
more than one user's.

Early stopping is refused on coalesced requests: a plateau stop driven by the
merged cut distribution would couple requests to their batch-mates, breaking
the bit-identity contract.  Wall-clock deadlines remain allowed (the merged
deadline is the tightest constituent's) — a deadline is an explicit
truncation instruction, and it truncates every trial at the same round.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.circuits.base import NeuromorphicCircuit
from repro.cuts.cut import Cut
from repro.engine.request import SolveRequest, SolveResult
from repro.engine.sampler import trial_seed_sequences
from repro.utils.validation import ValidationError

__all__ = ["coalesce_requests", "split_result", "request_trial_seeds"]


def request_trial_seeds(request: SolveRequest) -> List[np.random.SeedSequence]:
    """The exact per-trial seeds *request* will run with.

    Explicit ``trial_seeds`` verbatim, else the root-seed derivation
    (``SeedSequence(seed, spawn_key=(trial_offset + i,))``).
    """
    if request.trial_seeds is not None:
        return list(request.trial_seeds)
    return trial_seed_sequences(
        request.seed, request.n_trials, start=request.trial_offset
    )


def _shape_error(index: int, what: str, ours, theirs) -> ValidationError:
    return ValidationError(
        f"cannot coalesce request {index}: {what} differs "
        f"({theirs!r} != {ours!r}); coalescing requires an identical "
        f"execution shape"
    )


def coalesce_requests(
    requests: Sequence[SolveRequest],
) -> Tuple[SolveRequest, List[Tuple[int, int]]]:
    """Merge same-shape *requests* into one batch request.

    Returns ``(merged, slices)`` where ``slices[i] = (lo, hi)`` are the
    trial rows of request *i* inside the merged batch —
    :func:`split_result`'s input.  Requirements:

    * at least one request, all with ``n_trials >= 1``;
    * the *same circuit instance* (coalescing across graph builds would
      re-run setup per request, defeating the point — resolve/cache the
      circuit first, as the solve service does);
    * equal ``n_samples``, ``backend``, record flags;
    * no ``early_stop`` on any constituent (see the module docstring).

    The merged request carries every constituent's own per-trial seeds, the
    tightest constituent deadline, and the smallest ``max_block_bytes``.
    """
    if not requests:
        raise ValidationError("coalesce_requests needs at least one request")
    first = requests[0]
    if not isinstance(first.circuit, NeuromorphicCircuit):
        raise ValidationError(
            "coalesced requests must carry an already-built circuit instance "
            "(build or cache the circuit first, then coalesce)"
        )
    seeds: List[np.random.SeedSequence] = []
    slices: List[Tuple[int, int]] = []
    deadline = None
    max_block_bytes = first.max_block_bytes
    for index, request in enumerate(requests):
        if request.circuit is not first.circuit:
            raise _shape_error(
                index, "circuit instance", first.circuit, request.circuit
            )
        if request.n_samples != first.n_samples:
            raise _shape_error(
                index, "n_samples", first.n_samples, request.n_samples
            )
        if request.backend != first.backend:
            raise _shape_error(index, "backend", first.backend, request.backend)
        if request.record_potentials != first.record_potentials:
            raise _shape_error(
                index, "record_potentials",
                first.record_potentials, request.record_potentials,
            )
        if request.record_assignments != first.record_assignments:
            raise _shape_error(
                index, "record_assignments",
                first.record_assignments, request.record_assignments,
            )
        if request.early_stop is not None:
            raise ValidationError(
                f"cannot coalesce request {index}: early_stop is set — a "
                f"plateau stop over the merged batch would couple requests "
                f"to their batch-mates"
            )
        if request.n_trials < 1:
            raise ValidationError(
                f"cannot coalesce request {index}: n_trials must be >= 1"
            )
        lo = len(seeds)
        seeds.extend(request_trial_seeds(request))
        slices.append((lo, len(seeds)))
        if request.deadline_seconds is not None:
            deadline = (
                request.deadline_seconds if deadline is None
                else min(deadline, request.deadline_seconds)
            )
        max_block_bytes = min(max_block_bytes, request.max_block_bytes)
    merged = SolveRequest(
        circuit=first.circuit,
        n_trials=len(seeds),
        n_samples=first.n_samples,
        trial_seeds=tuple(seeds),
        backend=first.backend,
        early_stop=None,
        deadline_seconds=deadline,
        record_potentials=first.record_potentials,
        record_assignments=first.record_assignments,
        max_block_bytes=max_block_bytes,
    )
    return merged, slices


def split_result(
    result: SolveResult, slices: Sequence[Tuple[int, int]]
) -> List[SolveResult]:
    """Slice a merged batch result back into per-request results.

    ``slices`` is :func:`coalesce_requests`'s second return value.  Each
    returned :class:`SolveResult` re-derives its own best cut over its own
    trial rows; trajectories, per-trial bests, and assignments are views of
    the merged arrays restricted to the request's rows — bit-identical to a
    standalone run of the constituent request.  ``elapsed_seconds`` is the
    *shared* batch wall time (the whole point is that N requests paid for
    one batch); ``metadata`` records the batch geometry.
    """
    results: List[SolveResult] = []
    for lo, hi in slices:
        if not (0 <= lo < hi <= result.n_trials):
            raise ValidationError(
                f"slice ({lo}, {hi}) out of range for a {result.n_trials}-trial "
                f"batch result"
            )
        weights = result.trial_best_weights[lo:hi]
        assignments = result.trial_best_assignments[lo:hi]
        best_trial = int(np.argmax(weights))
        best_cut = Cut(
            assignment=assignments[best_trial].copy(),
            weight=float(weights[best_trial]),
            graph_name=result.graph_name,
        )
        results.append(replace(
            result,
            n_trials=hi - lo,
            best_cut=best_cut,
            trial_best_weights=weights,
            trial_best_assignments=assignments,
            trajectories=result.trajectories[lo:hi],
            potentials=(
                result.potentials[lo:hi] if result.potentials is not None
                else None
            ),
            assignments=(
                result.assignments[lo:hi] if result.assignments is not None
                else None
            ),
            metadata={
                **result.metadata,
                "coalesced": True,
                "batch_trials": int(result.n_trials),
                "batch_slice": [int(lo), int(hi)],
            },
        ))
    return results
