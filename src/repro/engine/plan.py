"""Batch-execution plans: how a circuit opts into the batched engine.

A circuit that supports trial-parallel execution exposes
``engine_plan() -> BatchPlan`` describing everything the engine needs to
replay it in batch: the weight matrix, LIF parameters, read-out cadence and
mode, how to build one trial's device pool, and (for plasticity read-outs)
how to build one trial's learner.  The plan deliberately lives in its own
dependency-free module so :mod:`repro.circuits` can import it without
creating a cycle with :mod:`repro.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.neurons.lif import LIFParameters
from repro.utils.validation import ValidationError

__all__ = ["BatchPlan", "READOUT_MODES"]

#: Read-out modes the engine knows how to batch.
READOUT_MODES = ("membrane", "spike", "plasticity")


@dataclass(frozen=True)
class BatchPlan:
    """Recipe for batched execution of one circuit on its graph.

    Attributes
    ----------
    weights:
        ``(n_neurons, n_devices)`` device-to-neuron weight matrix.
    lif:
        Electrical parameters shared by all trials.
    burn_in:
        Steps integrated before the first read-out round.
    interval:
        Steps between consecutive read-outs.
    readout:
        ``"membrane"`` (sign of the membrane row), ``"spike"`` (spiking vs.
        silent at the read-out step), or ``"plasticity"`` (a per-trial learner
        consumes every post-burn-in membrane row and its weight signs are the
        read-out).
    n_devices:
        Devices per trial (pool width).
    pool_builder:
        ``(rng) -> DevicePool`` building one trial's device pool.
    plasticity_builder:
        ``(rng) -> learner`` for ``"plasticity"`` read-outs; the learner must
        provide ``step(x)`` and ``sign_assignment()``.
    sparse_weights:
        Optional zero-argument builder of a sparse (CSR-compatible) weight
        matrix, enabling the ``sparse`` backend for low-density graphs.
    metadata:
        Circuit extras copied into the result metadata.
    """

    weights: np.ndarray
    lif: LIFParameters
    burn_in: int
    interval: int
    readout: str
    n_devices: int
    pool_builder: Callable
    plasticity_builder: Optional[Callable] = None
    sparse_weights: Optional[Callable] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.readout not in READOUT_MODES:
            raise ValidationError(
                f"readout must be one of {READOUT_MODES}, got {self.readout!r}"
            )
        if self.readout == "plasticity" and self.plasticity_builder is None:
            raise ValidationError(
                "plasticity readout requires a plasticity_builder"
            )
        if self.burn_in < 0:
            raise ValidationError(f"burn_in must be >= 0, got {self.burn_in}")
        if self.interval < 1:
            raise ValidationError(f"interval must be >= 1, got {self.interval}")

    @property
    def n_neurons(self) -> int:
        return int(np.asarray(self.weights).shape[0])
