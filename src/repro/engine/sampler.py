"""Trial-parallel device sampling for the batched solver engine.

:class:`BatchDeviceSampler` replays, for every trial, exactly the RNG chain
the sequential circuits use — ``spawn_generators(trial_seed, 2)`` to split
device and auxiliary (plasticity) randomness, then one
:meth:`repro.devices.base.DevicePool.sample` call for the whole step block —
so the batched engine consumes bit-for-bit the same random numbers as
``circuit.sample_cuts(n_samples, seed=trial_seed)`` would, trial by trial.

Trial seeds are derived from the request's root seed as
``SeedSequence(entropy=root, spawn_key=(i,))`` (the
:class:`repro.utils.rng.SeedStream` convention), so trial *i* is reproducible
independently of how many trials run or how they are blocked.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.devices.base import DevicePool
from repro.obs.trace import span
from repro.utils.rng import spawn_generators
from repro.utils.validation import ValidationError

__all__ = ["BatchDeviceSampler", "trial_seed_sequences"]


def trial_seed_sequences(
    seed: Union[None, int, np.random.SeedSequence],
    n_trials: int,
    start: int = 0,
) -> List[np.random.SeedSequence]:
    """Per-trial ``SeedSequence`` children of a root seed.

    ``None`` draws fresh root entropy once (trials remain mutually
    independent and the run is reproducible from the returned sequences, just
    not from the ``None``).  An integer or ``SeedSequence`` root yields the
    deterministic ``spawn_key=(i,)`` children shared with
    :class:`repro.utils.rng.SeedStream` and :func:`repro.parallel.seeds.seeded_tasks`.

    *start* shifts the trial indices: the returned sequences are the children
    for global trials ``start .. start + n_trials - 1``.  A run split into
    consecutive ``[start, stop)`` blocks therefore consumes exactly the seeds
    of the unsplit run — the property the sharded workload executor
    (:mod:`repro.distrib`) relies on.
    """
    if n_trials < 0:
        raise ValidationError(f"n_trials must be >= 0, got {n_trials}")
    if start < 0:
        raise ValidationError(f"start must be >= 0, got {start}")
    if isinstance(seed, np.random.SeedSequence):
        entropy, base_key = seed.entropy, tuple(seed.spawn_key)
    elif seed is None:
        entropy, base_key = np.random.SeedSequence().entropy, ()
    elif isinstance(seed, (int, np.integer)):
        entropy, base_key = int(seed), ()
    else:
        raise ValidationError(
            f"seed must be None, int, or SeedSequence; got {type(seed).__name__}"
        )
    return [
        np.random.SeedSequence(entropy=entropy, spawn_key=base_key + (i,))
        for i in range(start, start + n_trials)
    ]


class BatchDeviceSampler:
    """Draws per-trial device-state blocks with the circuits' seeding chain.

    Parameters
    ----------
    pool_builder:
        Callable ``(rng) -> DevicePool`` building one trial's device pool from
        that trial's device generator — typically the bound method
        ``circuit.build_device_pool``, so custom device-pool factories
        (ablations) are honoured.
    trial_seeds:
        One ``SeedSequence`` per trial (see :func:`trial_seed_sequences`).
    n_devices:
        Optional pool width, used only to shape the result of an empty
        trial block consistently with non-empty ones.
    """

    def __init__(
        self,
        pool_builder: Callable[[np.random.Generator], DevicePool],
        trial_seeds: Sequence[np.random.SeedSequence],
        n_devices: int = 0,
    ) -> None:
        self._pool_builder = pool_builder
        self._trial_seeds = list(trial_seeds)
        self._n_devices = int(n_devices)
        self._aux_generators: List[Optional[np.random.Generator]] = [
            None for _ in self._trial_seeds
        ]

    @property
    def n_trials(self) -> int:
        return len(self._trial_seeds)

    def aux_generator(self, trial: int) -> np.random.Generator:
        """The trial's second spawned generator (plasticity randomness).

        Only valid after :meth:`sample_block` has covered the trial — the
        generator is created by the same ``spawn_generators(seed, 2)`` call
        that seeds the device pool, mirroring the sequential circuits.
        """
        aux = self._aux_generators[trial]
        if aux is None:
            raise ValidationError(
                f"trial {trial} has not been sampled yet; call sample_block first"
            )
        return aux

    def sample_block(self, trials: Sequence[int], n_steps: int) -> np.ndarray:
        """Device states for a block of trials: ``(len(trials), n_steps, d)`` int8.

        Each trial's block comes from a freshly built pool seeded with that
        trial's own generator, in one vectorised ``pool.sample`` call — the
        same single call the sequential circuits make.
        """
        if n_steps < 0:
            raise ValidationError(f"n_steps must be >= 0, got {n_steps}")
        with span("engine.sample", n_trials=len(trials), n_steps=n_steps):
            blocks = []
            for trial in trials:
                device_rng, aux_rng = spawn_generators(self._trial_seeds[trial], 2)
                self._aux_generators[trial] = aux_rng
                pool = self._pool_builder(device_rng)
                block = pool.sample(n_steps)
                blocks.append(block)
            if not blocks:
                return np.zeros((0, n_steps, self._n_devices), dtype=np.int8)
            return np.stack(blocks)
