"""Streaming best-cut tracking with early-stop-on-plateau.

The engine feeds the tracker one read-out round at a time (a vector of cut
weights, one per trial in the current block).  The tracker maintains the
running best across the whole batch and decides when the cut distribution has
plateaued — at which point long runs terminate instead of simulating the
remaining read-out rounds.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from repro.engine.request import EarlyStopConfig

__all__ = ["BestCutTracker"]


class BestCutTracker:
    """Tracks the running best cut weight and detects plateaus.

    Parameters
    ----------
    early_stop:
        Plateau rule; ``None`` disables *all* stopping — the tracker still
        tracks the running best, but neither the plateau rule nor the
        ceiling ever fires.
    ceiling:
        Optional known upper bound on the cut weight (the graph's total edge
        weight).  While an early-stop rule is active, reaching the ceiling
        stops immediately regardless of patience.
    deadline:
        Optional absolute wall-clock deadline (a ``time.perf_counter()``
        value).  Unlike the plateau rule, the deadline is an *independent*
        stop condition: it fires even with ``early_stop=None``, because a
        budget's ``max_seconds`` / a served request's timeout is an explicit
        instruction to truncate.  The check runs after each completed round,
        so at least one read-out always lands before a deadline stop — the
        returned best cut is partial but valid.
    """

    def __init__(
        self,
        early_stop: Optional[EarlyStopConfig] = None,
        ceiling: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self._config = early_stop
        self._ceiling = None if ceiling is None else float(ceiling)
        self._deadline = None if deadline is None else float(deadline)
        self._deadline_exceeded = False
        self.best_weight: float = -math.inf
        self.rounds_seen: int = 0
        self._rounds_since_improvement: int = 0
        self._stop_round: Optional[int] = None

    @property
    def stop_round(self) -> Optional[int]:
        """Round index after which the batch stopped (None while running)."""
        return self._stop_round

    @property
    def stopped(self) -> bool:
        return self._stop_round is not None

    @property
    def deadline_exceeded(self) -> bool:
        """True once the wall-clock deadline has fired (never reset)."""
        return self._deadline_exceeded

    def update(self, round_index: int, weights: np.ndarray) -> bool:
        """Fold one round of per-trial cut weights in; return True to stop.

        ``round_index`` is the 0-based read-out round.  Later trial blocks
        replay earlier rounds; those updates refine the best but never move an
        already-decided stop round earlier.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.size == 0:
            return self.stopped
        round_best = float(weights.max())
        threshold = self._improvement_threshold()
        if round_best > self.best_weight + threshold:
            self.best_weight = max(self.best_weight, round_best)
            self._rounds_since_improvement = 0
        else:
            self.best_weight = max(self.best_weight, round_best)
            self._rounds_since_improvement += 1
        self.rounds_seen = max(self.rounds_seen, round_index + 1)

        # The deadline outranks every other rule *and* the config=None
        # equivalence guarantee: it is checked first, fires in any block
        # (the engine honours it even where plateau stops are disallowed),
        # and latches so later blocks truncate at the same point.
        if self._deadline is not None and (
            self._deadline_exceeded or time.perf_counter() >= self._deadline
        ):
            self._deadline_exceeded = True
            if self._stop_round is None:
                self._stop_round = round_index
            return True

        if self._stop_round is not None:
            return True
        config = self._config
        if config is None:
            # Stopping (even at the ceiling) is only allowed when an early-stop
            # rule is configured, so the default engine run keeps exact
            # sample-for-sample equivalence with the sequential circuits.
            return False
        if self._ceiling is not None and self.best_weight >= self._ceiling:
            self._stop_round = round_index
            return True
        if (
            round_index + 1 >= config.min_rounds
            and self._rounds_since_improvement >= config.patience
        ):
            self._stop_round = round_index
            return True
        return False

    def _improvement_threshold(self) -> float:
        if self._config is None:
            return 0.0
        if not math.isfinite(self.best_weight):
            return 0.0
        return max(
            self._config.abs_improvement,
            self._config.rel_improvement * abs(self.best_weight),
        )

    def start_block(self) -> None:
        """Reset the per-block plateau counter before replaying rounds.

        The best weight is global across blocks, but the plateau counter is
        block-local: a later block restarts at round 0, so carrying the
        counter over would conflate rounds from different trials.
        """
        self._rounds_since_improvement = 0

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        best = "-inf" if not math.isfinite(self.best_weight) else f"{self.best_weight:g}"
        return (
            f"BestCutTracker(best={best}, rounds={self.rounds_seen}, "
            f"stopped={self.stopped})"
        )
