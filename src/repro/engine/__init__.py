"""Batched solver engine: trial-parallel device + LIF simulation.

Public API
----------
:class:`SolveRequest` / :class:`SolveResult`
    Describe and report a batch of independent circuit trials on one graph.
:class:`BatchedSolverEngine` / :func:`solve`
    Execute a request with trial-parallel simulation.
:func:`sequential_solve`
    Reference loop over the sequential circuit path with the same per-trial
    seeds (for equivalence tests and benchmarks).
:class:`EarlyStopConfig`
    Plateau rule for streaming best-cut early stopping.
:func:`resolve_backend` / :meth:`WeightBackend.for_graph`
    The backend-selection API: one spec string ("auto", "sparse",
    "torch:dense", ...) resolves both the array namespace
    (:class:`ArrayBackend`: numpy/torch/cupy) and the weight backend.
:func:`register_backend` / :func:`list_backends` /
:func:`register_array_backend` / :func:`list_array_backends`
    Extend or inspect the weight- and array-backend registries
    (``dense``/``sparse`` and ``numpy``/``torch``/``cupy`` ship by default).
:func:`coalesce_requests` / :func:`split_result`
    Batch split/merge seams: fuse same-shape requests into one engine batch
    and slice the result back per requester, bit-identically (the solve
    service's cross-request batching).
:class:`InstanceBlock` / :func:`solve_instance_block`
    Graph-axis batching: fuse same-shape instances × trials into one kernel
    invocation (arena/problem suites, the serve batch loop).
"""

from repro.engine.backends import (
    DenseBackend,
    SparseBackend,
    WeightBackend,
    get_backend,
    list_backends,
    probe_weight_backends,
    register_backend,
    select_backend,
)
from repro.engine.coalesce import (
    coalesce_requests,
    request_trial_seeds,
    split_result,
)
from repro.engine.engine import BatchedSolverEngine, sequential_solve, solve
from repro.engine.instances import (
    InstanceBlock,
    fusion_compatible,
    solve_instance_block,
)
from repro.engine.plan import BatchPlan
from repro.engine.request import EarlyStopConfig, SolveRequest, SolveResult
from repro.engine.sampler import BatchDeviceSampler, trial_seed_sequences
from repro.engine.simulator import BatchLIFSimulator
from repro.engine.tracker import BestCutTracker
from repro.engine.xp import (
    ArrayBackend,
    BackendSpec,
    CupyArrayBackend,
    NumpyArrayBackend,
    ResolvedBackend,
    TorchArrayBackend,
    get_array_backend,
    list_array_backends,
    parse_backend_spec,
    probe_array_backends,
    register_array_backend,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "BackendSpec",
    "BatchDeviceSampler",
    "BatchLIFSimulator",
    "BatchPlan",
    "BatchedSolverEngine",
    "BestCutTracker",
    "CupyArrayBackend",
    "DenseBackend",
    "EarlyStopConfig",
    "InstanceBlock",
    "NumpyArrayBackend",
    "ResolvedBackend",
    "SolveRequest",
    "SolveResult",
    "SparseBackend",
    "TorchArrayBackend",
    "WeightBackend",
    "coalesce_requests",
    "fusion_compatible",
    "get_array_backend",
    "get_backend",
    "list_array_backends",
    "list_backends",
    "parse_backend_spec",
    "probe_array_backends",
    "probe_weight_backends",
    "register_array_backend",
    "register_backend",
    "request_trial_seeds",
    "resolve_backend",
    "select_backend",
    "sequential_solve",
    "solve",
    "solve_instance_block",
    "split_result",
    "trial_seed_sequences",
]
