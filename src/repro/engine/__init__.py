"""Batched solver engine: trial-parallel device + LIF simulation.

Public API
----------
:class:`SolveRequest` / :class:`SolveResult`
    Describe and report a batch of independent circuit trials on one graph.
:class:`BatchedSolverEngine` / :func:`solve`
    Execute a request with trial-parallel simulation.
:func:`sequential_solve`
    Reference loop over the sequential circuit path with the same per-trial
    seeds (for equivalence tests and benchmarks).
:class:`EarlyStopConfig`
    Plateau rule for streaming best-cut early stopping.
:func:`register_backend` / :func:`list_backends`
    Extend or inspect the weight-application backend registry
    (``dense`` and ``sparse`` ship by default).
:func:`coalesce_requests` / :func:`split_result`
    Batch split/merge seams: fuse same-shape requests into one engine batch
    and slice the result back per requester, bit-identically (the solve
    service's cross-request batching).
"""

from repro.engine.backends import (
    DenseBackend,
    SparseBackend,
    WeightBackend,
    get_backend,
    list_backends,
    register_backend,
    select_backend,
)
from repro.engine.coalesce import (
    coalesce_requests,
    request_trial_seeds,
    split_result,
)
from repro.engine.engine import BatchedSolverEngine, sequential_solve, solve
from repro.engine.plan import BatchPlan
from repro.engine.request import EarlyStopConfig, SolveRequest, SolveResult
from repro.engine.sampler import BatchDeviceSampler, trial_seed_sequences
from repro.engine.simulator import BatchLIFSimulator
from repro.engine.tracker import BestCutTracker

__all__ = [
    "BatchDeviceSampler",
    "BatchLIFSimulator",
    "BatchPlan",
    "BatchedSolverEngine",
    "BestCutTracker",
    "DenseBackend",
    "EarlyStopConfig",
    "SolveRequest",
    "SolveResult",
    "SparseBackend",
    "WeightBackend",
    "coalesce_requests",
    "get_backend",
    "list_backends",
    "register_backend",
    "request_trial_seeds",
    "select_backend",
    "sequential_solve",
    "solve",
    "split_result",
    "trial_seed_sequences",
]
