"""The batched solver engine: trial-parallel device + LIF simulation.

:class:`BatchedSolverEngine` owns batched stochastic-circuit simulation end
to end.  Given a :class:`repro.engine.request.SolveRequest` it

1. resolves the circuit (building it — SDP solve included — when given a
   name),
2. derives one ``SeedSequence`` per trial from the root seed,
3. draws every trial's device states through the circuit's own pool factory
   (:class:`repro.engine.sampler.BatchDeviceSampler`),
4. integrates all trials' membranes in lock-step
   (:class:`repro.engine.simulator.BatchLIFSimulator`) with the weight
   product routed through a pluggable dense/sparse backend, and
5. streams cut read-outs through a :class:`repro.engine.tracker.BestCutTracker`,
   optionally terminating early once the best-cut distribution plateaus.

With the default dense backend and early stopping disabled, the engine's
read-outs are bit-identical to running ``circuit.sample_cuts`` sequentially
once per trial with the matching ``SeedSequence(root, spawn_key=(i,))`` seed
— :func:`sequential_solve` implements exactly that reference loop.

Trials are processed in memory-bounded blocks, so graph size x step count
never forces the full ``trials x steps x neurons`` current tensor into RAM.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.base import NeuromorphicCircuit
from repro.cuts.cut import BatchCutEvaluator, Cut
from repro.engine.backends import WeightBackend
from repro.engine.coalesce import request_trial_seeds as _request_trial_seeds
from repro.engine.request import SolveRequest, SolveResult
from repro.engine.sampler import BatchDeviceSampler
from repro.engine.simulator import BatchLIFSimulator
from repro.engine.tracker import BestCutTracker
from repro.neurons.encoding import (
    membrane_sign_assignments_xp,
    spikes_to_assignments_xp,
)
from repro.obs.trace import span
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["BatchedSolverEngine", "solve", "sequential_solve"]

_logger = get_logger("engine")


class BatchedSolverEngine:
    """Trial-parallel executor for circuits exposing an ``engine_plan``."""

    def solve(self, request: SolveRequest) -> SolveResult:
        """Run the batch described by *request* and return its result."""
        # Tracing wraps the run without touching it: spans consume no RNG
        # and alter no control flow, so results are bit-identical with
        # tracing on, off, or toggled mid-process.
        with span(
            "engine.solve", n_trials=request.n_trials, n_samples=request.n_samples
        ) as solve_span:
            result = self._solve(request)
            solve_span.set(
                graph=result.graph_name,
                circuit=result.circuit_name,
                backend=result.backend_name,
                n_rounds=result.n_rounds,
            )
            return result

    def _solve(self, request: SolveRequest) -> SolveResult:
        start = time.perf_counter()
        with span("engine.circuit_build"):
            circuit = self._resolve_circuit(request)
        graph = circuit.graph
        plan = circuit.engine_plan()
        n_neurons = plan.n_neurons
        n_steps = plan.burn_in + request.n_samples * plan.interval

        # One resolution point for both seams: the request's backend spec
        # ("auto", "sparse", "torch:dense", ...) picks the array namespace
        # and the weight backend together; an explicit weight name in the
        # spec always wins over the density heuristic.
        backend = WeightBackend.for_graph(
            graph, plan.weights, policy=request.backend,
            sparse_weights=plan.sparse_weights,
        )
        xp = backend.array

        if request.n_trials == 0:
            return self._empty_result(request, circuit, backend.name, graph)

        seeds = _request_trial_seeds(request)
        sampler = BatchDeviceSampler(
            circuit.build_device_pool, seeds, n_devices=plan.n_devices
        )
        simulator = BatchLIFSimulator(backend, plan.lif, n_neurons)
        ceiling = self._cut_ceiling(graph)
        deadline = (
            None if request.deadline_seconds is None
            else start + request.deadline_seconds
        )
        tracker = BestCutTracker(
            request.early_stop, ceiling=ceiling, deadline=deadline
        )

        trial_best_weights = np.full(request.n_trials, -np.inf)
        trial_best_assignments = np.zeros((request.n_trials, n_neurons), dtype=np.int8)
        trajectory_blocks: List[np.ndarray] = []
        potential_blocks: List[np.ndarray] = []
        assignment_blocks: List[np.ndarray] = []

        block_size = self._block_size(request, n_steps, n_neurons)
        blocks = [
            list(range(lo, min(lo + block_size, request.n_trials)))
            for lo in range(0, request.n_trials, block_size)
        ]
        rounds_limit = request.n_samples
        for block_index, trials in enumerate(blocks):
            with span(
                "engine.block", block=block_index, n_trials=len(trials)
            ):
                completed = self._run_block(
                    request, plan, graph, sampler, simulator, tracker,
                    trials, n_steps, rounds_limit,
                    trial_best_weights, trial_best_assignments,
                    trajectory_blocks, potential_blocks, assignment_blocks,
                    allow_stop=(block_index == 0),
                )
            # The first block fixes the round count; later blocks replay it so
            # every trial's trajectory has the same length.  A wall-clock
            # deadline may truncate a later block further still — the final
            # round count is the minimum, enforced when stacking below.
            rounds_limit = completed

        n_rounds = rounds_limit
        best_trial = int(np.argmax(trial_best_weights))
        best_cut = Cut(
            assignment=trial_best_assignments[best_trial].copy(),
            weight=float(trial_best_weights[best_trial]),
            graph_name=graph.name,
        )
        elapsed = time.perf_counter() - start
        # "Early stopped" means the run was actually truncated.  The tracker
        # can also trip on the very last round, or during a later block's
        # replayed rounds (where stopping is disallowed); neither shortens
        # the run, so neither counts.
        early_stopped = n_rounds < request.n_samples
        _logger.debug(
            "engine: %s on %s, %d trials x %d/%d rounds via %s in %.3fs (best %.1f)",
            type(circuit).__name__, graph.name, request.n_trials, n_rounds,
            request.n_samples, backend.name, elapsed, best_cut.weight,
        )
        return SolveResult(
            graph_name=graph.name,
            circuit_name=circuit.name,
            backend_name=backend.name,
            n_trials=request.n_trials,
            n_samples=request.n_samples,
            n_rounds=n_rounds,
            n_steps=plan.burn_in + n_rounds * plan.interval,
            best_cut=best_cut,
            trial_best_weights=trial_best_weights,
            trial_best_assignments=trial_best_assignments,
            # Blocks are truncated to the final (minimum) round count: a
            # deadline firing in a later block shortens rounds_limit after
            # earlier blocks already recorded more rounds.  Their extra
            # rounds still contributed to the per-trial bests above — the
            # "partial but valid" contract — only the rectangular trajectory
            # tensor drops them.
            trajectories=np.vstack([t[:, :n_rounds] for t in trajectory_blocks]),
            early_stopped=early_stopped,
            elapsed_seconds=elapsed,
            potentials=(
                np.vstack([p[:, :n_rounds] for p in potential_blocks])
                if potential_blocks else None
            ),
            assignments=(
                np.vstack([a[:, :n_rounds] for a in assignment_blocks])
                if assignment_blocks else None
            ),
            metadata={
                "n_blocks": len(blocks),
                "n_devices": plan.n_devices,
                "readout": plan.readout,
                "array_backend": xp.name,
                "array_device": xp.device_label(),
                "early_stop_round": tracker.stop_round if early_stopped else None,
                "deadline_exceeded": tracker.deadline_exceeded,
                **plan.metadata,
            },
        )

    # ------------------------------------------------------------------
    def _run_block(
        self,
        request: SolveRequest,
        plan,
        graph,
        sampler: BatchDeviceSampler,
        simulator: BatchLIFSimulator,
        tracker: BestCutTracker,
        trials: Sequence[int],
        n_steps: int,
        rounds_limit: int,
        trial_best_weights: np.ndarray,
        trial_best_assignments: np.ndarray,
        trajectory_blocks: List[np.ndarray],
        potential_blocks: List[np.ndarray],
        assignment_blocks: List[np.ndarray],
        allow_stop: bool,
    ) -> int:
        """Simulate one trial block; returns the number of rounds completed."""
        trials = list(trials)
        n_trials = len(trials)
        xp = simulator.xp
        evaluator = BatchCutEvaluator(graph, array_backend=xp)
        # Device sampling always covers the full requested step count so each
        # trial's RNG consumption matches the sequential path (the RNG bridge:
        # sampling stays on host NumPy whatever the array backend), but blocks
        # that replay an earlier block's truncated round count only pay the
        # weight product for the steps they will actually integrate.
        states = sampler.sample_block(trials, n_steps)
        needed_steps = plan.burn_in + rounds_limit * plan.interval
        if needed_steps < n_steps:
            states = states[:, :needed_steps]
        split = plan.burn_in if plan.readout == "spike" else 0
        # The one host->device transfer per block; identity on numpy.
        currents = simulator.drive_currents(xp.asarray(states), split_at=split)
        del states

        learners = None
        if plan.readout == "plasticity":
            learners = [
                plan.plasticity_builder(sampler.aux_generator(trial))
                for trial in trials
            ]
            rounds = simulator.iter_subthreshold_rounds(
                currents, plan.burn_in, plan.interval, rounds_limit
            )
        elif plan.readout == "membrane":
            rounds = simulator.iter_membrane_readouts(
                currents, plan.burn_in, plan.interval, rounds_limit
            )
        else:
            rounds = simulator.iter_spike_readouts(
                currents, plan.burn_in, plan.interval, rounds_limit
            )

        trial_index = np.asarray(trials)
        trajectories = np.zeros((n_trials, rounds_limit))
        potentials_out = (
            np.zeros((n_trials, rounds_limit, plan.n_neurons))
            if request.record_potentials and plan.readout != "spike"
            else None
        )
        assignments_out = (
            np.zeros((n_trials, rounds_limit, plan.n_neurons), dtype=np.int8)
            if request.record_assignments
            else None
        )

        tracker.start_block()
        completed = 0
        with span(
            "engine.integrate", n_trials=n_trials, rounds_limit=rounds_limit,
            readout=plan.readout,
        ) as integrate_span:
            for r, payload in rounds:
                # Assignments are computed in the array namespace; only the
                # small per-round products (cut weights, int8 assignments,
                # recorded potentials) cross back to the host, where the
                # tracker and the per-trial bests live.  Every `to_numpy`
                # below is the identity on the numpy backend, so the host
                # path is unchanged bitwise.
                if plan.readout == "membrane":
                    readout_rows = None
                    if potentials_out is not None:
                        readout_rows = xp.to_numpy(payload)
                    assignments = membrane_sign_assignments_xp(xp, payload)
                elif plan.readout == "spike":
                    readout_rows = None
                    assignments = spikes_to_assignments_xp(xp, payload)
                else:
                    # Plasticity learners are host objects (the circuits' own
                    # rule implementations), so this read-out bridges each
                    # round's rows back to NumPy before stepping them.
                    rows = xp.to_numpy(payload)
                    readout_rows = rows[:, -1]
                    assignments = np.empty((n_trials, plan.n_neurons), dtype=np.int8)
                    for j, learner in enumerate(learners):
                        for k in range(plan.interval):
                            learner.step(rows[j, k])
                        assignments[j] = learner.sign_assignment()

                weights = xp.to_numpy(evaluator.weights(assignments))
                assignments = xp.to_numpy(assignments)
                trajectories[:, r] = weights
                if potentials_out is not None and readout_rows is not None:
                    potentials_out[:, r] = readout_rows
                if assignments_out is not None:
                    assignments_out[:, r] = assignments

                improved = weights > trial_best_weights[trial_index]
                if improved.any():
                    trial_best_weights[trial_index[improved]] = weights[improved]
                    trial_best_assignments[trial_index[improved]] = assignments[improved]

                completed = r + 1
                if tracker.update(r, weights) and (
                    allow_stop or tracker.deadline_exceeded
                ):
                    # Plateau/ceiling stops are only honoured in the first
                    # block (later blocks replay its round count); the
                    # wall-clock deadline truncates wherever it fires.
                    break
            integrate_span.set(rounds_completed=completed)

        trajectory_blocks.append(trajectories[:, :completed])
        if potentials_out is not None:
            potential_blocks.append(potentials_out[:, :completed])
        if assignments_out is not None:
            assignment_blocks.append(assignments_out[:, :completed])
        return completed

    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_circuit(request: SolveRequest) -> NeuromorphicCircuit:
        if isinstance(request.circuit, NeuromorphicCircuit):
            return request.circuit
        name = request.circuit
        if name == "lif_gw":
            from repro.circuits.lif_gw import LIFGWCircuit

            return LIFGWCircuit(request.graph, config=request.config, seed=request.seed)
        if name == "lif_tr":
            from repro.circuits.lif_trevisan import LIFTrevisanCircuit

            return LIFTrevisanCircuit(request.graph, config=request.config)
        raise ValidationError(
            f"unknown circuit {name!r}; expected 'lif_gw' or 'lif_tr' "
            "or a NeuromorphicCircuit instance"
        )

    @staticmethod
    def _cut_ceiling(graph) -> Optional[float]:
        """Total edge weight, valid as a cut upper bound only if no weight is negative."""
        if graph.n_edges == 0:
            return None
        weights = graph.edge_weights
        if np.all(weights >= 0):
            return float(weights.sum())
        return None

    @staticmethod
    def _block_size(request: SolveRequest, n_steps: int, n_neurons: int) -> int:
        """Trials per block such that the current buffer stays under the cap."""
        bytes_per_trial = max(1, n_steps * n_neurons * 8)
        by_memory = max(1, request.max_block_bytes // bytes_per_trial)
        return int(min(request.n_trials, by_memory))

    @staticmethod
    def _empty_result(
        request: SolveRequest, circuit, backend_name: str, graph
    ) -> SolveResult:
        n_neurons = graph.n_vertices
        return SolveResult(
            graph_name=graph.name,
            circuit_name=circuit.name,
            backend_name=backend_name,
            n_trials=0,
            n_samples=request.n_samples,
            n_rounds=0,
            n_steps=0,
            best_cut=None,
            trial_best_weights=np.zeros(0),
            trial_best_assignments=np.zeros((0, n_neurons), dtype=np.int8),
            trajectories=np.zeros((0, 0)),
            early_stopped=False,
            elapsed_seconds=0.0,
            metadata={"n_blocks": 0},
        )


def solve(request: SolveRequest) -> SolveResult:
    """Module-level convenience wrapper: ``BatchedSolverEngine().solve(request)``."""
    return BatchedSolverEngine().solve(request)


def sequential_solve(request: SolveRequest) -> SolveResult:
    """Reference implementation: one ``sample_cuts`` call per trial.

    Runs the *sequential* circuit path with exactly the per-trial seeds the
    engine derives, and packages the outcome as a :class:`SolveResult`.  Used
    by the equivalence tests and the throughput benchmarks; early stopping
    and backend selection do not apply.
    """
    start = time.perf_counter()
    engine = BatchedSolverEngine()
    circuit = engine._resolve_circuit(request)
    graph = circuit.graph
    plan = circuit.engine_plan()
    n_steps = plan.burn_in + request.n_samples * plan.interval
    if request.n_trials == 0:
        return engine._empty_result(request, circuit, "sequential", graph)

    seeds = _request_trial_seeds(request)
    trajectories = np.zeros((request.n_trials, request.n_samples))
    best_weights = np.full(request.n_trials, -np.inf)
    best_assignments = np.zeros(
        (request.n_trials, graph.n_vertices), dtype=np.int8
    )
    for i, trial_seed in enumerate(seeds):
        result = circuit.sample_cuts(request.n_samples, seed=trial_seed)
        trajectories[i] = result.trajectory.weights
        best_weights[i] = result.best_cut.weight
        best_assignments[i] = result.best_cut.assignment
    best_trial = int(np.argmax(best_weights))
    best_cut = Cut(
        assignment=best_assignments[best_trial].copy(),
        weight=float(best_weights[best_trial]),
        graph_name=graph.name,
    )
    return SolveResult(
        graph_name=graph.name,
        circuit_name=circuit.name,
        backend_name="sequential",
        n_trials=request.n_trials,
        n_samples=request.n_samples,
        n_rounds=request.n_samples,
        n_steps=n_steps,
        best_cut=best_cut,
        trial_best_weights=best_weights,
        trial_best_assignments=best_assignments,
        trajectories=trajectories,
        elapsed_seconds=time.perf_counter() - start,
        metadata={"sequential": True},
    )
