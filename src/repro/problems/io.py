"""Problem-instance serialisation: JSON round-trips for every IR class.

The formats are the ``to_dict`` renderings of the classes in
:mod:`repro.problems.ir`; :func:`problem_from_dict` is the inverse dispatch,
and :func:`load_problem` / :func:`save_problem` wrap them for the
``repro solve --problem ... --from FILE`` CLI path.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Union

import numpy as np

from repro.algorithms.max2sat import Clause, Max2SatInstance
from repro.algorithms.maxdicut import DirectedGraph
from repro.graphs.graph import Graph
from repro.ising.model import IsingModel
from repro.problems.base import Problem
from repro.problems.ir import (
    IsingProblem,
    MaxCutProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    Qubo,
)
from repro.utils.validation import ValidationError

__all__ = ["problem_from_dict", "load_problem", "save_problem"]

PathLike = Union[str, os.PathLike]


def _qubo_from_dict(data: Mapping[str, Any]) -> Qubo:
    return Qubo(matrix=np.asarray(data["matrix"], dtype=np.float64))


def _ising_from_dict(data: Mapping[str, Any]) -> IsingProblem:
    return IsingProblem(IsingModel(
        n_spins=int(data["n_spins"]),
        edges=np.asarray(data.get("edges", []), dtype=np.int64).reshape(-1, 2),
        couplings=np.asarray(data.get("couplings", []), dtype=np.float64),
        fields=np.asarray(data["fields"], dtype=np.float64),
        offset=float(data.get("offset", 0.0)),
    ))


def _maxcut_from_dict(data: Mapping[str, Any]) -> MaxCutProblem:
    return MaxCutProblem(Graph(
        int(data["n_vertices"]),
        [tuple(edge) for edge in data.get("edges", [])],
        name=str(data.get("name", "graph")),
    ))


def _maxdicut_from_dict(data: Mapping[str, Any]) -> MaxDiCutProblem:
    return MaxDiCutProblem(DirectedGraph(
        int(data["n_vertices"]),
        [tuple(arc) for arc in data.get("arcs", [])],
        name=str(data.get("name", "digraph")),
    ))


def _max2sat_from_dict(data: Mapping[str, Any]) -> MaxTwoSatProblem:
    clauses = []
    for entry in data.get("clauses", []):
        literal1, literal2 = int(entry[0]), int(entry[1])
        weight = float(entry[2]) if len(entry) > 2 else 1.0
        clauses.append(Clause(literal1, literal2, weight))
    return MaxTwoSatProblem(Max2SatInstance(
        n_variables=int(data["n_variables"]), clauses=tuple(clauses),
    ))


_LOADERS = {
    "qubo": _qubo_from_dict,
    "ising": _ising_from_dict,
    "maxcut": _maxcut_from_dict,
    "maxdicut": _maxdicut_from_dict,
    "max2sat": _max2sat_from_dict,
}


def problem_from_dict(data: Mapping[str, Any]) -> Problem:
    """Rebuild a problem instance from its ``to_dict`` form."""
    kind = str(data.get("kind", ""))
    loader = _LOADERS.get(kind)
    if loader is None:
        raise ValidationError(
            f"unknown problem kind {kind!r}; known kinds: {sorted(_LOADERS)}"
        )
    try:
        return loader(data)
    except (KeyError, TypeError, IndexError) as exc:
        raise ValidationError(
            f"cannot rebuild {kind} problem from dict: {exc}"
        ) from exc


def load_problem(path: PathLike) -> Problem:
    """Load a problem instance from a JSON file written by :func:`save_problem`."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValidationError(
            f"problem file {os.fspath(path)!r} must contain a JSON object"
        )
    return problem_from_dict(data)


def save_problem(path: PathLike, problem: Problem) -> None:
    """Write a problem instance to *path* as JSON (atomic)."""
    from repro.experiments.runner import atomic_write_json

    atomic_write_json(path, problem.to_dict())
