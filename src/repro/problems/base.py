"""Problem IR foundations: :class:`Problem`, :class:`Lifter`, certificates.

The problem compiler (paper Discussion §VI) treats MAXCUT as the *target
machine* of a small compilation pipeline: every supported problem class —
QUBO, Ising (with external fields), MAXCUT itself, MAXDICUT, MAX2SAT — is a
:class:`Problem` subclass, and :func:`repro.problems.compile_to_maxcut`
lowers an instance onto a weighted :class:`repro.graphs.graph.Graph` the
whole solver stack (batched engine, arena, sharded workloads) already knows
how to race on.

Two invariants make the lowering trustworthy:

* **Per-assignment exactness.**  Every gadget reduction in this package is
  exact for *every* assignment, not just the optimum: the native objective of
  the lifted solution is an affine function of the cut weight,
  ``native = value_scale * cut + value_offset`` (the :class:`Lifter` carries
  the two constants).  Optimum preservation follows as a corollary.
* **Certificates.**  :func:`verify_certificate` checks the affine identity on
  random probe assignments (and optionally on a concrete solved cut) and
  raises :class:`CertificateError` on any violation, so a broken reduction
  can never silently report wrong objective values.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.validation import ValidationError

__all__ = [
    "Problem",
    "Lifter",
    "Certificate",
    "CertificateError",
    "verify_certificate",
    "brute_force",
    "MAX_BRUTE_FORCE_VARIABLES",
]

#: Hard cap on :func:`brute_force` enumeration (2^20 objective evaluations).
MAX_BRUTE_FORCE_VARIABLES = 20


class Problem(abc.ABC):
    """One optimisation problem instance in the compiler's IR.

    Subclasses declare their ``kind`` (the registry key used by solver
    capability routing and the CLI), their optimisation ``direction``
    (``"max"`` or ``"min"``), and the native *solution* representation —
    always a length-``n_variables`` vector over a binary domain (0/1 bits,
    ±1 spins, or booleans), which is what makes the generic
    :func:`brute_force` and the bit-vector probes of
    :func:`verify_certificate` possible.
    """

    #: Problem-class key (``"qubo"``, ``"ising"``, ``"maxcut"``,
    #: ``"maxdicut"``, ``"max2sat"``).
    kind: str = ""

    #: ``"max"`` or ``"min"`` — which way :meth:`objective` is optimised.
    direction: str = "max"

    @property
    @abc.abstractmethod
    def n_variables(self) -> int:
        """Number of native decision variables."""

    @abc.abstractmethod
    def objective(self, solution: Any) -> float:
        """Native objective value of *solution* (validated)."""

    @abc.abstractmethod
    def solution_from_bits(self, bits: np.ndarray) -> Any:
        """Map a 0/1 vector onto the native solution representation."""

    @abc.abstractmethod
    def to_dict(self) -> dict:
        """JSON-safe instance description (see :mod:`repro.problems.io`)."""

    def describe(self) -> str:
        """One-line human summary used by the CLI."""
        return f"{self.kind} instance with {self.n_variables} variable(s)"

    def fingerprint(self) -> str:
        """Stable content hash of the instance (its canonical JSON form).

        SHA-256 over the sorted-key JSON rendering of :meth:`to_dict` — the
        same description :mod:`repro.problems.io` persists — so equal
        instances hash identically across processes.  Used as the content
        address for compiled-problem caching (:mod:`repro.serve.cache`):
        a repeated instance skips ``compile_to_maxcut`` entirely.
        """
        import hashlib
        import json

        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]

    def is_improvement(self, candidate: float, incumbent: float) -> bool:
        """Whether *candidate* beats *incumbent* under this direction."""
        if self.direction == "max":
            return candidate > incumbent
        return candidate < incumbent


class Lifter(abc.ABC):
    """Decoder from compiled-MAXCUT assignments back to native solutions.

    ``compile_to_maxcut`` returns a lifter alongside the compiled graph.  The
    affine constants make the certificate checkable and let native solvers'
    objective values be placed on the same cut-weight leaderboard as circuit
    solvers racing the compiled graph:

    ``native = value_scale * cut_weight + value_offset``

    holds for **every** ±1 assignment of the compiled graph (per-assignment
    exactness), with :meth:`lift` and :meth:`embed` the two directions of the
    solution map.
    """

    #: The native problem this lifter decodes back to.
    problem: Problem
    #: Affine map constants: ``native = value_scale * cut + value_offset``.
    value_scale: float
    value_offset: float

    @abc.abstractmethod
    def lift(self, assignment: np.ndarray) -> Any:
        """Decode a ±1 assignment of the compiled graph to a native solution."""

    @abc.abstractmethod
    def embed(self, solution: Any) -> np.ndarray:
        """Encode a native solution as a ±1 assignment of the compiled graph."""

    def native_value(self, cut_weight: float) -> float:
        """Native objective equivalent of a compiled-graph cut weight."""
        return self.value_scale * float(cut_weight) + self.value_offset

    def cut_value(self, native: float) -> float:
        """Compiled-graph cut weight equivalent of a native objective value."""
        return (float(native) - self.value_offset) / self.value_scale


class CertificateError(ValidationError):
    """A reduction failed its objective-value-preservation check."""


@dataclass(frozen=True)
class Certificate:
    """Outcome of a passed :func:`verify_certificate` check.

    Attributes
    ----------
    kind:
        Problem class the reduction was checked for.
    n_probes:
        Random probe assignments checked (the solved assignment, when
        supplied, is checked additionally).
    max_abs_error:
        Largest ``|native - (scale * cut + offset)|`` seen over all checks.
    cut_weight, native_value:
        The solved assignment's cut weight and lifted native objective
        (``None`` when no assignment was supplied).
    """

    kind: str
    n_probes: int
    max_abs_error: float
    cut_weight: Optional[float] = None
    native_value: Optional[float] = None


def _check_one(
    problem: Problem,
    graph,
    lifter: Lifter,
    assignment: np.ndarray,
    label: str,
    atol: float,
    rtol: float,
) -> Tuple[float, float, float]:
    """Check the affine identity + embed round-trip for one assignment."""
    from repro.cuts.cut import cut_weight

    cut = cut_weight(graph, assignment)
    native = problem.objective(lifter.lift(assignment))
    expected = lifter.native_value(cut)
    tolerance = atol + rtol * max(1.0, abs(native))
    error = abs(native - expected)
    if not np.isfinite(native) or error > tolerance:
        raise CertificateError(
            f"{problem.kind} reduction failed value preservation on {label}: "
            f"lifted objective {native!r} but cut weight {cut:g} implies "
            f"{expected:g} (scale {lifter.value_scale:g}, "
            f"offset {lifter.value_offset:g})"
        )
    round_trip = cut_weight(graph, lifter.embed(lifter.lift(assignment)))
    if abs(round_trip - cut) > tolerance:
        raise CertificateError(
            f"{problem.kind} reduction failed embed round-trip on {label}: "
            f"cut weight {cut:g} became {round_trip:g} after lift+embed"
        )
    return cut, native, error


def verify_certificate(
    problem: Problem,
    graph,
    lifter: Lifter,
    assignment: Optional[np.ndarray] = None,
    n_probes: int = 8,
    seed: RandomState = 0,
    atol: float = 1e-8,
    rtol: float = 1e-9,
) -> Certificate:
    """Assert objective-value preservation of a compiled instance.

    Draws *n_probes* random ±1 assignments of the compiled *graph* and checks
    the lifter's affine identity ``native = value_scale * cut + value_offset``
    plus the ``embed(lift(.))`` round-trip on each; when *assignment* is
    given (a solved cut), it is checked too and its values recorded in the
    returned :class:`Certificate`.  Any violation raises
    :class:`CertificateError`.

    Because every reduction in this package is exact per assignment, random
    probes certify the *compilation* (graph weights, scale, offset) — not
    merely the solution at hand.
    """
    if n_probes < 1:
        raise ValidationError(f"n_probes must be >= 1, got {n_probes}")
    rng = as_generator(seed)
    n = graph.n_vertices
    max_error = 0.0
    probes = (2 * rng.integers(0, 2, size=(int(n_probes), n)) - 1).astype(np.int8)
    for index in range(probes.shape[0]):
        _, _, error = _check_one(
            problem, graph, lifter, probes[index], f"probe {index}", atol, rtol
        )
        max_error = max(max_error, error)
    cut = native = None
    if assignment is not None:
        assignment = np.asarray(assignment)
        cut, native, error = _check_one(
            problem, graph, lifter, assignment, "the solved assignment", atol, rtol
        )
        max_error = max(max_error, error)
    return Certificate(
        kind=problem.kind,
        n_probes=int(n_probes),
        max_abs_error=float(max_error),
        cut_weight=cut,
        native_value=native,
    )


def brute_force(problem: Problem) -> Tuple[Any, float]:
    """Exact native optimum by exhaustive enumeration (small instances only).

    Enumerates all ``2^n`` bit vectors through
    :meth:`Problem.solution_from_bits`; the test-suite counterpart of
    :func:`repro.cuts.exact.exact_maxcut` on the compiled side.
    """
    n = problem.n_variables
    if n > MAX_BRUTE_FORCE_VARIABLES:
        raise ValidationError(
            f"brute_force supports at most {MAX_BRUTE_FORCE_VARIABLES} "
            f"variables, got {n}"
        )
    best_solution = None
    best_value = -np.inf if problem.direction == "max" else np.inf
    for index in range(1 << n):
        bits = ((index >> np.arange(n)) & 1).astype(np.int8)
        solution = problem.solution_from_bits(bits)
        value = problem.objective(solution)
        if best_solution is None or problem.is_improvement(value, best_value):
            best_solution, best_value = solution, value
    return best_solution, float(best_value)
