"""Problem-native solvers, registered with ``problem_classes`` capabilities.

The SDP-based MAXDICUT and MAX2SAT approximations the repo already carried
(:func:`repro.algorithms.maxdicut.maxdicut_gw`,
:func:`repro.algorithms.max2sat.max2sat_gw`) become first-class registry
citizens here: each wrapper pulls the native instance off the
:class:`~repro.problems.compile.CompiledGraph` it is handed, solves it
natively, and **embeds** the native solution back as a ±1 assignment of the
compiled graph.  Because every reduction is exact per assignment, the
embedded cut's weight *is* the native objective mapped through the lifter's
affine constants — so native solvers and compiled-to-MAXCUT circuit solvers
score in the same cut-weight currency on the same leaderboard, with no
special-casing in the executor.

Racing a native solver on a graph of the wrong class (or a plain graph) is
a :class:`~repro.utils.validation.ValidationError` at solve time; the
``problems`` workload additionally rejects the pairing when the spec is
built.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.max2sat import max2sat_gw
from repro.algorithms.maxdicut import maxdicut_gw
from repro.algorithms.registry import SolverSpec, register_solver
from repro.cuts.cut import Cut, cut_weight
from repro.graphs.graph import Graph
from repro.problems.base import Lifter, Problem
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError

__all__ = ["native_instance"]


def native_instance(graph: Graph, kind: str) -> Tuple[Problem, Lifter]:
    """The native problem+lifter a compiled graph carries, checked for *kind*."""
    problem = getattr(graph, "problem", None)
    lifter = getattr(graph, "lifter", None)
    if problem is None or lifter is None:
        raise ValidationError(
            f"solver requires a compiled {kind} instance, but graph "
            f"{graph.name!r} is a plain graph; lower the problem with "
            f"repro.problems.compile_to_maxcut (or run it through a problem "
            f"suite / ProblemSource)"
        )
    if problem.kind != kind:
        raise ValidationError(
            f"solver requires a compiled {kind} instance, but graph "
            f"{graph.name!r} was compiled from a {problem.kind!r} problem"
        )
    return problem, lifter


def _embedded_cut(graph: Graph, lifter: Lifter, solution) -> Cut:
    """Wrap a native solution as a cut of the compiled graph it embeds into."""
    assignment = lifter.embed(solution)
    return Cut(
        assignment=assignment,
        weight=cut_weight(graph, assignment),
        graph_name=graph.name,
    )


def _solve_maxdicut_gw(
    graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs
) -> Cut:
    problem, lifter = native_instance(graph, "maxdicut")
    result = maxdicut_gw(problem.digraph, n_samples=n_samples, seed=seed, **kwargs)
    return _embedded_cut(graph, lifter, result.in_set)


def _solve_max2sat_gw(
    graph: Graph, n_samples: int = 100, seed: RandomState = None, **kwargs
) -> Cut:
    problem, lifter = native_instance(graph, "max2sat")
    result = max2sat_gw(problem.instance, n_samples=n_samples, seed=seed, **kwargs)
    return _embedded_cut(graph, lifter, result.assignment)


for _spec in (
    SolverSpec(
        key="maxdicut_gw", fn=_solve_maxdicut_gw, deterministic=False,
        budget="roundings", citation="GW95 §MAXDICUT",
        summary="native MAXDICUT SDP + v0-marker hyperplane rounding "
                "(compiled dicut instances only)",
        problem_classes=("maxdicut",),
    ),
    SolverSpec(
        key="max2sat_gw", fn=_solve_max2sat_gw, deterministic=False,
        budget="roundings", citation="GW95 §MAX2SAT",
        summary="native MAX2SAT SDP + v0-marker hyperplane rounding "
                "(compiled 2sat instances only)",
        problem_classes=("max2sat",),
    ),
):
    register_solver(_spec)
del _spec
