"""The five problem classes of the compiler IR, plus the QUBO↔Ising maps.

Every class wraps an existing substrate the repo already carried —
:class:`repro.ising.model.IsingModel`, :class:`repro.graphs.graph.Graph`,
:class:`repro.algorithms.maxdicut.DirectedGraph`,
:class:`repro.algorithms.max2sat.Max2SatInstance` — behind the uniform
:class:`repro.problems.base.Problem` interface so
:func:`repro.problems.compile_to_maxcut` can lower any of them onto the
MAXCUT solver stack.

Native solution representations
-------------------------------
========== ================ ===========================================
kind        direction        solution
========== ================ ===========================================
``qubo``    min              0/1 vector ``x`` (value ``x^T Q x``)
``ising``   min              ±1 spins (value ``energy + offset``)
``maxcut``  max              ±1 assignment (value = cut weight)
``maxdicut`` max             0/1 indicator of S (value = out-weight)
``max2sat`` max              boolean assignment (value = satisfied weight)
========== ================ ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.algorithms.max2sat import Max2SatInstance, satisfied_clauses
from repro.algorithms.maxdicut import DirectedGraph, dicut_value
from repro.cuts.cut import cut_weight, spins_from_bits
from repro.graphs.graph import Graph
from repro.ising.model import IsingModel, ising_energy
from repro.problems.base import Problem
from repro.utils.validation import (
    ValidationError,
    check_binary_vector,
    check_finite,
    check_spin_vector,
    check_square_matrix,
)

__all__ = [
    "Qubo",
    "IsingProblem",
    "MaxCutProblem",
    "MaxDiCutProblem",
    "MaxTwoSatProblem",
    "qubo_to_ising",
    "ising_to_qubo",
]


@dataclass(frozen=True, eq=False)
class Qubo(Problem):
    """Quadratic unconstrained binary optimisation: minimise ``x^T Q x``.

    ``matrix`` need not be symmetric (only the symmetric part matters for
    the objective) and its diagonal carries the linear terms, as usual for
    QUBO tool-chains targeting annealing hardware.
    """

    matrix: np.ndarray

    kind = "qubo"
    direction = "min"

    def __post_init__(self) -> None:
        matrix = check_square_matrix(
            np.asarray(self.matrix, dtype=np.float64), "matrix"
        )
        check_finite(matrix, "matrix")
        if matrix.shape[0] < 1:
            raise ValidationError("QUBO instances need at least one variable")
        object.__setattr__(self, "matrix", matrix)

    @property
    def n_variables(self) -> int:
        return int(self.matrix.shape[0])

    def objective(self, solution: np.ndarray) -> float:
        x = check_binary_vector(solution, self.n_variables, "x").astype(np.float64)
        return float(x @ self.matrix @ x)

    def solution_from_bits(self, bits: np.ndarray) -> np.ndarray:
        return check_binary_vector(bits, self.n_variables, "bits")

    def to_ising(self) -> "IsingProblem":
        """The equivalent Ising problem under ``x = (1 + s) / 2``."""
        return qubo_to_ising(self)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "matrix": self.matrix.tolist()}


@dataclass(frozen=True, eq=False)
class IsingProblem(Problem):
    """Weighted Ising instance: minimise ``H(s) = sum J ss + sum h s + offset``.

    Wraps :class:`repro.ising.model.IsingModel`; unlike the MAXCUT-derived
    models of :func:`repro.ising.model.maxcut_to_ising`, instances here may
    carry nonzero external ``fields`` — the compiler handles them with the
    standard ancilla-spin gadget — and the model's ``offset`` is read as the
    constant term of the Hamiltonian.
    """

    model: IsingModel

    kind = "ising"
    direction = "min"

    def __post_init__(self) -> None:
        if not isinstance(self.model, IsingModel):
            raise ValidationError(
                f"model must be an IsingModel, got {type(self.model).__name__}"
            )

    @property
    def n_variables(self) -> int:
        return int(self.model.n_spins)

    @property
    def has_fields(self) -> bool:
        """Whether any external field is nonzero (ancilla gadget needed)."""
        return bool(self.model.fields.size and np.any(self.model.fields != 0.0))

    def objective(self, solution: np.ndarray) -> float:
        spins = check_spin_vector(solution, self.n_variables, "spins")
        return float(ising_energy(self.model, spins) + self.model.offset)

    def solution_from_bits(self, bits: np.ndarray) -> np.ndarray:
        return spins_from_bits(check_binary_vector(bits, self.n_variables, "bits"))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "n_spins": self.n_variables,
            "edges": self.model.edges.tolist(),
            "couplings": self.model.couplings.tolist(),
            "fields": self.model.fields.tolist(),
            "offset": float(self.model.offset),
        }


@dataclass(frozen=True, eq=False)
class MaxCutProblem(Problem):
    """MAXCUT itself — the identity compilation (useful as the IR's anchor)."""

    graph: Graph

    kind = "maxcut"
    direction = "max"

    def __post_init__(self) -> None:
        if not isinstance(self.graph, Graph):
            raise ValidationError(
                f"graph must be a Graph, got {type(self.graph).__name__}"
            )

    @property
    def n_variables(self) -> int:
        return int(self.graph.n_vertices)

    def objective(self, solution: np.ndarray) -> float:
        return cut_weight(self.graph, solution)

    def solution_from_bits(self, bits: np.ndarray) -> np.ndarray:
        return spins_from_bits(check_binary_vector(bits, self.n_variables, "bits"))

    def to_dict(self) -> dict:
        edges = [
            [int(u), int(v), float(w)]
            for (u, v), w in zip(self.graph.edges, self.graph.edge_weights)
        ]
        return {
            "kind": self.kind,
            "n_vertices": self.n_variables,
            "edges": edges,
            "name": self.graph.name,
        }


@dataclass(frozen=True, eq=False)
class MaxDiCutProblem(Problem):
    """Maximum directed cut: maximise the weight of arcs leaving S."""

    digraph: DirectedGraph

    kind = "maxdicut"
    direction = "max"

    def __post_init__(self) -> None:
        if not isinstance(self.digraph, DirectedGraph):
            raise ValidationError(
                f"digraph must be a DirectedGraph, got {type(self.digraph).__name__}"
            )

    @property
    def n_variables(self) -> int:
        return int(self.digraph.n_vertices)

    def objective(self, solution: np.ndarray) -> float:
        return dicut_value(self.digraph, np.asarray(solution))

    def solution_from_bits(self, bits: np.ndarray) -> np.ndarray:
        return check_binary_vector(bits, self.n_variables, "in_set")

    def to_dict(self) -> dict:
        arcs = [
            [int(u), int(v), float(w)]
            for (u, v), w in zip(self.digraph.arcs, self.digraph.arc_weights)
        ]
        return {
            "kind": self.kind,
            "n_vertices": self.n_variables,
            "arcs": arcs,
            "name": self.digraph.name,
        }


@dataclass(frozen=True, eq=False)
class MaxTwoSatProblem(Problem):
    """Weighted MAX2SAT: maximise the total weight of satisfied clauses."""

    instance: Max2SatInstance

    kind = "max2sat"
    direction = "max"

    def __post_init__(self) -> None:
        if not isinstance(self.instance, Max2SatInstance):
            raise ValidationError(
                f"instance must be a Max2SatInstance, "
                f"got {type(self.instance).__name__}"
            )

    @property
    def n_variables(self) -> int:
        return int(self.instance.n_variables)

    def objective(self, solution: np.ndarray) -> float:
        return satisfied_clauses(self.instance, np.asarray(solution))

    def solution_from_bits(self, bits: np.ndarray) -> np.ndarray:
        return check_binary_vector(bits, self.n_variables, "bits").astype(bool)

    def to_dict(self) -> dict:
        clauses = [
            [int(c.literal1), int(c.literal2), float(c.weight)]
            for c in self.instance.clauses
        ]
        return {
            "kind": self.kind,
            "n_variables": self.n_variables,
            "clauses": clauses,
        }


# ---------------------------------------------------------------------------
# QUBO ↔ Ising linear maps (x = (1 + s) / 2)
# ---------------------------------------------------------------------------


def qubo_to_ising(qubo: Qubo) -> IsingProblem:
    """The exact Ising equivalent of a QUBO instance.

    Substituting ``x_i = (1 + s_i) / 2`` into ``x^T Q x`` gives, for every
    assignment, ``x^T Q x = sum J_ij s_i s_j + sum h_i s_i + c`` with

    ``q_ij = Q_ij + Q_ji``, ``J_ij = q_ij / 4``,
    ``h_i = Q_ii / 2 + sum_{j != i} q_ij / 4``,
    ``c = sum_i Q_ii / 2 + sum_{i<j} q_ij / 4``,

    so the returned model's ``offset`` carries the constant and
    ``IsingProblem.objective`` equals ``Qubo.objective`` on corresponding
    solutions — exactly, per assignment.
    """
    Q = qubo.matrix
    n = qubo.n_variables
    diagonal = np.diag(Q).copy()
    pair = Q + Q.T
    np.fill_diagonal(pair, 0.0)
    fields = diagonal / 2.0 + pair.sum(axis=1) / 4.0
    iu, ju = np.triu_indices(n, k=1)
    mask = pair[iu, ju] != 0.0
    edges = np.stack([iu[mask], ju[mask]], axis=1).astype(np.int64)
    couplings = pair[iu[mask], ju[mask]] / 4.0
    constant = float(diagonal.sum() / 2.0 + pair[iu, ju].sum() / 4.0)
    return IsingProblem(IsingModel(
        n_spins=n,
        edges=edges,
        couplings=couplings,
        fields=fields,
        offset=constant,
    ))


def ising_to_qubo(problem: IsingProblem) -> Tuple[Qubo, float]:
    """The QUBO equivalent of an Ising problem, plus its residual constant.

    Returns ``(qubo, constant)`` such that for every spin assignment ``s``
    and its bit image ``x = (1 + s) / 2``::

        problem.objective(s) == qubo.objective(x) + constant

    (a QUBO matrix cannot absorb an arbitrary constant, so it is returned
    separately).  Inverse of :func:`qubo_to_ising` up to that constant.
    """
    model = problem.model
    n = model.n_spins
    Q = np.zeros((n, n))
    row_coupling = np.zeros(n)
    if model.n_couplings:
        u, v = model.edges[:, 0], model.edges[:, 1]
        # np.add.at, not fancy-indexed +=: IsingModel permits repeated
        # (u, v) pairs, whose couplings must accumulate like ising_energy's.
        np.add.at(Q, (u, v), 4.0 * model.couplings)
        np.add.at(row_coupling, u, model.couplings)
        np.add.at(row_coupling, v, model.couplings)
    diagonal = 2.0 * model.fields - 2.0 * row_coupling
    Q[np.arange(n), np.arange(n)] = diagonal
    # Constant the QUBO form produces on its own (see qubo_to_ising); the
    # residual is whatever of the Ising constant it misses.
    produced = float(diagonal.sum() / 2.0 + model.couplings.sum())
    constant = float(model.offset) - produced
    return Qubo(matrix=Q), constant
