"""``ProblemSource``: the problem-instance counterpart of ``GraphSource``.

A :class:`ProblemSource` *is a* :class:`repro.workloads.spec.GraphSource`
(``WorkloadSpec.graphs`` accepts it unchanged), but it is declared over
problem instances: ``build`` compiles them to MAXCUT through
:func:`repro.problems.compile.compile_to_maxcut` (certified per instance),
and ``build_problems`` hands back the native instances.  Two kinds:

``"suite"``
    A named problem suite (:mod:`repro.problems.suites`).  Persistable —
    this is the form ``repro merge`` rebuilds from a shard manifest.
``"explicit"``
    An in-memory list of :class:`~repro.problems.base.Problem` instances
    (like explicit graph lists, not persistable beyond names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.problems.base import Problem
from repro.problems.compile import CompiledGraph, compile_to_maxcut
from repro.problems.suites import (
    ProblemSuite,
    build_problem_suite,
    compiled_problem_graphs,
    get_problem_suite,
)
from repro.utils.validation import ValidationError
from repro.workloads.spec import GraphSource

__all__ = ["ProblemSource"]

#: Kinds a problem source supports (a strict subset of graph-source kinds).
PROBLEM_SOURCE_KINDS = ("suite", "explicit")


@dataclass(frozen=True)
class ProblemSource(GraphSource):
    """Declarative source of problem instances, lowered to MAXCUT on build."""

    problems: Tuple[Problem, ...] = ()

    def validate(self) -> None:
        if self.kind not in PROBLEM_SOURCE_KINDS:
            raise ValidationError(
                f"problem source kind must be one of {PROBLEM_SOURCE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "suite":
            if not (isinstance(self.suite, (str, ProblemSuite))):
                raise ValidationError(
                    "suite problem sources need a problem-suite key or a "
                    f"ProblemSuite, got {type(self.suite).__name__}"
                )
        if self.kind == "explicit":
            if not self.problems:
                raise ValidationError(
                    "explicit problem sources need at least one problem"
                )
            for problem in self.problems:
                if not isinstance(problem, Problem):
                    raise ValidationError(
                        f"explicit problem sources hold Problem instances, "
                        f"got {type(problem).__name__}"
                    )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_suite(cls, suite) -> "ProblemSource":
        """A named problem suite (or a ``ProblemSuite`` instance)."""
        return cls(kind="suite", suite=suite)

    @classmethod
    def explicit(cls, problems: Sequence[Problem]) -> "ProblemSource":
        """An in-memory list of problem instances."""
        return cls(kind="explicit", problems=tuple(problems))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProblemSource":
        """Rebuild a source from its :meth:`to_dict` form (manifest round-trip)."""
        kind = data.get("kind")
        if kind == "suite":
            return cls.from_suite(str(data["suite"]))
        raise ValidationError(
            f"problem source kind {kind!r} cannot be rebuilt from a dict "
            f"(explicit problem lists are not persistable)"
        )

    # -- behaviour ----------------------------------------------------------

    @property
    def label(self) -> str:
        if self.kind == "suite":
            return self.suite if isinstance(self.suite, str) else self.suite.key
        return "problems"

    @property
    def problem_kind(self) -> str:
        """Problem class of the source's instances (homogeneous by contract)."""
        if self.kind == "suite":
            suite = (
                get_problem_suite(self.suite)
                if isinstance(self.suite, str) else self.suite
            )
            return suite.kind
        kinds = {problem.kind for problem in self.problems}
        if len(kinds) != 1:
            raise ValidationError(
                f"explicit problem sources must be homogeneous, got kinds {sorted(kinds)}"
            )
        return next(iter(kinds))

    def build_problems(self, seed: Optional[int]) -> List[Problem]:
        """Materialise the native problem instances (deterministic in *seed*)."""
        root = 0 if seed is None else int(seed)
        if self.kind == "suite":
            if isinstance(self.suite, str):
                return build_problem_suite(self.suite, seed=root)
            return list(self.suite.build(root))
        return list(self.problems)

    def build(self, seed: Optional[int]) -> List[CompiledGraph]:
        """Compile the instances to certified MAXCUT graphs."""
        root = 0 if seed is None else int(seed)
        if self.kind == "suite":
            # The exact compilation path of the suite's registered graph
            # twin, so either spelling of the source builds byte-identical
            # graphs (shard-merge bit-identity).
            return compiled_problem_graphs(self.suite, seed=root)
        graphs = []
        for j, problem in enumerate(self.problems):
            graph, _ = compile_to_maxcut(
                problem, name=f"{problem.kind}-{j}-n{problem.n_variables}",
            )
            graphs.append(graph)
        return graphs

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "problems": True}
        if self.kind == "suite":
            out["suite"] = self.label
        else:
            out["names"] = [
                f"{problem.kind}-{j}-n{problem.n_variables}"
                for j, problem in enumerate(self.problems)
            ]
        return out
