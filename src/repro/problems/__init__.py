"""Problem compiler: one IR, many problem classes, one MAXCUT solver stack.

The paper's Discussion (§VI) observes that the LIF-GW sampling circuit is
not MAXCUT-specific — the same hardware rounds MAXDICUT and MAX2SAT
relaxations.  This package operationalises that observation as a small
compiler: declarative :class:`Problem` instances (:class:`Qubo`,
:class:`IsingProblem`, :class:`MaxCutProblem`, :class:`MaxDiCutProblem`,
:class:`MaxTwoSatProblem`) are lowered by :func:`compile_to_maxcut` onto
weighted MAXCUT graphs via exact gadget reductions, with a :class:`Lifter`
decoding every cut back to a native solution and
:func:`verify_certificate` asserting objective-value preservation on every
compile and every solve.

Because a compiled instance *is* a :class:`repro.graphs.graph.Graph`, the
batched engine, the capability-routed executor, the shard adapters, and the
bench gate all apply unchanged — problem suites (``qubo-small``,
``ising-small``, ``dicut-small``, ``2sat-small``) register beside the graph
suites, :class:`ProblemSource` slots into ``WorkloadSpec.graphs``, and the
``problems`` workload plus ``repro solve --problem`` close the loop.  See
DESIGN.md §"Problem compiler".
"""

from repro.problems.base import (
    Certificate,
    CertificateError,
    Lifter,
    Problem,
    brute_force,
    verify_certificate,
)
from repro.problems.compile import (
    CompiledGraph,
    compile_to_maxcut,
    register_reduction,
)
from repro.problems.io import load_problem, problem_from_dict, save_problem
from repro.problems.ir import (
    IsingProblem,
    MaxCutProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    Qubo,
    ising_to_qubo,
    qubo_to_ising,
)
from repro.problems.suites import (
    ProblemSuite,
    build_problem_suite,
    compiled_problem_graphs,
    get_problem_suite,
    list_problem_suites,
    random_problem,
    register_problem_suite,
)
from repro.problems import solvers as _solvers  # registers native solvers
from repro.problems.solvers import native_instance
from repro.problems.source import ProblemSource

__all__ = [
    "Problem",
    "Lifter",
    "Certificate",
    "CertificateError",
    "verify_certificate",
    "brute_force",
    "Qubo",
    "IsingProblem",
    "MaxCutProblem",
    "MaxDiCutProblem",
    "MaxTwoSatProblem",
    "qubo_to_ising",
    "ising_to_qubo",
    "CompiledGraph",
    "compile_to_maxcut",
    "register_reduction",
    "ProblemSuite",
    "register_problem_suite",
    "get_problem_suite",
    "list_problem_suites",
    "build_problem_suite",
    "compiled_problem_graphs",
    "random_problem",
    "ProblemSource",
    "native_instance",
    "problem_from_dict",
    "load_problem",
    "save_problem",
]
