"""Problem suites: named, seed-deterministic collections of problem instances.

The problem-side twin of :mod:`repro.arena.suite`: a
:class:`ProblemSuite` is a deterministic function from a root seed to a list
of :class:`~repro.problems.base.Problem` instances, and registering one also
registers a same-key :class:`~repro.arena.suite.GraphSuite` whose graphs are
the suite's instances *compiled* to MAXCUT — so ``qubo-small`` & friends sit
beside ``er-small`` in every surface that takes a suite key (the arena, the
``problems`` workload, ``repro compare``), and the sharded executor rebuilds
identical compiled graphs on every shard.

Seeding follows the paired convention used everywhere else
(:func:`repro.utils.rng.paired_seed`): instance *j* of the suite tagged *t*
derives all of its randomness from
``SeedSequence(seed, spawn_key=(_SPAWN_NAMESPACE, t, j))``, with a namespace
constant (> the 10^6 micro-resolution probability keys of
:func:`repro.utils.rng.grid_cell_key`) so problem-suite streams can never
collide with graph-generator or trial streams of the same root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.algorithms.max2sat import random_max2sat_instance
from repro.algorithms.maxdicut import random_digraph
from repro.ising.model import IsingModel
from repro.problems.base import Problem
from repro.problems.compile import CompiledGraph, compile_to_maxcut
from repro.problems.ir import (
    IsingProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    Qubo,
)
from repro.utils.rng import RandomState, paired_seed, spawn_generators
from repro.utils.validation import ValidationError

__all__ = [
    "ProblemSuite",
    "PROBLEM_SUITES",
    "register_problem_suite",
    "get_problem_suite",
    "list_problem_suites",
    "build_problem_suite",
    "compiled_problem_graphs",
    "problem_seed",
    "random_problem",
]

#: Builder signature: root seed -> problems (same seed, same instances).
ProblemBuilder = Callable[[int], List[Problem]]

#: Leading spawn-key element namespacing problem-suite streams away from the
#: (graph_index, trial) and (n, p-key, j) keys used elsewhere (> 10^6, the
#: ceiling of grid_cell_key's probability component).
_SPAWN_NAMESPACE = 2_000_003

#: Suite tags (second spawn-key element), one per built-in problem family.
_SUITE_TAGS = {"qubo": 1, "ising": 2, "maxdicut": 3, "max2sat": 4}


def problem_seed(seed: Optional[int], tag: int, index: int) -> np.random.SeedSequence:
    """Paired seed for instance *index* of the problem family tagged *tag*."""
    return paired_seed(seed, _SPAWN_NAMESPACE, tag, index)


def _instance_rng(seed: int, kind: str, index: int) -> np.random.Generator:
    # First spawned child, matching the GraphSource generator convention.
    return spawn_generators(problem_seed(seed, _SUITE_TAGS[kind], index), 1)[0]


@dataclass(frozen=True)
class ProblemSuite:
    """A named, seed-deterministic collection of problem instances.

    Attributes
    ----------
    key:
        Registry key (shared with the compiled twin in the arena suite
        registry).
    description:
        One-line description for listings.
    kind:
        Problem class of every instance in the suite (homogeneous suites
        keep solver-capability routing trivial).
    builder:
        ``seed -> [Problem, ...]``; must be deterministic in the seed.
    """

    key: str
    description: str
    kind: str
    builder: ProblemBuilder

    def build(self, seed: int = 0) -> List[Problem]:
        """Materialise the suite's problem instances for *seed*."""
        problems = list(self.builder(int(seed)))
        if not problems:
            raise ValidationError(f"problem suite {self.key!r} built an empty list")
        for problem in problems:
            if problem.kind != self.kind:
                raise ValidationError(
                    f"problem suite {self.key!r} declares kind {self.kind!r} "
                    f"but built a {problem.kind!r} instance"
                )
        return problems


#: Suite-key → :class:`ProblemSuite` registry.
PROBLEM_SUITES: Dict[str, ProblemSuite] = {}


def compiled_problem_graphs(
    suite: Union[str, ProblemSuite], seed: int = 0
) -> List[CompiledGraph]:
    """Compile suite instances to MAXCUT graphs (named ``<key>-<j>-n<vars>``).

    The single compilation path shared by the registered graph-suite twin
    and :class:`repro.problems.source.ProblemSource`, so every surface that
    builds the suite gets byte-identical graphs for a given seed (the
    sharded-merge bit-identity contract).  Every compile is certified on
    seed-deterministic probe assignments.
    """
    if isinstance(suite, str):
        suite = get_problem_suite(suite)
    graphs = []
    for j, problem in enumerate(suite.build(seed)):
        graph, _ = compile_to_maxcut(
            problem,
            name=f"{suite.key}-{j}-n{problem.n_variables}",
            verify=True,
            seed=problem_seed(seed, _SUITE_TAGS.get(suite.kind, 0), j),
        )
        graphs.append(graph)
    return graphs


def register_problem_suite(
    suite: ProblemSuite, overwrite: bool = False
) -> ProblemSuite:
    """Register *suite* and its compiled graph-suite twin (collisions raise).

    The twin is a same-key :class:`repro.arena.suite.GraphSuite` building
    :func:`compiled_problem_graphs`, which is what lets problem suites ride
    every graph-suite surface (arena races, ``GraphSource.from_suite``,
    shard adapters) unchanged.
    """
    from repro.arena.suite import GraphSuite, register_suite

    if suite.key in PROBLEM_SUITES and not overwrite:
        raise ValidationError(
            f"problem suite {suite.key!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    PROBLEM_SUITES[suite.key] = suite
    register_suite(
        GraphSuite(
            key=suite.key,
            description=f"[{suite.kind}→maxcut] {suite.description}",
            builder=lambda seed, _suite=suite: compiled_problem_graphs(_suite, seed),
        ),
        overwrite=overwrite,
    )
    return suite


def list_problem_suites() -> List[str]:
    """All registered problem-suite keys, sorted."""
    return sorted(PROBLEM_SUITES.keys())


def get_problem_suite(key: str) -> ProblemSuite:
    """Look up a problem suite; unknown keys raise with the available list."""
    try:
        return PROBLEM_SUITES[key]
    except KeyError:
        raise ValidationError(
            f"unknown problem suite {key!r}; available: {list_problem_suites()}"
        ) from None


def build_problem_suite(key: str, seed: int = 0) -> List[Problem]:
    """Build the problem instances of suite *key* for *seed* (deterministic)."""
    return get_problem_suite(key).build(seed)


# ---------------------------------------------------------------------------
# Instance generators and built-in suites
# ---------------------------------------------------------------------------


def _random_qubo(n: int, rng: np.random.Generator) -> Qubo:
    # Dense Gaussian couplings with a negative-leaning diagonal, the classic
    # "random QUBO" benchmark shape (frustrated, non-trivial optimum).
    matrix = rng.normal(0.0, 1.0, size=(n, n))
    matrix[np.arange(n), np.arange(n)] = rng.normal(-0.5, 1.0, size=n)
    return Qubo(matrix=matrix)


def _random_ising(n: int, p: float, rng: np.random.Generator) -> IsingProblem:
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(iu.shape[0]) < p
    edges = np.stack([iu[mask], ju[mask]], axis=1).astype(np.int64)
    couplings = rng.normal(0.0, 1.0, size=int(mask.sum()))
    fields = rng.normal(0.0, 0.5, size=n)
    return IsingProblem(IsingModel(
        n_spins=n, edges=edges, couplings=couplings, fields=fields, offset=0.0,
    ))


def random_problem(
    kind: str,
    seed: RandomState = 0,
    n_variables: Optional[int] = None,
    index: int = 0,
) -> Problem:
    """One seed-deterministic random instance of *kind* (CLI / bench default).

    Uses the same paired-seed derivation as the built-in suites, so
    ``random_problem(kind, seed, n, j)`` equals instance *j* of a suite that
    generated size-*n* instances of that family.
    """
    kind = {"dicut": "maxdicut", "2sat": "max2sat"}.get(kind, kind)
    if kind not in _SUITE_TAGS:
        raise ValidationError(
            f"unknown problem kind {kind!r}; known: {sorted(_SUITE_TAGS)} "
            f"(aliases: dicut, 2sat)"
        )
    if isinstance(seed, (int, np.integer)) or seed is None:
        rng = _instance_rng(0 if seed is None else int(seed), kind, index)
    else:
        rng = spawn_generators(seed, 1)[0]
    n = int(n_variables) if n_variables is not None else 16
    if kind == "qubo":
        return _random_qubo(n, rng)
    if kind == "ising":
        return _random_ising(n, 0.35, rng)
    if kind == "maxdicut":
        return MaxDiCutProblem(
            random_digraph(n, 0.25, seed=rng, weighted=True, name=f"digraph-{n}")
        )
    return MaxTwoSatProblem(
        random_max2sat_instance(n, 3 * n, seed=rng, weighted=True)
    )


def _build_qubo_small(seed: int) -> List[Problem]:
    return [
        _random_qubo(n, _instance_rng(seed, "qubo", j))
        for j, n in enumerate((12, 16, 20))
    ]


def _build_ising_small(seed: int) -> List[Problem]:
    return [
        _random_ising(n, 0.35, _instance_rng(seed, "ising", j))
        for j, n in enumerate((12, 16, 20))
    ]


def _build_dicut_small(seed: int) -> List[Problem]:
    problems: List[Problem] = []
    for j, n in enumerate((12, 16, 20)):
        rng = _instance_rng(seed, "maxdicut", j)
        problems.append(MaxDiCutProblem(random_digraph(
            n, 0.25, seed=rng, weighted=(j == 2), name=f"digraph-{n}",
        )))
    return problems


def _build_2sat_small(seed: int) -> List[Problem]:
    problems: List[Problem] = []
    for j, (n, m) in enumerate(((10, 30), (14, 42), (18, 54))):
        rng = _instance_rng(seed, "max2sat", j)
        problems.append(MaxTwoSatProblem(random_max2sat_instance(
            n, m, seed=rng, weighted=(j == 2),
        )))
    return problems


for _suite in (
    ProblemSuite("qubo-small", "3 random dense QUBO instances, n=12..20",
                 "qubo", _build_qubo_small),
    ProblemSuite("ising-small", "3 random field-carrying Ising instances, n=12..20",
                 "ising", _build_ising_small),
    ProblemSuite("dicut-small", "3 random digraphs, n=12..20 (one weighted)",
                 "maxdicut", _build_dicut_small),
    ProblemSuite("2sat-small", "3 random MAX2SAT instances, n=10..18 (one weighted)",
                 "max2sat", _build_2sat_small),
):
    register_problem_suite(_suite)
del _suite
