"""``compile_to_maxcut``: gadget reductions lowering every IR class to MAXCUT.

Every reduction is expressed through one tiny algebra.  A problem's objective
(up to sign) is written as a *score form* over ±1 variables::

    score(s) = const + sum_{i<j} c_ij s_i s_j

and a weighted graph with edge weights ``w_ij = -2 c_ij`` satisfies, for
every assignment,

    cut(s) = -sum c_ij + sum c_ij s_i s_j
    =>  score(s) = cut(s) + const + sum c_ij.

Maximising the score is therefore exactly maximising the cut, and the native
objective is the affine function ``sign * (cut + const + sum c)`` of the cut
weight — the ``value_scale`` / ``value_offset`` the :class:`Lifter` carries
(``sign = +1`` for maximisation problems, ``-1`` for minimisation).

Gadgets per problem class
-------------------------
``maxcut``
    Identity (edge weights copied verbatim).
``ising``
    Fields handled by the standard ancilla-spin gadget: spin ``s_0`` is
    prepended and every field ``h_i`` becomes a coupling ``J_{0i} = h_i``;
    ``H(s_0 · s) = H'(s_0, s)`` for every assignment, so lifting multiplies
    the spins by ``s_0``.  Field-free models skip the ancilla.
``qubo``
    The exact linear map :func:`repro.problems.ir.qubo_to_ising`, then the
    Ising gadget; the lifter converts spins back to bits.
``maxdicut`` / ``max2sat``
    The augmented ``v_0`` formulations already used by
    :func:`repro.algorithms.maxdicut.maxdicut_gw` and
    :func:`repro.algorithms.max2sat.max2sat_gw`: a marker vertex ``v_0``
    fixes the "true" / "inside S" direction, each arc or clause contributes
    its quadratic indicator, and lifting compares every vertex's side with
    the marker's.

Compiled graphs are :class:`CompiledGraph` instances — plain
:class:`repro.graphs.graph.Graph` objects (the whole solver stack applies
unchanged) that additionally carry their native problem and lifter, which is
how problem-native solvers registered with ``problem_classes`` reach the
original instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cuts.cut import bits_from_spins, spins_from_bits
from repro.graphs.graph import Graph
from repro.problems.base import Lifter, Problem, verify_certificate
from repro.problems.ir import (
    IsingProblem,
    MaxCutProblem,
    MaxDiCutProblem,
    MaxTwoSatProblem,
    Qubo,
)
from repro.utils.rng import RandomState
from repro.utils.validation import ValidationError, check_binary_vector

__all__ = [
    "CompiledGraph",
    "compile_to_maxcut",
    "register_reduction",
    "IdentityLifter",
    "SpinLifter",
    "QuboLifter",
    "MarkerLifter",
]


class CompiledGraph(Graph):
    """A compiled MAXCUT instance: a :class:`Graph` carrying its provenance.

    Everywhere a ``Graph`` goes — circuits, the batched engine, arena
    suites, shard units — a ``CompiledGraph`` goes identically; the two
    extra slots only exist so problem-native solvers (and the certificate
    check) can reach the instance the graph was lowered from.
    """

    __slots__ = ("problem", "lifter")

    def __init__(
        self,
        n_vertices: int,
        edges: Iterable[Sequence[float]],
        name: str,
        problem: Problem,
        lifter: "Lifter",
    ) -> None:
        super().__init__(n_vertices, edges, name=name)
        self.problem = problem
        self.lifter = lifter


# ---------------------------------------------------------------------------
# Lifters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IdentityLifter(Lifter):
    """MAXCUT→MAXCUT: the assignment *is* the solution."""

    problem: Problem
    value_scale: float = 1.0
    value_offset: float = 0.0

    def lift(self, assignment: np.ndarray) -> np.ndarray:
        return np.asarray(assignment, dtype=np.int8)

    def embed(self, solution: np.ndarray) -> np.ndarray:
        return np.asarray(solution, dtype=np.int8)


@dataclass(frozen=True)
class SpinLifter(Lifter):
    """Ising→MAXCUT: optional ancilla spin at vertex 0 absorbing the fields.

    With the ancilla, vertex 0 is the gadget spin and vertex ``i + 1`` is
    native spin ``i``; lifting multiplies by the ancilla's sign (the gadget
    identity ``H(s_0 · s) = H'(s_0, s)``).  Without fields the assignment is
    the spin vector itself.
    """

    problem: Problem
    value_scale: float
    value_offset: float
    has_ancilla: bool

    def lift(self, assignment: np.ndarray) -> np.ndarray:
        assignment = np.asarray(assignment, dtype=np.int8)
        if self.has_ancilla:
            return (assignment[0] * assignment[1:]).astype(np.int8)
        return assignment

    def embed(self, solution: np.ndarray) -> np.ndarray:
        spins = np.asarray(solution, dtype=np.int8)
        if self.has_ancilla:
            return np.concatenate([np.ones(1, dtype=np.int8), spins])
        return spins


@dataclass(frozen=True)
class QuboLifter(Lifter):
    """QUBO→MAXCUT: the Ising spin lift composed with the bit↔spin map."""

    problem: Problem
    value_scale: float
    value_offset: float
    spin_lifter: SpinLifter

    def lift(self, assignment: np.ndarray) -> np.ndarray:
        return bits_from_spins(self.spin_lifter.lift(assignment))

    def embed(self, solution: np.ndarray) -> np.ndarray:
        bits = check_binary_vector(solution, self.problem.n_variables, "x")
        return self.spin_lifter.embed(spins_from_bits(bits))


@dataclass(frozen=True)
class MarkerLifter(Lifter):
    """MAXDICUT/MAX2SAT→MAXCUT: marker vertex 0 fixes the positive side.

    Vertex ``i + 1`` carries native variable ``i``; a variable is "in S" /
    "true" exactly when its vertex lands on the marker's side of the cut.
    """

    problem: Problem
    value_scale: float
    value_offset: float
    as_bool: bool = False

    def lift(self, assignment: np.ndarray) -> np.ndarray:
        assignment = np.asarray(assignment)
        indicator = (assignment[1:] == assignment[0]).astype(np.int8)
        return indicator.astype(bool) if self.as_bool else indicator

    def embed(self, solution: np.ndarray) -> np.ndarray:
        indicator = np.asarray(solution).astype(np.int8)
        spins = spins_from_bits(indicator)
        return np.concatenate([np.ones(1, dtype=np.int8), spins])


# ---------------------------------------------------------------------------
# The score-form accumulator shared by every gadget
# ---------------------------------------------------------------------------


class _ScoreForm:
    """Accumulates ``const + sum c_ij s_i s_j`` and renders it as edges."""

    def __init__(self, n_vertices: int) -> None:
        self.n_vertices = int(n_vertices)
        self.const = 0.0
        self._coeffs: Dict[Tuple[int, int], float] = {}

    def add_constant(self, value: float) -> None:
        self.const += float(value)

    def add_pair(self, i: int, j: int, coefficient: float) -> None:
        if i == j:
            # s_i^2 == 1: a diagonal coefficient is just a constant.
            self.const += float(coefficient)
            return
        key = (i, j) if i < j else (j, i)
        self._coeffs[key] = self._coeffs.get(key, 0.0) + float(coefficient)

    def edges_and_offset(self) -> Tuple[List[Tuple[int, int, float]], float]:
        """Edge list (``w = -2c``, zero-coefficient pairs dropped) and the
        additive constant such that ``score(s) = cut(s) + offset``."""
        edges = [
            (i, j, -2.0 * c) for (i, j), c in sorted(self._coeffs.items())
            if c != 0.0
        ]
        coefficient_sum = sum(self._coeffs.values())
        return edges, self.const + coefficient_sum


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _compile_maxcut(problem: MaxCutProblem, name: str) -> CompiledGraph:
    graph = problem.graph
    edges = [
        (int(u), int(v), float(w))
        for (u, v), w in zip(graph.edges, graph.edge_weights)
    ]
    lifter = IdentityLifter(problem=problem)
    return CompiledGraph(graph.n_vertices, edges, name, problem, lifter)


def _ising_score_form(problem: IsingProblem) -> Tuple[_ScoreForm, bool]:
    """Score form of ``-H`` (minimisation → maximise the negated energy)."""
    model = problem.model
    ancilla = problem.has_fields
    shift = 1 if ancilla else 0
    form = _ScoreForm(model.n_spins + shift)
    form.add_constant(-float(model.offset))
    for (u, v), coupling in zip(model.edges, model.couplings):
        form.add_pair(int(u) + shift, int(v) + shift, -float(coupling))
    if ancilla:
        for i, field in enumerate(model.fields):
            if field != 0.0:
                form.add_pair(0, i + 1, -float(field))
    return form, ancilla


def _compile_ising(problem: IsingProblem, name: str) -> CompiledGraph:
    form, ancilla = _ising_score_form(problem)
    edges, offset = form.edges_and_offset()
    lifter = SpinLifter(
        problem=problem,
        value_scale=-1.0,
        value_offset=-offset,
        has_ancilla=ancilla,
    )
    return CompiledGraph(form.n_vertices, edges, name, problem, lifter)


def _compile_qubo(problem: Qubo, name: str) -> CompiledGraph:
    ising = problem.to_ising()
    form, ancilla = _ising_score_form(ising)
    edges, offset = form.edges_and_offset()
    spin_lifter = SpinLifter(
        problem=ising, value_scale=-1.0, value_offset=-offset,
        has_ancilla=ancilla,
    )
    lifter = QuboLifter(
        problem=problem,
        value_scale=-1.0,
        value_offset=-offset,
        spin_lifter=spin_lifter,
    )
    return CompiledGraph(form.n_vertices, edges, name, problem, lifter)


def _compile_maxdicut(problem: MaxDiCutProblem, name: str) -> CompiledGraph:
    # Arc (u, v, w) leaves S iff x_u = x_0 and x_v != x_0:
    # w * (1 + x0·xu - x0·xv - xu·xv) / 4 — the augmented formulation
    # maxdicut_gw relaxes, written as a score form.
    digraph = problem.digraph
    form = _ScoreForm(digraph.n_vertices + 1)
    for (u, v), w in zip(digraph.arcs, digraph.arc_weights):
        w = float(w)
        form.add_constant(w / 4.0)
        form.add_pair(0, int(u) + 1, w / 4.0)
        form.add_pair(0, int(v) + 1, -w / 4.0)
        form.add_pair(int(u) + 1, int(v) + 1, -w / 4.0)
    edges, offset = form.edges_and_offset()
    lifter = MarkerLifter(
        problem=problem, value_scale=1.0, value_offset=offset, as_bool=False,
    )
    return CompiledGraph(form.n_vertices, edges, name, problem, lifter)


def _compile_max2sat(problem: MaxTwoSatProblem, name: str) -> CompiledGraph:
    # Clause (l1 ∨ l2) of weight w: satisfied weight
    # w * (3 + a + b - a·b) / 4 with a = sign1·x0·x_{v1}, b = sign2·x0·x_{v2}
    # — the augmented formulation max2sat_gw relaxes.  Unit clauses (and
    # duplicated literals) reduce to w (1 + a) / 2; tautologies (x ∨ ¬x)
    # are constants.
    instance = problem.instance
    form = _ScoreForm(instance.n_variables + 1)
    for clause in instance.clauses:
        w = float(clause.weight)
        v1 = abs(clause.literal1) - 1
        s1 = 1.0 if clause.literal1 > 0 else -1.0
        if clause.literal2 == 0:
            unit, v2, s2 = True, v1, s1
        else:
            v2 = abs(clause.literal2) - 1
            s2 = 1.0 if clause.literal2 > 0 else -1.0
            if v2 == v1 and s2 == s1:
                unit = True
            elif v2 == v1:
                form.add_constant(w)  # tautology: always satisfied
                continue
            else:
                unit = False
        if unit:
            form.add_constant(w / 2.0)
            form.add_pair(0, v1 + 1, w * s1 / 2.0)
        else:
            form.add_constant(3.0 * w / 4.0)
            form.add_pair(0, v1 + 1, w * s1 / 4.0)
            form.add_pair(0, v2 + 1, w * s2 / 4.0)
            form.add_pair(v1 + 1, v2 + 1, -w * s1 * s2 / 4.0)
    edges, offset = form.edges_and_offset()
    lifter = MarkerLifter(
        problem=problem, value_scale=1.0, value_offset=offset, as_bool=True,
    )
    return CompiledGraph(form.n_vertices, edges, name, problem, lifter)


#: kind → reduction registry (extensible via :func:`register_reduction`).
_REDUCTIONS: Dict[str, Callable[[Problem, str], CompiledGraph]] = {
    "maxcut": _compile_maxcut,
    "ising": _compile_ising,
    "qubo": _compile_qubo,
    "maxdicut": _compile_maxdicut,
    "max2sat": _compile_max2sat,
}


def register_reduction(
    kind: str,
    reduction: Callable[[Problem, str], CompiledGraph],
    overwrite: bool = False,
) -> None:
    """Register a reduction for a new problem ``kind`` (collisions raise).

    The callable receives ``(problem, name)`` and must return a
    :class:`CompiledGraph` whose lifter satisfies the per-assignment affine
    identity — :func:`compile_to_maxcut` certifies it on every compile.
    """
    if kind in _REDUCTIONS and not overwrite:
        raise ValidationError(
            f"reduction for kind {kind!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REDUCTIONS[kind] = reduction


def compile_to_maxcut(
    problem: Problem,
    name: Optional[str] = None,
    verify: bool = True,
    n_probes: int = 4,
    seed: RandomState = 0,
) -> Tuple[CompiledGraph, Lifter]:
    """Lower *problem* onto a MAXCUT instance; returns ``(graph, lifter)``.

    The returned graph is a :class:`CompiledGraph` (it also carries the
    problem and lifter itself, for solver-capability routing); *verify* runs
    :func:`repro.problems.base.verify_certificate` on *n_probes* random
    assignments so a broken gadget can never hand the solver stack a graph
    whose cuts mean the wrong thing.
    """
    if not isinstance(problem, Problem):
        raise ValidationError(
            f"compile_to_maxcut expects a Problem, got {type(problem).__name__}"
        )
    reduction = _REDUCTIONS.get(problem.kind)
    if reduction is None:
        raise ValidationError(
            f"no reduction registered for problem kind {problem.kind!r}; "
            f"known kinds: {sorted(_REDUCTIONS)}"
        )
    graph = reduction(problem, name or f"{problem.kind}-{problem.n_variables}")
    if verify:
        verify_certificate(
            problem, graph, graph.lifter, n_probes=n_probes, seed=seed
        )
    return graph, graph.lifter
