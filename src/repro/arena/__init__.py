"""Solver arena: capability-aware, cross-method MAXCUT comparison harness.

The arena is the repo's answer to the paper's central comparative claim —
stochastic LIF circuits vs. classical baselines — as a reusable subsystem:
pick solvers from the registry, pick (or register) a graph suite, set one
shared budget, and get a paired, reproducible leaderboard.

Public API
----------
:class:`ArenaResult` / :class:`ArenaEntry`
    Results: per-(solver, graph) entries with arena-relative cut ratios,
    wall time, throughput, and execution-path provenance; ``aggregate()``
    produces leaderboard rows.
:class:`GraphSuite` / :func:`register_suite` / :func:`list_suites` /
:func:`build_suite`
    Named, seed-deterministic benchmark graph collections.
:func:`run_arena` / :class:`ArenaBudget`
    Deprecated shim / alias over the unified workload API — the canonical
    entry point is ``repro.workloads.run_workload("arena", ...)`` (CLI:
    ``python -m repro run arena``), whose generic executor routes batchable
    circuits onto the trial-parallel engine and everything else through
    ``parallel_map``.

See DESIGN.md §"Workload API" and §"Solver arena", and
``examples/solver_arena.py``.
"""

from repro.arena.arena import ArenaBudget, run_arena
from repro.arena.results import ArenaEntry, ArenaResult
from repro.arena.suite import (
    SUITES,
    GraphSuite,
    build_suite,
    get_suite,
    list_suites,
    register_suite,
)

__all__ = [
    "ArenaBudget",
    "ArenaEntry",
    "ArenaResult",
    "GraphSuite",
    "SUITES",
    "build_suite",
    "get_suite",
    "list_suites",
    "register_suite",
    "run_arena",
]
