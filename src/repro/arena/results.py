"""Result containers for the solver arena.

An arena run produces one :class:`ArenaEntry` per (solver, graph) pair and
wraps them in an :class:`ArenaResult` that knows how to rank solvers.  The
entry dataclass is deliberately flat and JSON-safe: it registers itself with
:func:`repro.experiments.runner.register_result_type` on import, so
``save_results(path, "compare", result.entries, ...)`` round-trips through
the standard experiment persistence layer.

Cut ratios are *arena-relative*: ``cut_ratio = best_weight / best weight
found by any competitor on that graph``, so the per-graph winner scores 1.0
and the aggregate column reads as "fraction of the best-known cut this
method recovers across the suite".  (Absolute optima are unknown for most
suite graphs, which rules out a true approximation ratio.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArenaEntry", "ArenaResult"]


@dataclass(frozen=True)
class ArenaEntry:
    """Outcome of one solver on one suite graph.

    Attributes
    ----------
    solver:
        Canonical registry key of the solver.
    graph_name, n_vertices, n_edges, total_weight:
        Identity and size of the graph.
    best_weight:
        Best cut weight across all trials.
    mean_weight:
        Mean of the per-trial best weights (equals ``best_weight`` for the
        single-trial deterministic path).
    cut_ratio:
        ``best_weight`` relative to the best weight any solver in the arena
        achieved on this graph (1.0 for the per-graph winner).
    n_trials:
        Independent trials actually run (1 for deterministic solvers).
    n_samples:
        Per-trial ``n_samples`` budget handed to the solver (0 when the
        solver's budget semantics are ``"ignored"``).
    elapsed_seconds:
        Wall-clock time for all trials of this solver on this graph.
    samples_per_second:
        ``n_trials * n_samples / elapsed_seconds`` (0 when the budget is
        ignored or the clock resolution was too coarse to measure).
    used_engine:
        True when the trials were executed by the batched trial-parallel
        engine rather than per-trial solver calls.
    backend:
        Engine weight-backend name (``""`` off the engine path).
    deterministic:
        Capability flag copied from the solver's spec.
    budget_semantics:
        The spec's ``n_samples`` interpretation (``"readouts"``, ``"sweeps"``,
        ...), copied so saved results are self-describing.
    metadata:
        Extras (engine round counts, early-stop info, ...).
    """

    solver: str
    graph_name: str
    n_vertices: int
    n_edges: int
    total_weight: float
    best_weight: float
    mean_weight: float
    cut_ratio: float
    n_trials: int
    n_samples: int
    elapsed_seconds: float
    samples_per_second: float
    used_engine: bool
    backend: str = ""
    deterministic: bool = False
    budget_semantics: str = "readouts"
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ArenaResult:
    """All entries of one arena run, plus the configuration that produced them.

    Attributes
    ----------
    suite:
        Suite key (or ``"custom"`` for ad-hoc graph lists).
    solvers:
        Canonical solver keys, in the order they ran.
    graph_names:
        Suite graphs, in order.
    n_trials, n_samples, seed:
        The shared budget and root seed.
    entries:
        One :class:`ArenaEntry` per (solver, graph).
    elapsed_seconds:
        Wall-clock time of the whole arena run.
    """

    suite: str
    solvers: Tuple[str, ...]
    graph_names: Tuple[str, ...]
    n_trials: int
    n_samples: int
    seed: Optional[int]
    entries: List[ArenaEntry]
    elapsed_seconds: float = 0.0

    def entries_for_graph(self, graph_name: str) -> List[ArenaEntry]:
        """Entries of every solver on one graph, in solver order."""
        return [e for e in self.entries if e.graph_name == graph_name]

    def entries_for_solver(self, solver: str) -> List[ArenaEntry]:
        """Entries of one solver across the suite, in graph order."""
        return [e for e in self.entries if e.solver == solver]

    def aggregate(self) -> List[Dict[str, object]]:
        """Per-solver leaderboard rows, best mean cut ratio first.

        Each row carries ``solver``, ``mean_ratio`` (mean per-graph cut
        ratio), ``wins`` (graphs where the solver matched the arena best),
        ``best_weight_total`` (sum of best weights), ``elapsed_seconds``,
        ``samples_per_second`` (aggregate over the whole suite), and
        ``used_engine``.
        """
        rows: List[Dict[str, object]] = []
        for solver in self.solvers:
            entries = self.entries_for_solver(solver)
            if not entries:
                continue
            ratios = np.array([e.cut_ratio for e in entries], dtype=float)
            elapsed = float(sum(e.elapsed_seconds for e in entries))
            total_samples = sum(e.n_trials * e.n_samples for e in entries)
            rows.append({
                "solver": solver,
                "mean_ratio": float(ratios.mean()),
                "wins": int(np.sum(ratios >= 1.0 - 1e-12)),
                "best_weight_total": float(sum(e.best_weight for e in entries)),
                "elapsed_seconds": elapsed,
                "samples_per_second": (total_samples / elapsed) if elapsed > 0 else 0.0,
                "used_engine": all(e.used_engine for e in entries),
            })
        # Equal-ratio solvers must rank identically across runs and
        # interpreters (portfolio priors and the pinned leaderboard tests
        # depend on stable ranks), so ties break on wins and then the
        # solver name — never on wall-clock measurements.
        rows.sort(key=lambda r: (-r["mean_ratio"], -r["wins"], str(r["solver"])))
        return rows

    def winner(self) -> Optional[str]:
        """Solver key with the highest mean cut ratio (None for empty runs)."""
        rows = self.aggregate()
        return str(rows[0]["solver"]) if rows else None


def _register_with_runner() -> None:
    # Deferred to a function so a partially-initialised experiments package
    # (runner imports nothing from arena at module scope) cannot deadlock
    # the import graph.
    from repro.experiments.runner import register_result_type

    register_result_type(ArenaEntry)


_register_with_runner()
