"""The solver arena: head-to-head comparison of registered MAXCUT methods.

Since the Unified Workload API landed, the arena *is* a registered workload:
``run_workload("arena", solvers=..., suite=..., trials=..., samples=...)``
races any subset of the solver registry (:mod:`repro.algorithms.registry`)
over a graph suite (:mod:`repro.arena.suite`) through the generic
capability-routed executor (:mod:`repro.workloads.executor`), producing a
:class:`repro.workloads.RunReport` whose records are
:class:`repro.arena.results.ArenaEntry` rows.  Execution routing, the
fairness contract, and the paired ``SeedSequence(seed, spawn_key=(g, i))``
seeding convention are documented there.

:func:`run_arena` remains as a deprecation shim: it builds the same spec,
runs the same session, and returns the classic
:class:`~repro.arena.results.ArenaResult` view — while emitting a
:class:`DeprecationWarning` pointing at the workload API.
:class:`ArenaBudget` is now an alias of the unified
:class:`repro.workloads.Budget`.

Quickstart
----------
>>> import warnings
>>> from repro.arena import run_arena
>>> with warnings.catch_warnings():
...     warnings.simplefilter("ignore", DeprecationWarning)
...     result = run_arena(["random", "trevisan"], suite="er-small",
...                        n_trials=2, n_samples=32, seed=0)
>>> result.winner() in {"random", "trevisan"}
True
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Union

from repro.arena.results import ArenaResult
from repro.arena.suite import GraphSuite
from repro.graphs.graph import Graph
from repro.parallel.pool import ParallelConfig
from repro.workloads.paper import arena_result_from_report
from repro.workloads.registry import get_workload
from repro.workloads.session import Session
from repro.workloads.spec import Budget, ExecutionPolicy, GraphSource, WorkloadSpec

__all__ = ["ArenaBudget", "run_arena"]

#: Backward-compatible alias: the arena's budget *is* the unified workload
#: budget (`repro.workloads.Budget`) since the Workload API consolidation.
ArenaBudget = Budget


def run_arena(
    solvers: Sequence[str],
    suite: Union[str, GraphSuite, Sequence[Graph]] = "er-small",
    budget: Optional[Budget] = None,
    *,
    n_trials: int = 4,
    n_samples: int = 256,
    seed: Optional[int] = 0,
    backend: str = "auto",
    use_engine: bool = True,
    parallel: Optional[ParallelConfig] = None,
) -> ArenaResult:
    """Race *solvers* over *suite* under one shared budget (deprecated shim).

    .. deprecated::
        Use ``repro.workloads.run_workload("arena", solvers=..., suite=...,
        trials=..., samples=...)`` (or an explicit :class:`WorkloadSpec`
        through a :class:`~repro.workloads.Session`).  This shim builds the
        identical spec, runs the identical session, and adapts the report
        back into an :class:`ArenaResult`, so results match the new path
        exactly.

    Parameters
    ----------
    solvers:
        Registry keys or aliases; duplicates (after alias resolution) raise.
    suite:
        Suite key (see :func:`repro.arena.suite.list_suites`), a
        :class:`GraphSuite`, or an explicit list of graphs.
    budget:
        Shared :class:`ArenaBudget`; when omitted one is built from
        ``n_trials`` / ``n_samples``.
    seed:
        Root seed; trial *i* on graph *g* uses
        ``SeedSequence(seed, spawn_key=(g, i))`` on every path.  ``None``
        draws fresh root entropy once; the drawn value is recorded in
        ``ArenaResult.seed``.
    backend:
        Engine weight backend for batchable solvers (``"auto"`` default).
    use_engine:
        When False, batchable solvers fall back to the per-trial path too
        (reference timings; results stay comparable thanks to the shared
        seeding contract).
    parallel:
        :class:`ParallelConfig` for sequential solvers' trials; only its
        ``n_workers`` is carried into the workload execution policy.

    Returns
    -------
    ArenaResult
        One entry per (solver, graph), with arena-relative cut ratios
        (per-graph best = 1.0) filled in.
    """
    warnings.warn(
        "run_arena is deprecated; use repro.workloads.run_workload('arena', "
        "solvers=..., suite=..., trials=..., samples=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if budget is None:
        budget = Budget(n_trials=n_trials, n_samples=n_samples)
    source = GraphSource.coerce(suite)
    workers = parallel.n_workers if parallel is not None else 1
    spec = WorkloadSpec(
        workload="arena",
        graphs=source,
        solvers=tuple(solvers),
        budget=budget,
        policy=ExecutionPolicy(
            mode="auto" if use_engine else "parallel",
            backend=backend,
            n_workers=workers,
        ),
        seed=seed,
        params={
            "solvers": list(solvers), "suite": source.label,
            "trials": budget.n_trials, "samples": budget.n_samples,
            "max_seconds": budget.max_seconds, "backend": backend,
            "use_engine": use_engine, "workers": workers,
        },
    )
    report = Session(spec, get_workload("arena")).run()
    return arena_result_from_report(report)
