"""The solver arena: head-to-head comparison of registered MAXCUT methods.

:func:`run_arena` races any subset of the solver registry
(:mod:`repro.algorithms.registry`) over a graph suite
(:mod:`repro.arena.suite`) under one shared budget, producing an
:class:`repro.arena.results.ArenaResult` leaderboard.  Execution is routed by
capability:

* **Batchable circuits** (``lif_gw``, ``lif_tr``) run through the
  trial-parallel batched engine via
  :func:`repro.experiments.runner.run_circuit_trials` — all trials of a
  (solver, graph) cell are simulated in one vectorised solve.
* **Sequential stochastic solvers** (``gw``, ``random``, ``annealing``, ...)
  run their trials through :func:`repro.parallel.pool.parallel_map` with
  per-trial seeds.
* **Deterministic solvers** (``trevisan``) run exactly once per graph —
  extra trials would reproduce the same cut.

Fairness contract
-----------------
Every stochastic solver receives the same ``n_trials`` and the same
per-trial ``n_samples`` budget; what a "sample" costs differs by method (see
the registry's budget-semantics table), so the leaderboard reports wall time
and samples/second alongside cut quality rather than pretending the budgets
are equivalent.  Trial *i* on suite graph *g* is seeded with
``SeedSequence(seed, spawn_key=(g, i))`` on **both** the engine and the
sequential path, so comparisons are paired and reproducible.

Quickstart
----------
>>> from repro.arena import run_arena
>>> result = run_arena(["random", "trevisan"], suite="er-small",
...                    n_trials=2, n_samples=32, seed=0)
>>> result.winner() in {"random", "trevisan"}
True
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.registry import SolverSpec, get_spec
from repro.analysis.ratios import relative_cut_weight
from repro.arena.results import ArenaEntry, ArenaResult
from repro.arena.suite import GraphSuite, build_suite
from repro.engine.sampler import trial_seed_sequences
from repro.experiments import runner as _runner
from repro.graphs.graph import Graph
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.utils.validation import ValidationError

__all__ = ["ArenaBudget", "run_arena"]


@dataclasses.dataclass(frozen=True)
class ArenaBudget:
    """Shared per-(solver, graph) budget for an arena run.

    Attributes
    ----------
    n_trials:
        Independent trials for every stochastic solver (deterministic
        solvers always run once).
    n_samples:
        Per-trial ``n_samples`` handed to each solver; interpreted per the
        solver's budget semantics (read-outs, sweeps, restarts, ...).
    max_seconds:
        Optional wall-clock cap per (solver, graph) cell.  The sequential
        path stops launching further trials once exceeded (at least one
        trial always completes, and the trial count is recorded).  The
        engine path executes its batch in one shot, so the cap is advisory
        there and only recorded in the entry metadata when overrun.
        Setting a cap forces capped cells onto a serial trial loop —
        ``parallel_map`` cannot cancel in-flight work — so it overrides any
        ``parallel`` / ``--workers`` configuration for those cells.
    """

    n_trials: int = 4
    n_samples: int = 256
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValidationError(f"n_trials must be >= 1, got {self.n_trials}")
        if self.n_samples < 1:
            raise ValidationError(f"n_samples must be >= 1, got {self.n_samples}")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValidationError(f"max_seconds must be positive, got {self.max_seconds}")


def _graph_root_seed(seed: int, graph_index: int) -> np.random.SeedSequence:
    """Root seed of suite graph *graph_index* (trials are its spawn children)."""
    return np.random.SeedSequence(entropy=int(seed), spawn_key=(graph_index,))


def _sequential_trial(task: tuple) -> float:
    """One trial of a sequential solver (module-level for pickling).

    The task carries the solver *callable* itself, not its registry key:
    worker processes under non-fork start methods re-import the registry
    without runtime registrations, so a key lookup there would fail for
    custom solvers.  Pickling the function by reference sidesteps that.
    """
    solver_fn, graph, n_samples, seed_seq = task
    cut = solver_fn(graph, n_samples=n_samples, seed=seed_seq)
    return float(cut.weight)


def _run_engine_cell(
    spec: SolverSpec,
    graph: Graph,
    budget: ArenaBudget,
    root: np.random.SeedSequence,
    backend: str,
) -> Tuple[float, float, int, int, dict]:
    """Run one batchable cell through the engine; returns core measurements."""
    result = _runner.run_circuit_trials(
        graph=graph,
        circuit=spec.circuit,
        n_trials=budget.n_trials,
        n_samples=budget.n_samples,
        seed=root,
        backend=backend,
    )
    weights = np.asarray(result.trial_best_weights, dtype=float)
    metadata = {
        "engine_elapsed_seconds": float(result.elapsed_seconds),
        "engine_backend": result.backend_name,
        "n_rounds": int(result.n_rounds),
        "early_stopped": bool(result.early_stopped),
    }
    best = float(weights.max()) if weights.size else 0.0
    mean = float(weights.mean()) if weights.size else 0.0
    return best, mean, int(result.n_trials), int(result.n_rounds), metadata


def _run_sequential_cell(
    spec: SolverSpec,
    graph: Graph,
    budget: ArenaBudget,
    root: np.random.SeedSequence,
    parallel: Optional[ParallelConfig],
) -> Tuple[float, float, int, int, dict]:
    """Run one non-batchable cell: 1 trial if deterministic, else the budget."""
    n_trials = 1 if spec.deterministic else budget.n_trials
    # The engine's own derivation, so the two paths stay paired by
    # construction rather than by parallel re-implementation.
    seeds = trial_seed_sequences(root, n_trials)
    tasks = [(spec.fn, graph, budget.n_samples, s) for s in seeds]
    metadata: dict = {}
    if budget.max_seconds is not None and n_trials > 1:
        # A wall-clock cap needs a serial loop with a clock check between
        # trials; parallel_map has no mid-flight cancellation.
        weights: List[float] = []
        started = time.perf_counter()
        for task in tasks:
            weights.append(_sequential_trial(task))
            if time.perf_counter() - started >= budget.max_seconds:
                break
        if len(weights) < n_trials:
            metadata["budget_truncated"] = True
        n_trials = len(weights)
    else:
        weights = parallel_map(_sequential_trial, tasks, config=parallel)
    arr = np.asarray(weights, dtype=float)
    return float(arr.max()), float(arr.mean()), n_trials, budget.n_samples, metadata


def run_arena(
    solvers: Sequence[str],
    suite: Union[str, GraphSuite, Sequence[Graph]] = "er-small",
    budget: Optional[ArenaBudget] = None,
    *,
    n_trials: int = 4,
    n_samples: int = 256,
    seed: Optional[int] = 0,
    backend: str = "auto",
    use_engine: bool = True,
    parallel: Optional[ParallelConfig] = None,
) -> ArenaResult:
    """Race *solvers* over *suite* under one shared budget.

    Parameters
    ----------
    solvers:
        Registry keys or aliases; duplicates (after alias resolution) raise.
    suite:
        Suite key (see :func:`repro.arena.suite.list_suites`), a
        :class:`GraphSuite`, or an explicit list of graphs.
    budget:
        Shared :class:`ArenaBudget`; when omitted one is built from
        ``n_trials`` / ``n_samples``.
    seed:
        Root seed; trial *i* on graph *g* uses
        ``SeedSequence(seed, spawn_key=(g, i))`` on every path.  ``None``
        follows the library convention and draws fresh root entropy once;
        the drawn value is recorded in ``ArenaResult.seed`` so the run
        remains reproducible after the fact.
    backend:
        Engine weight backend for batchable solvers (``"auto"`` default).
    use_engine:
        When False, batchable solvers fall back to the sequential path too
        (reference timings; results stay comparable thanks to the shared
        seeding contract).
    parallel:
        :class:`ParallelConfig` for sequential solvers' trials.  The default
        runs trials serially in-process; pass ``ParallelConfig(n_workers=k)``
        to fan trials out over processes.  Ignored for cells governed by
        ``budget.max_seconds`` — a wall-clock cap requires the serial loop
        (see :class:`ArenaBudget`).

    Returns
    -------
    ArenaResult
        One entry per (solver, graph), with arena-relative cut ratios
        (per-graph best = 1.0) filled in.
    """
    if budget is None:
        budget = ArenaBudget(n_trials=n_trials, n_samples=n_samples)
    parallel = parallel or ParallelConfig(n_workers=1)
    if seed is None:
        # Library convention: None means fresh entropy, not seed 0.  Draw it
        # once so the whole run (suite construction included) shares one
        # reproducible root, recorded in the result.
        seed = int(np.random.SeedSequence().entropy)

    if not solvers:
        raise ValidationError("solvers must name at least one registered solver")
    specs: List[SolverSpec] = []
    for name in solvers:
        spec = get_spec(name)
        if any(s.key == spec.key for s in specs):
            raise ValidationError(
                f"solver {spec.key!r} listed more than once (aliases resolve "
                f"to the same method)"
            )
        specs.append(spec)

    if isinstance(suite, str):
        suite_key = suite
        graphs = build_suite(suite, seed=int(seed))
    elif isinstance(suite, GraphSuite):
        suite_key = suite.key
        graphs = suite.build(int(seed))
    else:
        suite_key = "custom"
        graphs = list(suite)
        if not graphs:
            raise ValidationError("suite must contain at least one graph")
    names = [graph.name for graph in graphs]
    if len(set(names)) != len(names):
        # Entries, ratios, and report tables are all keyed by graph name;
        # duplicates would silently merge distinct graphs' results.
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValidationError(
            f"suite graphs must have unique names; duplicated: {duplicates} "
            f"(pass name=... to the generators)"
        )

    started = time.perf_counter()
    entries: List[ArenaEntry] = []
    for g, graph in enumerate(graphs):
        root = _graph_root_seed(seed, g)
        for spec in specs:
            cell_started = time.perf_counter()
            on_engine = bool(use_engine and spec.batchable)
            if on_engine:
                best, mean, trials_run, samples_run, metadata = _run_engine_cell(
                    spec, graph, budget, root, backend
                )
            else:
                best, mean, trials_run, samples_run, metadata = _run_sequential_cell(
                    spec, graph, budget, root, parallel
                )
            elapsed = time.perf_counter() - cell_started
            if budget.max_seconds is not None and elapsed > budget.max_seconds:
                metadata.setdefault("budget_overrun_seconds",
                                    float(elapsed - budget.max_seconds))
            if spec.budget == "ignored":
                samples_run = 0
            total_samples = trials_run * samples_run
            entries.append(ArenaEntry(
                solver=spec.key,
                graph_name=graph.name,
                n_vertices=graph.n_vertices,
                n_edges=graph.n_edges,
                total_weight=float(graph.total_weight),
                best_weight=best,
                mean_weight=mean,
                cut_ratio=0.0,  # filled below once the per-graph best is known
                n_trials=trials_run,
                n_samples=samples_run,
                elapsed_seconds=float(elapsed),
                samples_per_second=(total_samples / elapsed) if elapsed > 0 and total_samples
                                   else 0.0,
                used_engine=on_engine,
                backend=metadata.get("engine_backend", ""),
                deterministic=spec.deterministic,
                budget_semantics=spec.budget,
                metadata=metadata,
            ))

    # Arena-relative ratios: per graph, the best weight any solver found.
    best_by_graph = {}
    for entry in entries:
        current = best_by_graph.get(entry.graph_name, 0.0)
        best_by_graph[entry.graph_name] = max(current, entry.best_weight)
    entries = [
        dataclasses.replace(
            entry,
            cut_ratio=relative_cut_weight(entry.best_weight, best_by_graph[entry.graph_name]),
        )
        for entry in entries
    ]

    return ArenaResult(
        suite=suite_key,
        solvers=tuple(spec.key for spec in specs),
        graph_names=tuple(graph.name for graph in graphs),
        n_trials=budget.n_trials,
        n_samples=budget.n_samples,
        seed=seed,
        entries=entries,
        elapsed_seconds=float(time.perf_counter() - started),
    )
