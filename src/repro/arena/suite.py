"""Graph suites: named, reproducible collections of benchmark graphs.

A suite is the "track" the solver arena races on — a deterministic function
from a root seed to a list of :class:`repro.graphs.graph.Graph` instances.
Built-in suites cover the scenario spread the paper's evaluation implies:

``er-small`` / ``er-medium``
    Erdős–Rényi graphs at several (n, p) cells — the Figure 3 workload, at
    smoke-test and laptop scale respectively.
``structured-small``
    Graphs with *known* maximum cuts (complete bipartite, even cycles,
    grids) — useful for sanity-checking a new solver against ground truth.
``powerlaw-small``
    Barabási–Albert scale-free graphs, the surrogate family behind several
    Table I datasets (hubs stress local methods).
``empirical-small``
    The three smallest graphs from the paper's Table I registry.
``scale-small`` / ``scale-large``
    The CSR-native scale-free family of :mod:`repro.scale.generators`
    (Barabási–Albert, Watts–Strogatz, stochastic Kronecker) at arena scale
    and at the 50k–100k-vertex scale the sketched spectral path targets.

Suites are extensible at runtime: :func:`register_suite` makes a new key
immediately available to :func:`repro.arena.run_arena` and the
``repro compare --suite`` CLI.  Builders must be pure in the seed — the
arena relies on ``build_suite(key, seed)`` returning identical graphs for
identical seeds so cross-solver comparisons are paired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.graphs.generators import (
    barabasi_albert,
    complete_bipartite,
    cycle_graph,
    erdos_renyi,
    grid_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.repository import load_empirical_graph
from repro.utils.validation import ValidationError

__all__ = [
    "GraphSuite",
    "SUITES",
    "register_suite",
    "get_suite",
    "list_suites",
    "build_suite",
]

#: Builder signature: root seed -> graphs (same seed, same graphs).
SuiteBuilder = Callable[[int], List[Graph]]


@dataclass(frozen=True)
class GraphSuite:
    """A named, seed-deterministic collection of benchmark graphs.

    Attributes
    ----------
    key:
        Registry key used by ``--suite`` and :func:`build_suite`.
    description:
        One-line description for listings.
    builder:
        ``seed -> [Graph, ...]``; must be deterministic in the seed.
    """

    key: str
    description: str
    builder: SuiteBuilder

    def build(self, seed: int = 0) -> List[Graph]:
        """Materialise the suite's graphs for *seed*."""
        graphs = list(self.builder(int(seed)))
        if not graphs:
            raise ValidationError(f"suite {self.key!r} built an empty graph list")
        return graphs


def _er_cells(cells: Sequence[tuple], seed: int) -> List[Graph]:
    graphs = []
    for i, (n, p) in enumerate(cells):
        graphs.append(
            erdos_renyi(n, p, seed=seed + i, name=f"er-{n}-{p:g}")
        )
    return graphs


def _build_er_small(seed: int) -> List[Graph]:
    return _er_cells([(24, 0.3), (32, 0.25), (40, 0.2)], seed)


def _build_er_medium(seed: int) -> List[Graph]:
    return _er_cells([(100, 0.25), (150, 0.15), (200, 0.1)], seed)


def _build_structured_small(seed: int) -> List[Graph]:
    # Known maxima: K_{a,b} cuts every edge, C_{2k} cuts every edge, and the
    # m x n grid (bipartite) cuts every edge — ratio-1.0 targets for solvers.
    return [
        complete_bipartite(8, 12, name="k8-12"),
        cycle_graph(32, name="c32"),
        grid_graph(5, 8, name="grid5x8"),
    ]


def _build_powerlaw_small(seed: int) -> List[Graph]:
    return [
        barabasi_albert(40, 3, seed=seed, name="ba-40-3"),
        barabasi_albert(64, 2, seed=seed + 1, name="ba-64-2"),
    ]


def _build_empirical_small(seed: int) -> List[Graph]:
    return [
        load_empirical_graph(name, seed=seed)
        for name in ("road-chesapeake", "eco-stmarks", "soc-dolphins")
    ]


def _build_scale_small(seed: int) -> List[Graph]:
    # The generators tag the seed with per-generator spawn keys, so the
    # plain suite seed yields independent streams in each.
    from repro.scale.generators import (
        scale_barabasi_albert,
        scale_watts_strogatz,
        stochastic_kronecker,
    )

    return [
        scale_barabasi_albert(512, 3, seed=seed, name="scale-ba-512-3"),
        scale_watts_strogatz(512, 6, 0.1, seed=seed, name="scale-ws-512-6"),
        stochastic_kronecker(9, 4, seed=seed, name="scale-kron-9-4"),
    ]


def _build_scale_large(seed: int) -> List[Graph]:
    from repro.scale.generators import (
        scale_barabasi_albert,
        scale_watts_strogatz,
        stochastic_kronecker,
    )

    return [
        scale_barabasi_albert(100_000, 3, seed=seed, name="scale-ba-100k-3"),
        scale_watts_strogatz(50_000, 6, 0.05, seed=seed, name="scale-ws-50k-6"),
        stochastic_kronecker(16, 8, seed=seed, name="scale-kron-16-8"),
    ]


#: Suite-key → :class:`GraphSuite` registry.
SUITES: Dict[str, GraphSuite] = {}


def register_suite(suite: GraphSuite, overwrite: bool = False) -> GraphSuite:
    """Add *suite* to the registry and return it (collisions raise)."""
    if suite.key in SUITES and not overwrite:
        raise ValidationError(
            f"suite {suite.key!r} is already registered; pass overwrite=True to replace it"
        )
    SUITES[suite.key] = suite
    return suite


for _suite in (
    GraphSuite("er-small", "3 Erdős–Rényi graphs, n=24..40 (smoke scale)", _build_er_small),
    GraphSuite("er-medium", "3 Erdős–Rényi graphs, n=100..200", _build_er_medium),
    GraphSuite("structured-small", "bipartite/cycle/grid graphs with known maximum cuts",
               _build_structured_small),
    GraphSuite("powerlaw-small", "2 Barabási–Albert scale-free graphs", _build_powerlaw_small),
    GraphSuite("empirical-small", "3 smallest Table I registry graphs", _build_empirical_small),
    GraphSuite("scale-small", "3 CSR-native scale-free graphs at arena scale (n=256..512)",
               _build_scale_small),
    GraphSuite("scale-large", "3 CSR-native scale-free graphs, n=50k..100k (sketch-path scale)",
               _build_scale_large),
):
    register_suite(_suite)
del _suite


def list_suites() -> List[str]:
    """All registered suite keys, sorted."""
    return sorted(SUITES.keys())


def get_suite(key: str) -> GraphSuite:
    """Look up a suite; unknown keys raise with the available list."""
    try:
        return SUITES[key]
    except KeyError:
        raise ValidationError(
            f"unknown suite {key!r}; available: {list_suites()}"
        ) from None


def build_suite(key: str, seed: int = 0) -> List[Graph]:
    """Build the graphs of suite *key* for *seed* (deterministic)."""
    return get_suite(key).build(seed)
