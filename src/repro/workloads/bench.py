"""The ``bench`` workload: the library's performance trajectory, measured.

A registered workload (``repro run bench`` / ``repro bench``) that times the
two performance claims the architecture rests on and emits a schema'd JSON
artifact (``BENCH_4.json``) a CI gate can diff against a committed tolerance
baseline (``benchmarks/baseline.json``):

``engine:<circuit>``
    Trial-parallel batched engine vs the sequential per-trial reference on
    the largest suite graph, identical seeds (the PR-1 speedup claim).
    ``speedup = engine read-outs/s ÷ sequential read-outs/s`` — equivalently
    time-per-read-out reference ÷ optimised — so > 1 means the engine wins.
``sharded:arena``
    A sharded in-memory arena run (:mod:`repro.distrib`) vs the same spec
    run monolithically.  ``speedup`` here is mono/sharded wall time — it
    measures *sharding overhead* (expected near, and allowed below, 1).
``problems-compile``
    The problem-compiler path (compile a QUBO instance to MAXCUT + solve +
    lift + certificate, :mod:`repro.problems`) vs solving the pre-compiled
    graph directly with the same solver and seeds.  ``speedup`` is
    direct/compiled wall time — it measures *reduction-path overhead*
    (expected near, and allowed below, 1), and its floor catches
    regressions in the compile/lift/certificate hot path.
``serve-batching``
    The solve service's cross-request coalescing (:mod:`repro.serve`):
    K identical-shape requests submitted serially (one engine invocation
    each) vs staged together (fused into single batches).  ``speedup`` here
    is the *engine invocation* ratio serial/coalesced — deterministic, so
    its floor gates the coalescing guarantee rather than wall-clock noise;
    both wall times are still recorded.
``portfolio-route``
    The portfolio meta-solver's cold race (:mod:`repro.portfolio`) vs
    running every candidate alone at the full budget.  ``speedup`` here is
    the *quality ratio* — race best cut ÷ best single-solver best cut —
    which is deterministic (paired per-trial seeds) and expected near, and
    allowed slightly below, 1: the race spends a fraction of the
    every-candidate budget, and its floor gates how much cut quality the
    halving may give up.  Wall times of both paths are recorded so the
    budget saving stays visible in the artifact.
``engine-tensor``
    The array-backend seam (:mod:`repro.engine.xp`): the engine run through
    an explicit ``numpy:dense`` spec must be bit-identical to the default
    ``auto`` engine run *and* to the sequential reference; when torch is
    installed, the ``torch:dense`` path must agree to floating-point
    round-off.  ``speedup`` is the fraction of parity checks passed
    (deterministic; 1.0 = every check holds), so its floor gates the
    seam's correctness guarantee, not wall clock.  Wall times of every
    path ride along in the detail.
``engine-instance-batch``
    Graph-axis batching (:func:`repro.engine.solve_instance_block`): K
    same-shape instances × trials fused into one lock-step kernel
    invocation vs solving the K requests through the engine one at a time.
    ``speedup`` is the per-instance / fused wall-time ratio; fused results
    must be bit-identical to the per-instance solves.
``scale-generate``
    The CSR-native vectorised Barabási–Albert generator
    (:func:`repro.scale.generators.scale_barabasi_albert`) vs the legacy
    per-vertex Python loop (:func:`repro.graphs.generators.barabasi_albert`)
    at the same ``(n, m)``.  ``speedup`` is legacy/vectorised wall time
    (expected well above 1 and growing with ``n``); the agreement check
    verifies the edge counts match within tolerance and that the vectorised
    path never touched a dense adjacency.
``sketch-vs-exact``
    Sketched Trevisan rounding (``method="sketch"``,
    :mod:`repro.scale.sketch`) vs the exact sparse eigensolver
    (``method="arpack"``) on a scale-free graph.  ``speedup`` here is the
    *cut-quality ratio* sketch ÷ exact — deterministic (seeded sketch,
    ARPACK's fixed internal start), so its floor pins how much cut weight
    the randomized subspace may give up; both wall times are recorded.
``obs-overhead``
    The tracer's own cost (:mod:`repro.obs`): one engine run with tracing
    truly disabled vs the identical run under an active capture.
    ``speedup`` is untraced/traced wall time (floor 0.5: enabled tracing
    may at most double a run); the agreement check pins the tracer's two
    promises — outputs bit-identical with tracing on or off, and a
    disabled fast path cheap enough that the instrumentation points cost
    ≤ 2% of the untraced wall time.

Every scenario additionally records a ``detail["phase_timings"]`` block —
the per-span-name aggregate (:func:`repro.obs.trace.summarize_spans`) of
the spans its two legs emitted — so saved bench artifacts carry where the
time went, not just the ratio.

Each scenario is one shard unit, so the bench workload itself shards and
resumes like everything else.  Results are :class:`BenchRecord` rows — a
registered result type — and the saved file's ``config.schema`` field names
the artifact schema (:data:`BENCH_SCHEMA`).

Gating
------
:func:`check_baseline` compares a bench report against a baseline file of
per-scenario ``min_speedup`` floors; ``repro bench --check`` exits non-zero
on any violation.  Floors are deliberately loose (CI machines are noisy);
they catch order-of-magnitude regressions, not percent-level drift.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.runner import register_result_type, run_circuit_trials
from repro.obs.trace import capture, span, suspended
from repro.utils.validation import ValidationError
from repro.workloads.registry import Workload, register_workload
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.spec import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    WorkloadSpec,
)

__all__ = [
    "BenchRecord",
    "BENCH_SCHEMA",
    "bench_scenarios",
    "run_bench_scenario",
    "bench_outcome",
    "check_baseline",
]

#: Schema tag written into every saved bench artifact's config header.
BENCH_SCHEMA = "repro-bench/v1"

#: Engine circuits timed by the ``engine:*`` scenarios.
_ENGINE_CIRCUITS = ("lif_gw", "lif_tr")


@register_result_type
@dataclass(frozen=True)
class BenchRecord:
    """One timed bench scenario.

    Attributes
    ----------
    scenario:
        Scenario key, e.g. ``"engine:lif_tr"`` or ``"sharded:arena"``.
    suite:
        Graph suite the scenario ran on.
    wall_seconds:
        Wall time of the optimised path (engine / sharded).
    baseline_seconds:
        Wall time of the reference path (sequential / monolithic).
    speedup:
        Reference time ÷ optimised time (computed per read-out for the
        engine scenarios, i.e. engine throughput ÷ sequential throughput);
        > 1 always means the optimised path wins.
    detail:
        Scenario extras: graph name, trial/sample budget, throughputs,
        agreement checks.
    """

    scenario: str
    suite: str
    wall_seconds: float
    baseline_seconds: float
    speedup: float
    detail: Dict[str, Any] = field(default_factory=dict)


def bench_scenarios(spec: WorkloadSpec) -> List[Tuple[str]]:
    """The scenario keys of one bench run (also its shard units)."""
    scenarios = [(f"engine:{circuit}",) for circuit in _ENGINE_CIRCUITS]
    scenarios.append(("sharded:arena",))
    scenarios.append(("problems-compile",))
    scenarios.append(("serve-batching",))
    scenarios.append(("portfolio-route",))
    scenarios.append(("engine-tensor",))
    scenarios.append(("engine-instance-batch",))
    scenarios.append(("scale-generate",))
    scenarios.append(("sketch-vs-exact",))
    scenarios.append(("obs-overhead",))
    return scenarios


def _bench_graph(spec: WorkloadSpec):
    """The largest graph of the bench suite (engine gains grow with n)."""
    from repro.workloads.executor import build_spec_graphs

    # The executor's cached builder, so repeated scenarios (and sharded
    # bench runs) don't regenerate the suite once per scenario.
    return max(build_spec_graphs(spec), key=lambda g: g.n_vertices)


def _run_engine_scenario(spec: WorkloadSpec, circuit: str) -> Dict[str, Any]:
    from repro.circuits.lif_gw import LIFGWCircuit
    from repro.circuits.lif_trevisan import LIFTrevisanCircuit

    graph = _bench_graph(spec)
    n_trials = spec.budget.n_trials
    n_samples = spec.budget.n_samples
    seed = spec.seed
    # Build the circuit once (the LIF-GW SDP solve is the offline stage), so
    # both timings measure the simulation itself.
    if circuit == "lif_gw":
        instance = LIFGWCircuit(graph, seed=seed)
    else:
        instance = LIFTrevisanCircuit(graph)
    common = dict(
        circuit=instance, graph=None, n_trials=n_trials,
        n_samples=n_samples, seed=seed,
    )
    engine = run_circuit_trials(backend=spec.policy.backend, **common)
    reference = run_circuit_trials(use_engine=False, **common)
    # Per-read-out throughput ratio, robust to early-stop truncation.
    speedup = (
        engine.samples_per_second / reference.samples_per_second
        if reference.samples_per_second > 0 else float("inf")
    )
    agree = bool(
        engine.n_rounds == reference.n_rounds
        and np.array_equal(engine.trial_best_weights, reference.trial_best_weights)
    )
    return {
        "scenario": f"engine:{circuit}",
        "suite": spec.graphs.label,
        "wall_seconds": float(engine.elapsed_seconds),
        "baseline_seconds": float(reference.elapsed_seconds),
        "speedup": float(speedup),
        "detail": {
            "graph": graph.name,
            "n_vertices": int(graph.n_vertices),
            "n_trials": int(n_trials),
            "n_samples": int(n_samples),
            "backend": engine.backend_name,
            "engine_samples_per_second": float(engine.samples_per_second),
            "sequential_samples_per_second": float(reference.samples_per_second),
            "results_match": agree,
        },
    }


def _arena_subspec(spec: WorkloadSpec) -> WorkloadSpec:
    params = dict(spec.params)
    return WorkloadSpec(
        workload="arena",
        graphs=spec.graphs,
        solvers=tuple(params.get("solvers", ("lif_tr", "random"))),
        budget=Budget(n_trials=spec.budget.n_trials, n_samples=spec.budget.n_samples),
        policy=ExecutionPolicy(mode="auto", backend=spec.policy.backend),
        seed=spec.seed,
        params={},
    )


def _run_sharded_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.distrib import run_sharded
    from repro.workloads.executor import execute_spec

    from repro.workloads.executor import build_spec_graphs

    sub = _arena_subspec(spec)
    # "arena_shards", not "shards": the latter is the reserved run_workload /
    # CLI keyword selecting the distrib split of the bench run itself.
    n_shards = int(dict(spec.params).get("arena_shards", 2))
    # Pre-warm the graph cache so both timed sections see the same state —
    # otherwise the monolithic run pays the suite build cold while the
    # sharded run hits the cache it populated, inflating the ratio.
    build_spec_graphs(sub)
    started = time.perf_counter()
    mono = execute_spec(sub)
    mono_elapsed = time.perf_counter() - started
    started = time.perf_counter()
    sharded = run_sharded(sub, n_shards)
    sharded_elapsed = time.perf_counter() - started
    mono_best = {(e.graph_name, e.solver): e.best_weight for e in mono.entries}
    sharded_best = {
        (e.graph_name, e.solver): e.best_weight for e in sharded.records
    }
    return {
        "scenario": "sharded:arena",
        "suite": spec.graphs.label,
        "wall_seconds": float(sharded_elapsed),
        "baseline_seconds": float(mono_elapsed),
        "speedup": float(mono_elapsed / sharded_elapsed) if sharded_elapsed > 0
                   else float("inf"),
        "detail": {
            "n_shards": n_shards,
            "solvers": list(sub.solvers),
            "n_trials": int(sub.budget.n_trials),
            "n_samples": int(sub.budget.n_samples),
            "n_cells": len(mono.entries),
            "results_match": mono_best == sharded_best,
        },
    }


def _run_problems_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.algorithms.registry import get_solver
    from repro.problems import compile_to_maxcut, random_problem, verify_certificate
    from repro.problems.base import CertificateError

    # A mid-sized QUBO sized like the bench suite's largest graph; annealing
    # is the solver on both paths (cheap, weight-sign agnostic, sweep-budgeted),
    # so the measured gap is purely the compile + lift + certificate overhead.
    n = _bench_graph(spec).n_vertices
    n_trials = spec.budget.n_trials
    n_samples = spec.budget.n_samples
    seed = spec.seed
    problem = random_problem("qubo", seed=seed, n_variables=n)
    solver = get_solver("annealing")
    reference_graph, _ = compile_to_maxcut(problem, verify=False)

    started = time.perf_counter()
    direct_weights = [
        float(solver(reference_graph, n_samples=n_samples, seed=seed + t).weight)
        for t in range(n_trials)
    ]
    direct_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    compiled_weights = []
    certified = True
    for t in range(n_trials):
        graph, lifter = compile_to_maxcut(problem, seed=seed)
        cut = solver(graph, n_samples=n_samples, seed=seed + t)
        try:
            # Lifts the solved assignment internally — the per-solve
            # decode + certificate cost this scenario exists to measure.
            verify_certificate(
                problem, graph, lifter, assignment=cut.assignment, seed=seed
            )
        except CertificateError:
            certified = False
        compiled_weights.append(float(cut.weight))
    compiled_elapsed = time.perf_counter() - started

    return {
        "scenario": "problems-compile",
        "suite": spec.graphs.label,
        "wall_seconds": float(compiled_elapsed),
        "baseline_seconds": float(direct_elapsed),
        "speedup": float(direct_elapsed / compiled_elapsed)
                   if compiled_elapsed > 0 else float("inf"),
        "detail": {
            "problem": problem.kind,
            "n_variables": int(problem.n_variables),
            "n_trials": int(n_trials),
            "n_samples": int(n_samples),
            "compiled_vertices": int(reference_graph.n_vertices),
            "compiled_edges": int(reference_graph.n_edges),
            "results_match": bool(
                certified and direct_weights == compiled_weights
            ),
        },
    }


def _run_serve_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.graphs.io import graph_to_dict
    from repro.serve import ServiceConfig, SolverService

    # K same-shape requests (one graph, one circuit, distinct sampling
    # seeds): the serial path answers them one at a time — one engine
    # invocation each — while the coalesced path stages all K behind a
    # parked worker so the batching scheduler fuses them into
    # ceil(K * trials / max_batch_trials) invocations.  The gated `speedup`
    # is the *invocation* ratio (serial ÷ coalesced): it is what coalescing
    # actually buys and, unlike wall time, is exact on a noisy CI machine.
    graph = _bench_graph(spec)
    n_requests = int(dict(spec.params).get("serve_requests", 8))
    n_trials = max(1, spec.budget.n_trials // 4)
    payloads = [
        {
            "graph": graph_to_dict(graph),
            "circuit": "lif_tr",
            "trials": n_trials,
            "samples": spec.budget.n_samples,
            "seed": int(spec.seed) + index,
            "backend": spec.policy.backend,
        }
        for index in range(n_requests)
    ]
    config = ServiceConfig(max_batch_trials=max(64, n_requests * n_trials))
    wait = 300.0

    with SolverService(config) as serial_service:
        started = time.perf_counter()
        serial_responses = [
            serial_service.solve(payload, timeout=wait) for payload in payloads
        ]
        serial_elapsed = time.perf_counter() - started
        serial_invocations = serial_service.stats()["engine"]["invocations"]

    with SolverService(config, autostart=False) as coalesced_service:
        started = time.perf_counter()
        jobs = [coalesced_service.submit(payload) for payload in payloads]
        coalesced_service.start()
        coalesced_responses = [job.wait(wait) for job in jobs]
        coalesced_elapsed = time.perf_counter() - started
        coalesced_stats = coalesced_service.stats()
    coalesced_invocations = coalesced_stats["engine"]["invocations"]

    def _weights(responses):
        return [
            None if r is None else r.get("trial_best_weights") for r in responses
        ]

    results_match = (
        all(r is not None and r.get("status") == "ok" for r in serial_responses)
        and all(r is not None and r.get("status") == "ok" for r in coalesced_responses)
        and _weights(serial_responses) == _weights(coalesced_responses)
    )
    return {
        "scenario": "serve-batching",
        "suite": spec.graphs.label,
        "wall_seconds": float(coalesced_elapsed),
        "baseline_seconds": float(serial_elapsed),
        "speedup": float(serial_invocations / coalesced_invocations)
                   if coalesced_invocations else float("inf"),
        "detail": {
            "graph": graph.name,
            "n_requests": n_requests,
            "n_trials_per_request": n_trials,
            "n_samples": int(spec.budget.n_samples),
            "serial_invocations": int(serial_invocations),
            "coalesced_invocations": int(coalesced_invocations),
            "coalesce_ratio": float(coalesced_stats["engine"]["coalesce_ratio"]),
            "serial_wall_seconds": float(serial_elapsed),
            "coalesced_wall_seconds": float(coalesced_elapsed),
            "results_match": bool(results_match),
        },
    }


def _run_portfolio_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.portfolio.race import race
    from repro.workloads.spec import Budget as _Budget

    # The cold-routing claim: a successive-halving race over K candidates
    # recovers (nearly) the best single candidate's cut while spending a
    # fraction of the run-everyone budget.  Both paths use the same paired
    # per-trial seeds, so the quality ratio is exactly reproducible and the
    # replay check below is bit-exact.
    graph = _bench_graph(spec)
    candidates = tuple(dict(spec.params).get(
        "portfolio_candidates", ("lif_tr", "trevisan", "local_search")
    ))
    budget = _Budget(
        n_trials=spec.budget.n_trials, n_samples=spec.budget.n_samples
    )
    backend = spec.policy.backend

    started = time.perf_counter()
    raced = race(graph, candidates, budget=budget, seed=spec.seed,
                 backend=backend)
    race_elapsed = time.perf_counter() - started

    # Reference: every candidate alone at the full budget (a k=1 race is
    # exactly the single solver run with the same seed derivation).
    started = time.perf_counter()
    singles = {
        name: race(graph, [name], budget=budget, seed=spec.seed,
                   backend=backend).best_cut.weight
        for name in candidates
    }
    singles_elapsed = time.perf_counter() - started
    best_single = max(singles.values())

    # Determinism check: replaying the winner alone with the trial count it
    # actually consumed must reproduce the race's winning weight bit-exactly.
    replay = race(
        graph, [raced.winner],
        budget=_Budget(n_trials=max(1, raced.trials_used[raced.winner]),
                       n_samples=spec.budget.n_samples),
        seed=spec.seed, backend=backend,
    )
    return {
        "scenario": "portfolio-route",
        "suite": spec.graphs.label,
        "wall_seconds": float(race_elapsed),
        "baseline_seconds": float(singles_elapsed),
        "speedup": float(raced.best_cut.weight / best_single)
                   if best_single > 0 else 1.0,
        "detail": {
            "graph": graph.name,
            "candidates": list(candidates),
            "winner": raced.winner,
            "race_best_weight": float(raced.best_cut.weight),
            "best_single_weight": float(best_single),
            "single_best_weights": {k: float(v) for k, v in singles.items()},
            "race_total_trials": int(raced.total_trials),
            "full_total_trials": int(budget.n_trials * len(candidates)),
            "trials_used": dict(raced.trials_used),
            "race_wall_seconds": float(race_elapsed),
            "singles_wall_seconds": float(singles_elapsed),
            "results_match": bool(
                replay.best_cut.weight == raced.best_cut.weight
            ),
        },
    }


def _run_engine_tensor_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.circuits.lif_gw import LIFGWCircuit
    from repro.engine import get_array_backend

    # Parity gate of the array-backend seam.  All paths run the same circuit
    # instance with the same seeds; the gated "speedup" is the fraction of
    # parity checks that hold (deterministic), wall times ride in the detail.
    graph = _bench_graph(spec)
    n_trials = spec.budget.n_trials
    n_samples = spec.budget.n_samples
    seed = spec.seed
    instance = LIFGWCircuit(graph, seed=seed)
    common = dict(
        circuit=instance, graph=None, n_trials=n_trials,
        n_samples=n_samples, seed=seed,
    )

    started = time.perf_counter()
    auto = run_circuit_trials(backend="auto", **common)
    auto_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    numpy_spec = run_circuit_trials(backend="numpy:dense", **common)
    numpy_elapsed = time.perf_counter() - started

    reference = run_circuit_trials(use_engine=False, **common)

    def _identical(a, b):
        return bool(
            np.array_equal(a.trial_best_weights, b.trial_best_weights)
            and np.array_equal(a.trial_best_assignments, b.trial_best_assignments)
            and np.array_equal(a.trajectories, b.trajectories)
        )

    checks = {
        "numpy_spec_bit_identical_to_auto": _identical(numpy_spec, auto),
        "numpy_engine_bit_identical_to_sequential": _identical(auto, reference),
    }
    detail: Dict[str, Any] = {
        "graph": graph.name,
        "n_vertices": int(graph.n_vertices),
        "n_trials": int(n_trials),
        "n_samples": int(n_samples),
        "auto_wall_seconds": float(auto_elapsed),
        "numpy_wall_seconds": float(numpy_elapsed),
        "array_backend": str(auto.metadata.get("array_backend", "numpy")),
    }
    torch_available, torch_reason = get_array_backend("torch").available()
    detail["torch_available"] = bool(torch_available)
    if torch_available:
        started = time.perf_counter()
        torch_result = run_circuit_trials(backend="torch:dense", **common)
        detail["torch_wall_seconds"] = float(time.perf_counter() - started)
        checks["torch_allclose_to_numpy"] = bool(
            np.allclose(torch_result.trial_best_weights, auto.trial_best_weights)
            and np.allclose(torch_result.trajectories, auto.trajectories)
        )
    else:
        detail["torch_skip_reason"] = torch_reason
    detail["checks"] = {key: bool(value) for key, value in checks.items()}
    passed = sum(1 for value in checks.values() if value)
    detail["results_match"] = passed == len(checks)
    return {
        "scenario": "engine-tensor",
        "suite": spec.graphs.label,
        "wall_seconds": float(numpy_elapsed),
        "baseline_seconds": float(auto_elapsed),
        "speedup": float(passed / len(checks)),
        "detail": detail,
    }


def _run_instance_batch_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.circuits.lif_gw import LIFGWCircuit
    from repro.engine import SolveRequest, solve, solve_instance_block
    from repro.graphs.generators import erdos_renyi

    # K same-shape instances (distinct ER graphs, one size) × a few trials
    # each, solved two ways with identical seeds: one engine invocation per
    # instance, vs a single fused lock-step kernel over the stacked graph
    # axis.  Small per-instance trial counts are the shape fusion exists for
    # (the serve coalescer's many-small-requests regime) — that is where the
    # per-round Python overhead the fusion amortises dominates.  The
    # circuits (and their SDP stage) are built outside both timed sections,
    # so the ratio measures the simulation loop itself.
    params = dict(spec.params)
    count = int(params.get("instance_count", 8))
    n = int(params.get("instance_n", 48))
    n_trials = int(params.get("instance_trials", 2))
    n_samples = spec.budget.n_samples
    seed = spec.seed
    graphs = [erdos_renyi(n, 0.5, seed=seed + index) for index in range(count)]
    circuits = [
        LIFGWCircuit(graph, seed=seed + index)
        for index, graph in enumerate(graphs)
    ]
    requests = [
        SolveRequest(
            circuit=circuit, n_trials=n_trials, n_samples=n_samples,
            seed=seed + index, backend=spec.policy.backend,
        )
        for index, circuit in enumerate(circuits)
    ]

    started = time.perf_counter()
    per_instance = [solve(request) for request in requests]
    per_instance_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    fused = solve_instance_block(requests)
    fused_elapsed = time.perf_counter() - started

    fused_for_real = all(
        result.metadata.get("instance_block") for result in fused
    )
    results_match = fused_for_real and all(
        np.array_equal(a.trial_best_weights, b.trial_best_weights)
        and np.array_equal(a.trial_best_assignments, b.trial_best_assignments)
        and np.array_equal(a.trajectories, b.trajectories)
        for a, b in zip(per_instance, fused)
    )
    return {
        "scenario": "engine-instance-batch",
        "suite": spec.graphs.label,
        "wall_seconds": float(fused_elapsed),
        "baseline_seconds": float(per_instance_elapsed),
        "speedup": float(per_instance_elapsed / fused_elapsed)
                   if fused_elapsed > 0 else float("inf"),
        "detail": {
            "n_instances": count,
            "n_vertices": n,
            "n_trials_per_instance": int(n_trials),
            "n_samples": int(n_samples),
            "fused_trials": int(count * n_trials),
            "fused": bool(fused_for_real),
            "per_instance_wall_seconds": float(per_instance_elapsed),
            "fused_wall_seconds": float(fused_elapsed),
            "results_match": bool(results_match),
        },
    }


def _run_scale_generate_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.graphs.generators import barabasi_albert
    from repro.scale.generators import scale_barabasi_albert

    # Same (n, m, seed) through both constructions.  The legacy generator's
    # sequential sampling and the vectorised pointer-chasing draw different
    # (equally valid) preferential-attachment realisations, so agreement is
    # checked on the edge count (the vectorised simple-graph projection may
    # drop a few duplicate picks) rather than exact edge identity.
    n = int(dict(spec.params).get("scale_n", 3000))
    m = 3
    seed = spec.seed

    started = time.perf_counter()
    legacy = barabasi_albert(n, m, seed=seed)
    legacy_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    vectorised = scale_barabasi_albert(n, m, seed=seed)
    vectorised_elapsed = time.perf_counter() - started

    expected_edges = m + max(0, n - m - 1) * m
    counts_close = (
        abs(vectorised.n_edges - expected_edges) <= 0.05 * expected_edges
        and abs(legacy.n_edges - expected_edges) <= 0.05 * expected_edges
    )
    return {
        "scenario": "scale-generate",
        "suite": spec.graphs.label,
        "wall_seconds": float(vectorised_elapsed),
        "baseline_seconds": float(legacy_elapsed),
        "speedup": float(legacy_elapsed / vectorised_elapsed)
                   if vectorised_elapsed > 0 else float("inf"),
        "detail": {
            "n_vertices": n,
            "m": m,
            "legacy_edges": int(legacy.n_edges),
            "vectorised_edges": int(vectorised.n_edges),
            "expected_edges": int(expected_edges),
            "results_match": bool(
                counts_close and vectorised._adjacency is None
            ),
        },
    }


def _run_sketch_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.scale.generators import scale_barabasi_albert
    from repro.spectral.trevisan import trevisan_sweep_cut

    # Quality ratio of the sketched Trevisan pipeline against the exact
    # sparse eigensolver on the same graph.  Both sides are deterministic
    # (seeded sketch; ARPACK uses its fixed internal start), so the gated
    # speedup is reproducible — wall times ride along in the detail.
    n = int(dict(spec.params).get("sketch_n", 1024))
    graph = scale_barabasi_albert(n, 4, seed=spec.seed)

    started = time.perf_counter()
    exact = trevisan_sweep_cut(graph, method="arpack")
    exact_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    sketched = trevisan_sweep_cut(graph, method="sketch", seed=spec.seed)
    sketched_elapsed = time.perf_counter() - started

    quality = (
        sketched.cut.weight / exact.cut.weight
        if exact.cut.weight > 0 else 1.0
    )
    return {
        "scenario": "sketch-vs-exact",
        "suite": spec.graphs.label,
        "wall_seconds": float(sketched_elapsed),
        "baseline_seconds": float(exact_elapsed),
        "speedup": float(quality),
        "detail": {
            "graph": graph.name,
            "n_vertices": int(graph.n_vertices),
            "n_edges": int(graph.n_edges),
            "exact_weight": float(exact.cut.weight),
            "sketch_weight": float(sketched.cut.weight),
            "exact_eigenvalue": float(exact.eigenvalue),
            "sketch_eigenvalue": float(sketched.eigenvalue),
            "exact_wall_seconds": float(exact_elapsed),
            "sketch_wall_seconds": float(sketched_elapsed),
            "results_match": bool(graph._adjacency is None),
        },
    }


def _run_obs_overhead_scenario(spec: WorkloadSpec) -> Dict[str, Any]:
    from repro.circuits.lif_trevisan import LIFTrevisanCircuit

    # The tracer's own overhead gate.  Two legs of the same engine run with
    # identical seeds: one under suspended() (tracing truly off — the
    # production default, even though run_bench_scenario's capture is active
    # around us) and one traced.  The gated speedup is untraced/traced wall
    # time; its floor says enabled tracing may at most double a run.
    graph = _bench_graph(spec)
    n_trials = spec.budget.n_trials
    n_samples = spec.budget.n_samples
    instance = LIFTrevisanCircuit(graph)
    common = dict(
        circuit=instance, graph=None, n_trials=n_trials,
        n_samples=n_samples, seed=spec.seed, backend=spec.policy.backend,
    )

    with suspended():
        # Warm-up outside both timed legs: caches, lazy imports, allocator.
        run_circuit_trials(**common)
        started = time.perf_counter()
        untraced = run_circuit_trials(**common)
        untraced_elapsed = time.perf_counter() - started

    with capture() as trace:
        started = time.perf_counter()
        traced = run_circuit_trials(**common)
        traced_elapsed = time.perf_counter() - started
    n_spans = len(trace.spans)

    # Direct measurement of the disabled fast path: span() while tracing is
    # off is one module-global load and an `is None` test.  The product
    # n_spans × that cost estimates what this run's instrumentation points
    # would have cost had tracing been off — the "near-zero when disabled"
    # claim, gated at ≤ 2% of the untraced wall time.
    probe = 20000
    with suspended():
        started = time.perf_counter()
        for _ in range(probe):
            with span("obs.noop.probe"):
                pass
        noop_seconds = (time.perf_counter() - started) / probe

    disabled_overhead = (
        n_spans * noop_seconds / untraced_elapsed
        if untraced_elapsed > 0 else 0.0
    )
    bit_identical = bool(
        untraced.n_rounds == traced.n_rounds
        and np.array_equal(untraced.trial_best_weights, traced.trial_best_weights)
        and np.array_equal(untraced.trajectories, traced.trajectories)
    )
    return {
        "scenario": "obs-overhead",
        "suite": spec.graphs.label,
        "wall_seconds": float(traced_elapsed),
        "baseline_seconds": float(untraced_elapsed),
        "speedup": float(untraced_elapsed / traced_elapsed)
                   if traced_elapsed > 0 else float("inf"),
        "detail": {
            "graph": graph.name,
            "n_vertices": int(graph.n_vertices),
            "n_trials": int(n_trials),
            "n_samples": int(n_samples),
            "n_spans": int(n_spans),
            "noop_span_nanoseconds": float(noop_seconds * 1e9),
            "disabled_overhead_fraction": float(disabled_overhead),
            "untraced_wall_seconds": float(untraced_elapsed),
            "traced_wall_seconds": float(traced_elapsed),
            "results_match": bool(bit_identical and disabled_overhead <= 0.02),
        },
    }


def run_bench_scenario(spec: WorkloadSpec, scenario: str) -> Dict[str, Any]:
    """Run one bench scenario and return its JSON-safe measurement payload.

    Every payload carries a ``detail["phase_timings"]`` block — the per-phase
    aggregate of the spans the scenario's legs emitted.  Both legs of every
    scenario run under the same capture, so the gated ratios are unaffected.
    """
    with capture() as trace:
        payload = _dispatch_bench_scenario(spec, scenario)
    payload.setdefault("detail", {})["phase_timings"] = trace.summary()
    return payload


def _dispatch_bench_scenario(spec: WorkloadSpec, scenario: str) -> Dict[str, Any]:
    if scenario.startswith("engine:"):
        return _run_engine_scenario(spec, scenario.split(":", 1)[1])
    if scenario == "sharded:arena":
        return _run_sharded_scenario(spec)
    if scenario == "problems-compile":
        return _run_problems_scenario(spec)
    if scenario == "serve-batching":
        return _run_serve_scenario(spec)
    if scenario == "portfolio-route":
        return _run_portfolio_scenario(spec)
    if scenario == "engine-tensor":
        return _run_engine_tensor_scenario(spec)
    if scenario == "engine-instance-batch":
        return _run_instance_batch_scenario(spec)
    if scenario == "scale-generate":
        return _run_scale_generate_scenario(spec)
    if scenario == "sketch-vs-exact":
        return _run_sketch_scenario(spec)
    if scenario == "obs-overhead":
        return _run_obs_overhead_scenario(spec)
    raise ValidationError(f"unknown bench scenario {scenario!r}")


def _record_from_payload(payload: Dict[str, Any]) -> BenchRecord:
    return BenchRecord(
        scenario=str(payload["scenario"]),
        suite=str(payload["suite"]),
        wall_seconds=float(payload["wall_seconds"]),
        baseline_seconds=float(payload["baseline_seconds"]),
        speedup=float(payload["speedup"]),
        detail=dict(payload["detail"]),
    )


def bench_outcome(records: Sequence[BenchRecord], spec: WorkloadSpec) -> WorkloadOutcome:
    """Wrap bench records into the uniform outcome (shared with shard merges)."""
    leaderboard = sorted(
        (
            {
                "solver": record.scenario,
                "score": float(record.speedup),
                "metric": "speedup (reference / optimised)",
            }
            for record in records
        ),
        key=lambda row: -row["score"],
    )
    return WorkloadOutcome(
        records=list(records),
        leaderboard=leaderboard,
        metadata={
            "schema": BENCH_SCHEMA,
            "suite": spec.graphs.label,
            "n_trials": spec.budget.n_trials,
            "n_samples": spec.budget.n_samples,
            "scenarios": [record.scenario for record in records],
        },
    )


def _bench_spec(params: Dict[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(
        workload="bench",
        graphs=GraphSource.coerce(params["suite"]),
        solvers=tuple(params["solvers"]),
        budget=Budget(
            n_trials=int(params["trials"]), n_samples=int(params["samples"])
        ),
        policy=ExecutionPolicy(mode="auto", backend=params["backend"]),
        seed=params["seed"],
        params={**params, "suite": GraphSource.coerce(params["suite"]).label},
    )


def _bench_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    records = [
        _record_from_payload(run_bench_scenario(spec, scenario))
        for (scenario,) in bench_scenarios(spec)
    ]
    return bench_outcome(records, spec)


def _format_bench(report: RunReport) -> str:
    from repro.experiments.reporting import format_table

    rows = [
        [
            record.scenario,
            f"{record.speedup:.2f}x",
            f"{record.baseline_seconds:.3f}",
            f"{record.wall_seconds:.3f}",
            "yes" if record.detail.get("results_match") else "NO",
        ]
        for record in report.records
    ]
    return format_table(
        ["scenario", "speedup", "reference s", "optimised s", "results match"],
        rows,
    )


def _plot_bench(report: RunReport) -> str:
    from repro.plotting.ascii import ascii_bar_chart

    return ascii_bar_chart(
        [row["solver"] for row in report.leaderboard],
        [max(0.0, float(row["score"])) for row in report.leaderboard],
        title="bench speedups (reference / optimised)",
        value_format="{:.2f}x",
    )


register_workload(Workload(
    name="bench",
    summary="time engine-vs-sequential and sharded-vs-monolithic (perf gate)",
    defaults={
        "suite": "er-small", "trials": 16, "samples": 128,
        "solvers": ("lif_tr", "random"), "backend": "auto", "arena_shards": 2,
        "scale_n": 3000, "sketch_n": 1024,
        "instance_count": 8, "instance_n": 48, "instance_trials": 2,
    },
    build_spec=_bench_spec,
    execute=_bench_execute,
    formatter=_format_bench,
    plotter=_plot_bench,
))


# -- baseline gate ----------------------------------------------------------


def load_baseline(path) -> Dict[str, Any]:
    """Load and validate a bench tolerance baseline file."""
    with open(path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    if not isinstance(baseline, dict) or "min_speedup" not in baseline:
        raise ValidationError(
            f"baseline file {path!r} must be an object with a 'min_speedup' map"
        )
    return baseline


def check_baseline(report: RunReport, baseline: Dict[str, Any]) -> List[str]:
    """Compare a bench report against a tolerance baseline.

    Returns a list of human-readable violations (empty = gate passes).
    Scenarios in the baseline but absent from the report are violations too —
    a silently dropped benchmark must not pass the gate.  A scenario whose
    optimised/reference results diverged fails regardless of speed.
    """
    failures: List[str] = []
    by_scenario = {record.scenario: record for record in report.records}
    for scenario, floor in dict(baseline.get("min_speedup", {})).items():
        record = by_scenario.get(scenario)
        if record is None:
            failures.append(f"{scenario}: missing from bench report")
            continue
        if record.speedup < float(floor):
            failures.append(
                f"{scenario}: speedup {record.speedup:.2f}x below the "
                f"baseline floor {float(floor):.2f}x"
            )
    for record in report.records:
        if record.detail.get("results_match") is False:
            failures.append(
                f"{record.scenario}: optimised and reference paths disagree"
            )
    return failures
