"""Generic spec execution: capability-routed trials over graphs x solvers.

This is the engine room shared by the solver arena and every ad-hoc
:class:`repro.workloads.WorkloadSpec`: build the graphs, then for each
(graph, solver) cell route execution by the solver's registered capabilities
and the spec's :class:`~repro.workloads.spec.ExecutionPolicy`:

* **Batchable circuits** ride the trial-parallel batched engine via
  :func:`repro.experiments.runner.run_circuit_trials` — all trials of a cell
  in one vectorised solve.
* **Sequential stochastic solvers** run their trials through
  :func:`repro.parallel.pool.parallel_map` with per-trial seeds.
* **Deterministic solvers** run exactly once per graph.

Trial *i* on graph *g* is seeded ``SeedSequence(seed, spawn_key=(g, i))`` on
**every** path (see :func:`repro.utils.rng.paired_seed`), so comparisons are
paired and the engine is a pure execution detail.  The outcome is expressed
in the arena's vocabulary — :class:`repro.arena.results.ArenaEntry` records
wrapped in an :class:`repro.arena.results.ArenaResult` — because "race these
solvers on these graphs under this budget" *is* the arena, whatever workload
asked for it.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.algorithms.registry import SolverSpec
from repro.analysis.ratios import relative_cut_weight
from repro.arena.results import ArenaEntry, ArenaResult
from repro.engine.sampler import trial_seed_sequences
from repro.experiments import runner as _runner
from repro.graphs.graph import Graph
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.utils.rng import paired_seed
from repro.utils.validation import ValidationError
from repro.workloads.spec import Budget, WorkloadSpec

__all__ = ["execute_spec"]


def _sequential_trial(task: tuple) -> float:
    """One trial of a sequential solver (module-level for pickling).

    The task carries the solver *callable* itself, not its registry key:
    worker processes under non-fork start methods re-import the registry
    without runtime registrations, so a key lookup there would fail for
    custom solvers.  Pickling the function by reference sidesteps that.
    """
    solver_fn, graph, n_samples, seed_seq = task
    cut = solver_fn(graph, n_samples=n_samples, seed=seed_seq)
    return float(cut.weight)


def _run_engine_cell(
    spec: SolverSpec,
    graph: Graph,
    budget: Budget,
    root: np.random.SeedSequence,
    backend: str,
) -> Tuple[float, float, int, int, dict]:
    """Run one batchable cell through the engine; returns core measurements."""
    result = _runner.run_circuit_trials(
        graph=graph,
        circuit=spec.circuit,
        n_trials=budget.n_trials,
        n_samples=budget.n_samples,
        seed=root,
        backend=backend,
    )
    weights = np.asarray(result.trial_best_weights, dtype=float)
    metadata = {
        "engine_elapsed_seconds": float(result.elapsed_seconds),
        "engine_backend": result.backend_name,
        "n_rounds": int(result.n_rounds),
        "early_stopped": bool(result.early_stopped),
        "trial_weights": weights.tolist(),
    }
    best = float(weights.max()) if weights.size else 0.0
    mean = float(weights.mean()) if weights.size else 0.0
    return best, mean, int(result.n_trials), int(result.n_rounds), metadata


def _run_sequential_cell(
    spec: SolverSpec,
    graph: Graph,
    budget: Budget,
    root: np.random.SeedSequence,
    parallel: Optional[ParallelConfig],
) -> Tuple[float, float, int, int, dict]:
    """Run one non-batchable cell: 1 trial if deterministic, else the budget."""
    n_trials = 1 if spec.deterministic else budget.n_trials
    # The engine's own derivation, so the two paths stay paired by
    # construction rather than by parallel re-implementation.
    seeds = trial_seed_sequences(root, n_trials)
    tasks = [(spec.fn, graph, budget.n_samples, s) for s in seeds]
    metadata: dict = {}
    if budget.max_seconds is not None and n_trials > 1:
        # A wall-clock cap needs a serial loop with a clock check between
        # trials; parallel_map has no mid-flight cancellation.
        weights: List[float] = []
        started = time.perf_counter()
        for task in tasks:
            weights.append(_sequential_trial(task))
            if time.perf_counter() - started >= budget.max_seconds:
                break
        if len(weights) < n_trials:
            metadata["budget_truncated"] = True
        n_trials = len(weights)
    else:
        weights = parallel_map(_sequential_trial, tasks, config=parallel)
    arr = np.asarray(weights, dtype=float)
    metadata["trial_weights"] = arr.tolist()
    return float(arr.max()), float(arr.mean()), n_trials, budget.n_samples, metadata


def execute_spec(spec: WorkloadSpec) -> ArenaResult:
    """Execute *spec* generically and return the arena-shaped result.

    The spec's seed must already be resolved (an integer —
    :class:`repro.workloads.Session` draws fresh entropy for ``None`` seeds
    before execution so the run is recorded reproducibly).
    """
    solver_specs = spec.resolve_solvers()
    seed = spec.seed
    if seed is None:
        raise ValidationError(
            "execute_spec needs a resolved integer seed; run specs through a "
            "Session (which draws fresh entropy for seed=None)"
        )
    budget = spec.budget
    policy = spec.policy
    parallel = policy.parallel_config()

    graphs = spec.graphs.build(seed)
    names = [graph.name for graph in graphs]
    if len(set(names)) != len(names):
        # Entries, ratios, and report tables are all keyed by graph name;
        # duplicates would silently merge distinct graphs' results.
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValidationError(
            f"suite graphs must have unique names; duplicated: {duplicates} "
            f"(pass name=... to the generators)"
        )

    started = time.perf_counter()
    entries: List[ArenaEntry] = []
    for g, graph in enumerate(graphs):
        # Root of suite graph g; trials are its spawn children (g, i).
        root = paired_seed(seed, g)
        for solver_spec in solver_specs:
            cell_started = time.perf_counter()
            on_engine = bool(policy.use_engine and solver_spec.batchable)
            if on_engine:
                best, mean, trials_run, samples_run, metadata = _run_engine_cell(
                    solver_spec, graph, budget, root, policy.backend
                )
            else:
                best, mean, trials_run, samples_run, metadata = _run_sequential_cell(
                    solver_spec, graph, budget, root, parallel
                )
            elapsed = time.perf_counter() - cell_started
            if budget.max_seconds is not None and elapsed > budget.max_seconds:
                metadata.setdefault("budget_overrun_seconds",
                                    float(elapsed - budget.max_seconds))
            if solver_spec.budget == "ignored":
                samples_run = 0
            total_samples = trials_run * samples_run
            entries.append(ArenaEntry(
                solver=solver_spec.key,
                graph_name=graph.name,
                n_vertices=graph.n_vertices,
                n_edges=graph.n_edges,
                total_weight=float(graph.total_weight),
                best_weight=best,
                mean_weight=mean,
                cut_ratio=0.0,  # filled below once the per-graph best is known
                n_trials=trials_run,
                n_samples=samples_run,
                elapsed_seconds=float(elapsed),
                samples_per_second=(total_samples / elapsed) if elapsed > 0 and total_samples
                                   else 0.0,
                used_engine=on_engine,
                backend=metadata.get("engine_backend", ""),
                deterministic=solver_spec.deterministic,
                budget_semantics=solver_spec.budget,
                metadata=metadata,
            ))

    # Arena-relative ratios: per graph, the best weight any solver found.
    best_by_graph = {}
    for entry in entries:
        current = best_by_graph.get(entry.graph_name, 0.0)
        best_by_graph[entry.graph_name] = max(current, entry.best_weight)
    entries = [
        dataclasses.replace(
            entry,
            cut_ratio=relative_cut_weight(entry.best_weight, best_by_graph[entry.graph_name]),
        )
        for entry in entries
    ]

    return ArenaResult(
        suite=spec.graphs.label,
        solvers=tuple(s.key for s in solver_specs),
        graph_names=tuple(graph.name for graph in graphs),
        n_trials=budget.n_trials,
        n_samples=budget.n_samples,
        seed=seed,
        entries=entries,
        elapsed_seconds=float(time.perf_counter() - started),
    )
