"""Generic spec execution: capability-routed trials over graphs x solvers.

This is the engine room shared by the solver arena and every ad-hoc
:class:`repro.workloads.WorkloadSpec`: build the graphs, then for each
(graph, solver) cell route execution by the solver's registered capabilities
and the spec's :class:`~repro.workloads.spec.ExecutionPolicy`:

* **Batchable circuits** ride the trial-parallel batched engine via
  :func:`repro.experiments.runner.run_circuit_trials` — all trials of a cell
  in one vectorised solve.
* **Sequential stochastic solvers** run their trials through
  :func:`repro.parallel.pool.parallel_map` with per-trial seeds.
* **Deterministic solvers** run exactly once per graph.

Trial *i* on graph *g* is seeded ``SeedSequence(seed, spawn_key=(g, i))`` on
**every** path (see :func:`repro.utils.rng.paired_seed`), so comparisons are
paired and the engine is a pure execution detail.  The outcome is expressed
in the arena's vocabulary — :class:`repro.arena.results.ArenaEntry` records
wrapped in an :class:`repro.arena.results.ArenaResult` — because "race these
solvers on these graphs under this budget" *is* the arena, whatever workload
asked for it.

Shardable units
---------------
Execution is decomposed into *units*: ``(graph_index, solver_key, trial_lo,
trial_hi)`` tuples enumerated by :func:`cell_units`, each executed
independently by :func:`run_cell_units` into a JSON-safe payload, and folded
back into :class:`ArenaEntry` records by :func:`entries_from_payloads`.
:func:`execute_spec` is simply "all units, in process, merged immediately";
the sharded executor (:mod:`repro.distrib`) runs the same units across
checkpointed shards and merges through the same fold, which is why a merged
sharded run reproduces a monolithic run record for record (modulo timing).
Because every unit derives its randomness from the paired ``(g, i)`` seeds,
the decomposition never changes results.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.registry import SolverSpec
from repro.analysis.ratios import relative_cut_weight
from repro.arena.results import ArenaEntry, ArenaResult
from repro.engine.instances import solve_instance_block
from repro.engine.request import SolveRequest, SolveResult
from repro.engine.sampler import trial_seed_sequences
from repro.experiments import runner as _runner
from repro.graphs.graph import Graph
from repro.parallel.partition import partition_work
from repro.parallel.pool import ParallelConfig, parallel_map
from repro.serve.cache import ContentAddressedCache, content_key
from repro.utils.rng import paired_seed
from repro.utils.validation import ValidationError
from repro.workloads.spec import Budget, WorkloadSpec

__all__ = [
    "execute_spec",
    "cell_units",
    "run_cell_units",
    "entries_from_payloads",
    "build_spec_graphs",
]

#: A unit key: (graph_index, solver_key, trial_lo, trial_hi).
CellUnit = Tuple[int, str, int, int]


def _sequential_trial(task: tuple) -> float:
    """One trial of a sequential solver (module-level for pickling).

    The task carries the solver *callable* itself, not its registry key:
    worker processes under non-fork start methods re-import the registry
    without runtime registrations, so a key lookup there would fail for
    custom solvers.  Pickling the function by reference sidesteps that.
    """
    solver_fn, graph, n_samples, seed_seq = task
    cut = solver_fn(graph, n_samples=n_samples, seed=seed_seq)
    return float(cut.weight)


#: Small content-addressed LRU of materialised graph lists
#: (:class:`repro.serve.cache.ContentAddressedCache`), keyed by the hash of
#: (source description, seed) with the originating GraphSuite object stored
#: alongside for an identity check on lookup.  Graph sources are pure
#: functions of the seed, so reuse is safe; it spares an in-process sharded
#: run (plan + one build per shard) from rebuilding / reloading the same
#: suite once per shard, and the solve service's suite-backed requests reuse
#: it too.  Explicit in-memory sources are never cached (their to_dict
#: records names only, which could collide).
_GRAPH_CACHE = ContentAddressedCache(max_entries=8, name="suite-builds")


def _graph_cache_suite(spec: WorkloadSpec):
    """The registered GraphSuite object behind a suite source (else None)."""
    if spec.graphs.kind != "suite":
        return None
    suite = spec.graphs.suite
    if isinstance(suite, str):
        from repro.arena.suite import SUITES

        suite = SUITES.get(suite)
    return suite


def build_spec_graphs(spec: WorkloadSpec) -> List[Graph]:
    """Materialise the spec's graphs and enforce unique names.

    Entries, ratios, and report tables are all keyed by graph name;
    duplicates would silently merge distinct graphs' results.
    """
    cache_key = None
    if spec.graphs.kind != "explicit":
        cache_key = content_key(spec.graphs.to_dict(), spec.seed)
        cached = _GRAPH_CACHE.get(cache_key)
        if cached is not None:
            cached_suite, cached_graphs = cached
            # Identity check (not id()): the entry holds a strong reference
            # to the suite object it was built from, so a suite re-registered
            # under the same key (register_suite(..., overwrite=True)) can
            # never be served the replaced builder's graphs.
            if cached_suite is _graph_cache_suite(spec):
                return list(cached_graphs)
            _GRAPH_CACHE.invalidate(cache_key)
    graphs = spec.graphs.build(spec.seed)
    names = [graph.name for graph in graphs]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise ValidationError(
            f"suite graphs must have unique names; duplicated: {duplicates} "
            f"(pass name=... to the generators)"
        )
    if cache_key is not None:
        _GRAPH_CACHE.put(cache_key, (_graph_cache_suite(spec), list(graphs)))
    return graphs


def _check_resolved_seed(spec: WorkloadSpec) -> int:
    if spec.seed is None:
        raise ValidationError(
            "the executor needs a resolved integer seed; run specs through a "
            "Session (which draws fresh entropy for seed=None)"
        )
    return int(spec.seed)


def cell_units(
    spec: WorkloadSpec,
    n_shards: int = 1,
    graphs: Optional[Sequence[Graph]] = None,
) -> List[CellUnit]:
    """Enumerate the spec's execution units for an *n_shards*-way split.

    One unit per (graph, solver) cell by default.  When the spec has fewer
    cells than requested shards, *stochastic* cells are additionally split
    into contiguous trial ranges (via
    :func:`repro.parallel.partition.partition_work`) so work spreads over the
    shards; trial *i* keeps its paired ``(g, i)`` seed, so the split never
    changes results.  The split factor is computed from the stochastic cell
    count alone — deterministic solvers (always exactly one trial) cannot
    absorb extra shards.  Cells are never trial-split when the budget
    carries a wall-clock cap (``max_seconds`` is a per-cell serial
    semantic).
    """
    _check_resolved_seed(spec)
    if n_shards < 1:
        raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
    solver_specs = spec.resolve_solvers()
    if graphs is None:
        graphs = build_spec_graphs(spec)
    budget = spec.budget
    n_cells = len(graphs) * len(solver_specs)
    n_stochastic = len(graphs) * sum(1 for s in solver_specs if not s.deterministic)
    split = 1
    if n_stochastic and n_shards > n_cells and budget.max_seconds is None:
        # Only stochastic cells can split, so they alone must cover the
        # shard deficit left after every cell (deterministic ones included)
        # has taken its single unit.
        split = min(
            budget.n_trials,
            math.ceil((n_shards - (n_cells - n_stochastic)) / n_stochastic),
        )
    units: List[CellUnit] = []
    for g in range(len(graphs)):
        for solver in solver_specs:
            n_trials = 1 if solver.deterministic else budget.n_trials
            blocks = 1 if solver.deterministic else split
            for lo, hi in partition_work(n_trials, blocks):
                if hi > lo:
                    units.append((g, solver.key, lo, hi))
    return units


def _solver_by_key(spec: WorkloadSpec) -> Dict[str, SolverSpec]:
    return {s.key: s for s in spec.resolve_solvers()}


def _run_engine_unit(
    solver: SolverSpec,
    graph: Graph,
    budget: Budget,
    root: np.random.SeedSequence,
    backend: str,
    trial_lo: int,
    trial_hi: int,
) -> Tuple[List[float], int, dict]:
    """Run one batchable unit through the engine; returns (weights, samples, meta)."""
    result = _runner.run_circuit_trials(
        graph=graph,
        circuit=solver.circuit,
        n_trials=trial_hi - trial_lo,
        n_samples=budget.n_samples,
        seed=root,
        backend=backend,
        trial_offset=trial_lo,
        deadline_seconds=budget.max_seconds,
    )
    return _engine_unit_payload(result)


def _engine_unit_payload(result: SolveResult) -> Tuple[List[float], int, dict]:
    """Fold a :class:`SolveResult` into the unit (weights, samples, meta) triple."""
    metadata = {
        "engine_elapsed_seconds": float(result.elapsed_seconds),
        "engine_backend": result.backend_name,
        "n_rounds": int(result.n_rounds),
        "early_stopped": bool(result.early_stopped),
    }
    if result.metadata.get("array_backend", "numpy") != "numpy":
        metadata["array_backend"] = str(result.metadata["array_backend"])
    block = result.metadata.get("instance_block")
    if block:
        metadata["instance_block"] = {
            "size": int(block["size"]),
            "fused_trials": int(block["fused_trials"]),
        }
    if result.metadata.get("deadline_exceeded"):
        metadata["budget_truncated"] = True
    weights = [float(w) for w in np.asarray(result.trial_best_weights, dtype=float)]
    return weights, int(result.n_rounds), metadata


def _fused_engine_results(
    spec: WorkloadSpec,
    prepared: Sequence[Tuple[int, CellUnit, Graph, SolverSpec]],
) -> Dict[int, Tuple[SolveResult, float]]:
    """Graph-axis batching pre-pass: fuse the engine units into one kernel batch.

    Returns ``{unit position: (result, attributed wall seconds)}`` for every
    batchable unit when fusion applies, else an empty dict (the caller's
    per-unit loop then runs them individually).  Fusion applies only with
    ``policy.instance_batch`` on, the engine enabled, at least two batchable
    units, and no wall-clock budget (a deadline truncating the fused block
    would couple cells).  :func:`solve_instance_block` itself falls back to
    per-request solves when the units' execution shapes differ, so results
    are always exactly what the unfused loop would produce; the shared wall
    time is attributed to units proportionally to their trial counts.
    """
    policy, budget = spec.policy, spec.budget
    if not (policy.instance_batch and policy.use_engine) or budget.max_seconds is not None:
        return {}
    engine_units = [p for p in prepared if p[3].batchable]
    if len(engine_units) < 2:
        return {}
    seed = _check_resolved_seed(spec)
    requests = [
        SolveRequest(
            circuit=solver.circuit,
            graph=graph,
            n_trials=hi - lo,
            n_samples=budget.n_samples,
            seed=paired_seed(seed, g),
            trial_offset=lo,
            backend=policy.backend,
        )
        for _, (g, _, lo, hi), graph, solver in engine_units
    ]
    started = time.perf_counter()
    results = solve_instance_block(requests)
    wall = time.perf_counter() - started
    total_trials = sum(result.n_trials for result in results) or 1
    return {
        position: (result, wall * result.n_trials / total_trials)
        for (position, _, _, _), result in zip(engine_units, results)
    }


def _run_sequential_unit(
    solver: SolverSpec,
    graph: Graph,
    budget: Budget,
    root: np.random.SeedSequence,
    parallel: Optional[ParallelConfig],
    trial_lo: int,
    trial_hi: int,
) -> Tuple[List[float], int, dict]:
    """Run one non-batchable unit: its trial range through the per-trial path."""
    n_trials = trial_hi - trial_lo
    # The engine's own derivation, so the two paths stay paired by
    # construction rather than by parallel re-implementation.
    seeds = trial_seed_sequences(root, n_trials, start=trial_lo)
    tasks = [(solver.fn, graph, budget.n_samples, s) for s in seeds]
    metadata: dict = {}
    if budget.max_seconds is not None and n_trials > 1:
        # A wall-clock cap needs a serial loop with a clock check between
        # trials; parallel_map has no mid-flight cancellation.
        weights: List[float] = []
        started = time.perf_counter()
        for task in tasks:
            weights.append(_sequential_trial(task))
            if time.perf_counter() - started >= budget.max_seconds:
                break
        if len(weights) < n_trials:
            metadata["budget_truncated"] = True
    else:
        weights = parallel_map(_sequential_trial, tasks, config=parallel)
    return [float(w) for w in weights], budget.n_samples, metadata


def run_cell_units(
    spec: WorkloadSpec,
    units: Sequence[CellUnit],
    graphs: Optional[Sequence[Graph]] = None,
) -> List[dict]:
    """Execute *units* of *spec* and return one JSON-safe payload per unit.

    Payload schema (all values JSON-safe)::

        {"graph_index": int, "solver": str, "trial_lo": int, "trial_hi": int,
         "graph_name": str, "n_vertices": int, "n_edges": int,
         "total_weight": float,
         "weights": [float, ...],        # per-trial best cut weights
         "n_samples_run": int,           # read-outs per trial actually run
         "elapsed_seconds": float,
         "used_engine": bool,
         "metadata": {...}}              # engine backend/rounds, truncation
    """
    seed = _check_resolved_seed(spec)
    if graphs is None:
        graphs = build_spec_graphs(spec)
    by_key = _solver_by_key(spec)
    budget = spec.budget
    policy = spec.policy
    parallel = policy.parallel_config()

    prepared: List[Tuple[int, CellUnit, Graph, SolverSpec]] = []
    for position, unit in enumerate(units):
        g, key, lo, hi = unit
        if not (0 <= g < len(graphs)):
            raise ValidationError(
                f"unit graph index {g} out of range for {len(graphs)} graph(s)"
            )
        if key not in by_key:
            raise ValidationError(f"unit names unknown solver {key!r}")
        prepared.append((position, unit, graphs[g], by_key[key]))

    # Graph-axis batching: all batchable units in one fused kernel batch
    # (bit-identical to the per-unit loop; see _fused_engine_results).
    fused = _fused_engine_results(spec, prepared)

    payloads: List[dict] = []
    for position, unit, graph, solver in prepared:
        g, key, lo, hi = unit
        # Root of suite graph g, created fresh per unit so SeedSequence spawn
        # state never leaks between units; trials are its (g, i) children.
        root = paired_seed(seed, g)
        started = time.perf_counter()
        on_engine = bool(policy.use_engine and solver.batchable)
        if position in fused:
            result, elapsed = fused[position]
            weights, samples_run, metadata = _engine_unit_payload(result)
        elif on_engine:
            weights, samples_run, metadata = _run_engine_unit(
                solver, graph, budget, root, policy.backend, lo, hi
            )
            elapsed = time.perf_counter() - started
        else:
            weights, samples_run, metadata = _run_sequential_unit(
                solver, graph, budget, root, parallel, lo, hi
            )
            elapsed = time.perf_counter() - started
        if budget.max_seconds is not None and elapsed > budget.max_seconds:
            metadata.setdefault(
                "budget_overrun_seconds", float(elapsed - budget.max_seconds)
            )
        payloads.append({
            "graph_index": int(g),
            "solver": key,
            "trial_lo": int(lo),
            "trial_hi": int(hi),
            "graph_name": graph.name,
            "n_vertices": int(graph.n_vertices),
            "n_edges": int(graph.n_edges),
            "total_weight": float(graph.total_weight),
            "weights": weights,
            "n_samples_run": int(samples_run),
            "elapsed_seconds": float(elapsed),
            "used_engine": on_engine,
            "metadata": metadata,
        })
    return payloads


def entries_from_payloads(
    spec: WorkloadSpec, payloads: Sequence[dict]
) -> List[ArenaEntry]:
    """Fold unit payloads into :class:`ArenaEntry` records (canonical order).

    Payloads belonging to the same (graph, solver) cell — a cell that was
    trial-split across shards — are merged in trial order: per-trial weights
    concatenate, timings sum, and best/mean are recomputed over the full
    trial set, which reproduces the unsplit cell's values exactly.
    Arena-relative cut ratios are computed *after* the fold, over every cell,
    exactly as the monolithic executor does.
    """
    solver_specs = spec.resolve_solvers()
    by_key = {s.key: s for s in solver_specs}
    cells: Dict[Tuple[int, str], List[dict]] = {}
    for payload in payloads:
        cells.setdefault(
            (int(payload["graph_index"]), str(payload["solver"])), []
        ).append(payload)

    entries: List[ArenaEntry] = []
    # Canonical order: graph index, then the spec's solver order.
    solver_order = {s.key: i for i, s in enumerate(solver_specs)}
    for (g, key) in sorted(cells, key=lambda c: (c[0], solver_order.get(c[1], 0))):
        blocks = sorted(cells[(g, key)], key=lambda p: p["trial_lo"])
        solver = by_key.get(key)
        if solver is None:
            raise ValidationError(f"payload names unknown solver {key!r}")
        weights = np.asarray(
            [w for block in blocks for w in block["weights"]], dtype=float
        )
        if weights.size == 0:
            continue
        elapsed = float(sum(block["elapsed_seconds"] for block in blocks))
        samples_run = max(int(block["n_samples_run"]) for block in blocks)
        used_engine = all(bool(block["used_engine"]) for block in blocks)
        if len(blocks) == 1:
            metadata = dict(blocks[0]["metadata"])
        else:
            metadata = _merge_block_metadata(blocks)
        metadata["trial_weights"] = weights.tolist()
        if solver.budget == "ignored":
            samples_run = 0
        trials_run = int(weights.size)
        total_samples = trials_run * samples_run
        first = blocks[0]
        entries.append(ArenaEntry(
            solver=key,
            graph_name=str(first["graph_name"]),
            n_vertices=int(first["n_vertices"]),
            n_edges=int(first["n_edges"]),
            total_weight=float(first["total_weight"]),
            best_weight=float(weights.max()),
            mean_weight=float(weights.mean()),
            cut_ratio=0.0,  # filled below once the per-graph best is known
            n_trials=trials_run,
            n_samples=samples_run,
            elapsed_seconds=elapsed,
            samples_per_second=(total_samples / elapsed) if elapsed > 0 and total_samples
                               else 0.0,
            used_engine=used_engine,
            backend=metadata.get("engine_backend", ""),
            deterministic=solver.deterministic,
            budget_semantics=solver.budget,
            metadata=metadata,
        ))

    # Arena-relative ratios: per graph, the best weight any solver found.
    best_by_graph: Dict[str, float] = {}
    for entry in entries:
        current = best_by_graph.get(entry.graph_name, 0.0)
        best_by_graph[entry.graph_name] = max(current, entry.best_weight)
    return [
        dataclasses.replace(
            entry,
            cut_ratio=relative_cut_weight(entry.best_weight, best_by_graph[entry.graph_name]),
        )
        for entry in entries
    ]


def _merge_block_metadata(blocks: Sequence[dict]) -> dict:
    """Combine trial-block metadata for one cell (timings sum, flags union)."""
    merged: dict = {}
    for block in blocks:
        for key, value in dict(block["metadata"]).items():
            if key in ("engine_elapsed_seconds", "budget_overrun_seconds"):
                merged[key] = merged.get(key, 0.0) + float(value)
            elif key == "n_rounds":
                merged[key] = max(int(merged.get(key, 0)), int(value))
            elif key in ("early_stopped", "budget_truncated"):
                merged[key] = bool(merged.get(key, False)) or bool(value)
            else:
                merged.setdefault(key, value)
    merged["n_unit_blocks"] = len(blocks)
    return merged


def result_from_entries(
    spec: WorkloadSpec,
    graph_names: Sequence[str],
    entries: Sequence[ArenaEntry],
    elapsed_seconds: float,
) -> ArenaResult:
    """Wrap folded entries into the arena-shaped result for *spec*."""
    return ArenaResult(
        suite=spec.graphs.label,
        solvers=tuple(s.key for s in spec.resolve_solvers()),
        graph_names=tuple(graph_names),
        n_trials=spec.budget.n_trials,
        n_samples=spec.budget.n_samples,
        seed=spec.seed,
        entries=list(entries),
        elapsed_seconds=float(elapsed_seconds),
    )


def execute_spec(spec: WorkloadSpec) -> ArenaResult:
    """Execute *spec* generically and return the arena-shaped result.

    The spec's seed must already be resolved (an integer —
    :class:`repro.workloads.Session` draws fresh entropy for ``None`` seeds
    before execution so the run is recorded reproducibly).  Equivalent to
    running every :func:`cell_units` unit and folding with
    :func:`entries_from_payloads` — the exact pipeline the sharded executor
    distributes.
    """
    _check_resolved_seed(spec)
    graphs = build_spec_graphs(spec)
    started = time.perf_counter()
    units = cell_units(spec, n_shards=1, graphs=graphs)
    payloads = run_cell_units(spec, units, graphs=graphs)
    entries = entries_from_payloads(spec, payloads)
    return result_from_entries(
        spec,
        [graph.name for graph in graphs],
        entries,
        time.perf_counter() - started,
    )
