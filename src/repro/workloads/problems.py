"""The ``problems`` workload: race solvers over a compiled problem suite.

``repro run problems --param problem=qubo`` (or ``ising`` / ``dicut`` /
``2sat``) builds a :class:`repro.problems.source.ProblemSource` over the
matching problem suite, lowers every instance to MAXCUT through the problem
compiler (certified per instance), and races a solver set mixing
compiled-to-MAXCUT solvers (``lif_gw`` through the batched engine, ``gw``,
``annealing``/``tempering``, ``random``) with the problem class's *native*
solvers (``maxdicut_gw``, ``max2sat_gw``) on one leaderboard.

There is deliberately **no custom executor**: the spec runs through the
generic capability-routed executor, so engine batching, ``--shards N``
checkpointed sharding, ``--resume``, and ``repro merge`` all apply to
problem workloads exactly as they do to graph workloads.

Imports of :mod:`repro.problems` happen inside the factories — the problems
package itself imports :mod:`repro.workloads.spec`, and deferring breaks the
cycle regardless of which package is imported first.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.utils.validation import ValidationError
from repro.workloads.registry import Workload, register_workload
from repro.workloads.report import RunReport
from repro.workloads.spec import Budget, ExecutionPolicy, WorkloadSpec

__all__ = [
    "PROBLEM_KIND_ALIASES",
    "DEFAULT_PROBLEM_SUITES",
    "default_problem_solvers",
    "check_solver_compatibility",
]

#: Accepted ``problem=`` spellings → canonical problem kind.
PROBLEM_KIND_ALIASES = {
    "qubo": "qubo",
    "ising": "ising",
    "dicut": "maxdicut",
    "maxdicut": "maxdicut",
    "2sat": "max2sat",
    "max2sat": "max2sat",
}

#: Canonical kind → default problem suite.
DEFAULT_PROBLEM_SUITES = {
    "qubo": "qubo-small",
    "ising": "ising-small",
    "maxdicut": "dicut-small",
    "max2sat": "2sat-small",
}

#: Compiled-graph solvers every problem race includes by default.
_BASE_SOLVERS = ("lif_gw", "gw", "annealing", "tempering", "random")


def default_problem_solvers(kind: str) -> Tuple[str, ...]:
    """The default solver race for problem class *kind*.

    Compiled-to-MAXCUT solvers (circuit + classical) plus every registered
    problem-native solver of the class, deduplicated in stable order.
    """
    from repro.algorithms.registry import solvers_for_problem

    solvers = list(_BASE_SOLVERS)
    for key in solvers_for_problem(kind):
        if key not in solvers:
            solvers.append(key)
    return tuple(solvers)


def check_solver_compatibility(name: str, kind: str) -> "Any":
    """Resolve solver *name* and check it can run a compiled *kind* instance.

    The one routing rule shared by the ``problems`` workload and
    ``repro solve --problem``: a solver is compatible when it handles any
    MAXCUT graph (``"maxcut"`` in its ``problem_classes``) or is native to
    the class.  Returns the resolved :class:`SolverSpec`; raises otherwise.
    """
    from repro.algorithms.registry import get_spec

    spec = get_spec(name)
    if "maxcut" in spec.problem_classes or kind in spec.problem_classes:
        return spec
    raise ValidationError(
        f"solver {spec.key!r} handles problem class(es) "
        f"{list(spec.problem_classes)} and cannot solve a compiled "
        f"{kind!r} instance; pick a maxcut-capable or {kind}-native solver"
    )


def _check_solver_compatibility(solvers: Tuple[str, ...], kind: str) -> None:
    for name in solvers:
        check_solver_compatibility(name, kind)


def _problems_spec(params: Dict[str, Any]) -> WorkloadSpec:
    from repro.problems.source import ProblemSource
    from repro.problems.suites import get_problem_suite

    requested = str(params["problem"]).lower()
    kind = PROBLEM_KIND_ALIASES.get(requested)
    if kind is None:
        raise ValidationError(
            f"problem must be one of {sorted(PROBLEM_KIND_ALIASES)}, "
            f"got {params['problem']!r}"
        )
    suite_key = str(params["suite"]) or DEFAULT_PROBLEM_SUITES[kind]
    suite = get_problem_suite(suite_key)
    if suite.kind != kind:
        raise ValidationError(
            f"problem suite {suite_key!r} holds {suite.kind!r} instances, "
            f"not {kind!r}; pass a matching suite (or drop --param suite)"
        )
    solvers = tuple(params["solvers"]) or default_problem_solvers(kind)
    _check_solver_compatibility(solvers, kind)
    mode = "auto" if params["use_engine"] else "parallel"
    return WorkloadSpec(
        workload="problems",
        graphs=ProblemSource.from_suite(suite_key),
        solvers=solvers,
        budget=Budget(
            n_trials=int(params["trials"]),
            n_samples=int(params["samples"]),
            max_seconds=params["max_seconds"],
        ),
        policy=ExecutionPolicy(
            mode=mode, backend=params["backend"], n_workers=params["workers"],
        ),
        seed=params["seed"],
        params={**params, "problem": kind, "suite": suite_key, "solvers": solvers},
    )


def _format_problems(report: RunReport) -> str:
    from repro.experiments.reporting import format_arena_report
    from repro.workloads.paper import arena_result_from_report

    kind = report.params.get("problem", "?")
    header = (
        f"problem class {kind!r} — every instance compiled to MAXCUT "
        f"(certified); native solvers embedded on the same leaderboard\n"
    )
    return header + format_arena_report(arena_result_from_report(report))


def _plot_problems(report: RunReport) -> str:
    from repro.plotting.ascii import render_leaderboard
    from repro.workloads.paper import arena_result_from_report

    return render_leaderboard(arena_result_from_report(report))


register_workload(Workload(
    name="problems",
    summary="race compiled-to-MAXCUT and problem-native solvers over a problem suite",
    defaults={
        "problem": "qubo", "suite": "", "solvers": (), "trials": 2,
        "samples": 64, "max_seconds": None, "backend": "auto",
        "use_engine": True, "workers": 1,
    },
    build_spec=_problems_spec,
    formatter=_format_problems,
    plotter=_plot_problems,
))
