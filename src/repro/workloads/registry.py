"""The workload registry: named, parameterised workload definitions.

A :class:`Workload` bundles a name, a defaults table, a spec factory, and an
executor.  Registered workloads are discoverable via :func:`list_workloads`
and runnable via ``repro run <name>`` or
:func:`repro.workloads.run_workload`; the five paper workloads
(``figure3``, ``figure4``, ``table1``, ``ablation``, ``arena``) are
registered on import of :mod:`repro.workloads.paper`.

Registering a new workload::

    register_workload(Workload(
        name="my-sweep",
        summary="one-line description",
        defaults={"trials": 4, "samples": 128},
        build_spec=lambda params: WorkloadSpec(...),
    ))

A workload without a custom ``execute`` runs through the generic
capability-routed executor (:func:`repro.workloads.executor.execute_spec`),
so most new scenarios are nothing but a ``build_spec`` of ~30 lines.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.utils.validation import ValidationError
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Workload",
    "WORKLOADS",
    "register_workload",
    "get_workload",
    "list_workloads",
    "accepted_params",
    "resolve_params",
    "coerce_param",
    "coerce_param_strings",
]

SpecFactory = Callable[[Dict[str, Any]], WorkloadSpec]
Executor = Callable[[WorkloadSpec], WorkloadOutcome]
Formatter = Callable[[RunReport], str]


@dataclass(frozen=True)
class Workload:
    """Metadata + factories for one registered workload.

    Attributes
    ----------
    name:
        Registry key (``repro run <name>``).
    summary:
        One-line human description for listings.
    defaults:
        Parameter defaults; the keys define the accepted ``--param`` names
        (plus the implicit ``seed``), and each default's type drives CLI
        string coercion.
    build_spec:
        ``params -> WorkloadSpec`` (params are the defaults merged with
        overrides, including ``seed``).
    execute:
        Optional custom executor ``spec -> WorkloadOutcome``; when omitted
        the generic capability-routed executor runs the spec.
    formatter:
        Optional ``report -> str`` used by the CLI to print results.
    plotter:
        Optional ``report -> str`` used by the CLI under ``--plot``.
    """

    name: str
    summary: str
    defaults: Mapping[str, Any]
    build_spec: SpecFactory
    execute: Optional[Executor] = None
    formatter: Optional[Formatter] = None
    plotter: Optional[Formatter] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError(
                f"workload name must be a non-empty string, got {self.name!r}"
            )
        if not callable(self.build_spec):
            raise ValidationError(f"workload {self.name!r}: build_spec must be callable")


#: Name → :class:`Workload` registry.
WORKLOADS: Dict[str, Workload] = {}


def register_workload(workload: Workload, overwrite: bool = False) -> Workload:
    """Add *workload* to the registry and return it (collisions raise)."""
    if workload.name in WORKLOADS and not overwrite:
        raise ValidationError(
            f"workload {workload.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    WORKLOADS[workload.name] = workload
    return workload


def list_workloads() -> List[str]:
    """All registered workload names, sorted."""
    return sorted(WORKLOADS.keys())


def get_workload(name: str) -> Workload:
    """Look up a workload; unknown names raise with a did-you-mean hint."""
    try:
        return WORKLOADS[name]
    except KeyError:
        message = f"unknown workload {name!r}; available: {list_workloads()}"
        close = difflib.get_close_matches(str(name), list_workloads(), n=1)
        if close:
            message += f" (did you mean {close[0]!r}?)"
        raise ValidationError(message) from None


def accepted_params(workload: Workload) -> Dict[str, Any]:
    """The workload's full parameter table: declared defaults plus ``seed``."""
    return {"seed": 0, **dict(workload.defaults)}


def _check_param_key(workload: Workload, key: str, accepted: Mapping[str, Any]) -> None:
    if key not in accepted:
        raise ValidationError(
            f"workload {workload.name!r} has no parameter {key!r}; "
            f"accepted: {sorted(accepted)}"
        )


def resolve_params(
    workload: Workload, overrides: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Merge *overrides* over the workload's defaults (unknown keys raise).

    ``seed`` is always accepted (default 0) on top of the declared defaults.
    """
    params = accepted_params(workload)
    for key, value in dict(overrides or {}).items():
        _check_param_key(workload, key, params)
        params[key] = value
    return params


def coerce_param_strings(
    workload: Workload, items: Mapping[str, Any]
) -> Dict[str, Any]:
    """Coerce raw CLI parameter strings against the workload's defaults.

    Unknown keys raise the same error as :func:`resolve_params`; non-string
    values (already-typed CLI sugar flags like ``--trials``) pass through
    after the key check.
    """
    accepted = accepted_params(workload)
    out: Dict[str, Any] = {}
    for key, value in dict(items).items():
        _check_param_key(workload, key, accepted)
        out[key] = (
            coerce_param(key, value, accepted[key])
            if isinstance(value, str) else value
        )
    return out


def coerce_param(key: str, text: str, default: Any) -> Any:
    """Coerce the CLI string *text* to the type of the parameter's *default*.

    Tuples/lists split on commas (element type taken from the default's first
    element, numbers otherwise); booleans accept true/false/1/0/yes/no;
    ``none`` clears optional parameters.
    """
    text = text.strip()
    if text.lower() in ("none", "null") and not isinstance(default, str):
        return None
    if isinstance(default, bool):
        if text.lower() in ("1", "true", "yes", "on"):
            return True
        if text.lower() in ("0", "false", "no", "off"):
            return False
        raise ValidationError(f"parameter {key!r} expects a boolean, got {text!r}")
    if isinstance(default, (tuple, list)):
        items = [item.strip() for item in text.split(",") if item.strip()]
        element = default[0] if len(default) else ""
        return tuple(_coerce_scalar(key, item, element) for item in items)
    return _coerce_scalar(key, text, default)


def _coerce_scalar(key: str, text: str, default: Any) -> Any:
    if isinstance(default, bool):  # before int: bool is an int subclass
        return coerce_param(key, text, default)
    if isinstance(default, int):
        try:
            return int(text)
        except ValueError:
            raise ValidationError(
                f"parameter {key!r} expects an integer, got {text!r}"
            ) from None
    if isinstance(default, float) or default is None:
        # None defaults are optional *numbers* (e.g. max_seconds); "none"
        # was already handled by coerce_param before reaching here.
        try:
            return float(text) if ("." in text or "e" in text.lower()) else int(text)
        except ValueError:
            raise ValidationError(
                f"parameter {key!r} expects a number"
                + (" or 'none'" if default is None else "")
                + f", got {text!r}"
            ) from None
    return text
