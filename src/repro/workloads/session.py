"""The session runner: validate → plan → execute → report.

A :class:`Session` wraps one :class:`~repro.workloads.spec.WorkloadSpec` (and
optionally its registered :class:`~repro.workloads.registry.Workload`) and
drives it through the uniform lifecycle:

* :meth:`Session.validate` resolves solver names against the registry and
  checks the graph source, failing fast before any expensive work;
* :meth:`Session.plan` previews the execution — which graph/solver cells will
  run, on which path (engine / parallel / sequential / once), with how many
  trials — without running anything;
* :meth:`Session.run` executes (custom workload executor, or the generic
  capability-routed one) and returns a
  :class:`~repro.workloads.report.RunReport`.

``seed=None`` specs draw fresh root entropy once, at session construction,
so ``plan`` and ``run`` agree and the report records a reproducible seed.

Quickstart
----------
>>> from repro.workloads import run_workload
>>> report = run_workload("arena", solvers=("random", "trevisan"),
...                       suite="er-small", trials=2, samples=16, seed=0)
>>> report.winner() in {"random", "trevisan"}
True
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.registry import get_spec
from repro.obs.trace import mark, span, spans_since, summarize_spans, tracing_enabled
from repro.utils.validation import ValidationError, _config_jsonable
from repro.workloads.executor import execute_spec
from repro.workloads.registry import (
    Workload,
    get_workload,
    resolve_params,
)
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.spec import WorkloadSpec

__all__ = ["PlanStep", "RunPlan", "Session", "run_workload"]


@dataclass(frozen=True)
class PlanStep:
    """One planned (graph, solver) cell and the path it will take."""

    graph_name: str
    solver: str
    route: str
    n_trials: int


@dataclass(frozen=True)
class RunPlan:
    """Preview of a session's execution (advisory for custom executors)."""

    workload: str
    seed: Optional[int]
    graph_names: Tuple[str, ...]
    steps: Tuple[PlanStep, ...]

    def describe(self) -> str:
        """Multi-line human-readable rendering of the plan."""
        lines = [
            f"workload {self.workload!r} — seed {self.seed}, "
            f"{len(self.graph_names)} graph(s), {len(self.steps)} cell(s)"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.graph_name:<24} {step.solver:<14} "
                f"{step.route:<14} trials={step.n_trials}"
            )
        return "\n".join(lines)


class Session:
    """One validated, plannable, runnable workload execution.

    Parameters
    ----------
    spec:
        The declarative description of the run.
    workload:
        Optional registered workload providing a custom executor and
        formatting; bare specs run through the generic executor.
    """

    def __init__(self, spec: WorkloadSpec, workload: Optional[Workload] = None) -> None:
        if workload is not None and workload.name != spec.workload:
            raise ValidationError(
                f"spec names workload {spec.workload!r} but was paired with "
                f"{workload.name!r}"
            )
        if spec.seed is None:
            # Library convention: None means fresh entropy, not seed 0.  Draw
            # it once, up front, so plan() and run() agree and the report
            # records a seed the run can be reproduced from.  Any "seed"
            # carried in the workload params must track the resolution —
            # custom executors build their experiment configs from params,
            # and a stale None there would make them draw unrelated entropy.
            resolved = int(np.random.SeedSequence().entropy)
            params = dict(spec.params)
            if "seed" in params:
                params["seed"] = resolved
            spec = dataclasses.replace(spec, seed=resolved, params=params)
        self.spec = spec
        self.workload = workload

    @classmethod
    def from_workload(cls, name: str, **params: Any) -> "Session":
        """Build a session for registered workload *name* with overrides."""
        workload = get_workload(name)
        resolved = resolve_params(workload, params)
        return cls(workload.build_spec(resolved), workload)

    # -- lifecycle ----------------------------------------------------------

    def validate(self) -> None:
        """Fail fast on unknown/duplicate solvers or an unbuildable source."""
        self.spec.resolve_solvers()
        if self.spec.graphs.kind == "suite" and isinstance(self.spec.graphs.suite, str):
            from repro.arena.suite import get_suite

            get_suite(self.spec.graphs.suite)

    def plan(self) -> RunPlan:
        """Preview the (graph, solver) cells and their execution routes."""
        self.validate()
        spec = self.spec
        graphs = spec.graphs.build(spec.seed)
        steps: List[PlanStep] = []
        for graph in graphs:
            for name in spec.solvers:
                solver = get_spec(name)
                if solver.deterministic:
                    route, trials = "once", 1
                elif spec.policy.use_engine and solver.batchable:
                    route, trials = f"engine[{spec.policy.backend}]", spec.budget.n_trials
                else:
                    # resolved_workers() so n_workers=None previews as the
                    # cpu-count fan-out it actually runs with.
                    workers = spec.policy.parallel_config().resolved_workers()
                    route = f"parallel[{workers}]" if workers > 1 else "sequential"
                    trials = spec.budget.n_trials
                steps.append(PlanStep(
                    graph_name=graph.name, solver=solver.key,
                    route=route, n_trials=trials,
                ))
        return RunPlan(
            workload=spec.workload,
            seed=spec.seed,
            graph_names=tuple(graph.name for graph in graphs),
            steps=tuple(steps),
        )

    def run(
        self,
        shards: int = 1,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> RunReport:
        """Validate, execute, and wrap the outcome in a :class:`RunReport`.

        Parameters
        ----------
        shards:
            Split the run into this many independently executed,
            checkpointable shards (:mod:`repro.distrib`).  Shard boundaries
            never change results: the merged report's records and leaderboard
            equal the monolithic run's (modulo timing metadata).
        checkpoint_dir:
            Directory for the shard manifest + per-shard atomic checkpoint
            files; any value other than ``None`` switches to the sharded
            path even for ``shards=1``.
        resume:
            Skip shards already completed in *checkpoint_dir* (requires it) —
            the crash-recovery path: rerun the same command after a kill and
            only the missing shards execute.
        """
        with span("session.validate", workload=self.spec.workload):
            self.validate()
        from repro import __version__

        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise ValidationError(f"shards must be an integer >= 1, got {shards!r}")
        # Under active tracing the report additionally carries a per-phase
        # timing block in metadata["timing"]; with tracing off (the default)
        # the report is byte-for-byte what it always was.
        trace_mark = mark() if tracing_enabled() else None
        started = time.perf_counter()
        with span(
            "session.execute", workload=self.spec.workload, shards=shards
        ):
            if shards == 1 and checkpoint_dir is None and not resume:
                if self.workload is not None and self.workload.execute is not None:
                    outcome = self.workload.execute(self.spec)
                else:
                    outcome = _generic_outcome(self.spec)
            else:
                from repro.distrib import run_sharded

                outcome = run_sharded(
                    self.spec, shards, workload=self.workload,
                    checkpoint_dir=checkpoint_dir, resume=resume,
                )
        elapsed = time.perf_counter() - started
        params: Dict[str, Any] = {
            str(k): _config_jsonable(v) for k, v in dict(self.spec.params).items()
        }
        metadata = dict(outcome.metadata)
        if trace_mark is not None:
            metadata["timing"] = summarize_spans(spans_since(trace_mark))
        return RunReport(
            workload=self.spec.workload,
            seed=self.spec.seed,
            params=params,
            records=list(outcome.records),
            leaderboard=list(outcome.leaderboard),
            elapsed_seconds=float(elapsed),
            metadata=metadata,
            version=__version__,
        )


def arena_outcome_from_result(result) -> WorkloadOutcome:
    """Wrap an :class:`~repro.arena.results.ArenaResult` as a workload outcome.

    Shared by the in-process generic path and the sharded merge
    (:mod:`repro.distrib`), so both produce identical records and
    leaderboards from identical entries.
    """
    leaderboard = [
        {**row, "score": row["mean_ratio"]} for row in result.aggregate()
    ]
    return WorkloadOutcome(
        records=list(result.entries),
        leaderboard=leaderboard,
        metadata={
            "suite": result.suite,
            "graph_names": list(result.graph_names),
            "solvers": list(result.solvers),
            "n_trials": result.n_trials,
            "n_samples": result.n_samples,
            "arena_elapsed_seconds": result.elapsed_seconds,
        },
    )


def _generic_outcome(spec: WorkloadSpec) -> WorkloadOutcome:
    """Run *spec* through the generic executor, arena-shaped."""
    return arena_outcome_from_result(execute_spec(spec))


def run_workload(
    name: str,
    save: Optional[str] = None,
    shards: int = 1,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    **params: Any,
) -> RunReport:
    """Run registered workload *name* and return its :class:`RunReport`.

    Parameters are the workload's declared defaults (see
    ``get_workload(name).defaults``) plus ``seed``; *save* additionally
    persists the report as JSON through
    :func:`repro.experiments.runner.save_results`.  *shards* /
    *checkpoint_dir* / *resume* select the sharded, resumable execution path
    (see :meth:`Session.run`).
    """
    session = Session.from_workload(name, **params)
    report = session.run(shards=shards, checkpoint_dir=checkpoint_dir, resume=resume)
    if save is not None:
        report.save(save)
    return report
