"""Declarative workload specifications.

A :class:`WorkloadSpec` is the single way to describe a run to the library:
*what graphs* (:class:`GraphSource`), *which solvers* (keys into the
capability-aware registry, :mod:`repro.algorithms.registry`), *how much work*
(:class:`Budget`), and *how to execute* (:class:`ExecutionPolicy`).  A
:class:`repro.workloads.Session` turns a spec into a
:class:`repro.workloads.RunReport`; registered workloads
(:mod:`repro.workloads.registry`) are just named factories of specs plus an
optional custom executor.

All four classes share the :class:`repro.utils.validation.ValidatedConfig`
mixin, so an invalid spec cannot be constructed and every spec renders itself
as the JSON-safe ``to_dict()`` used in persisted metadata headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.registry import SolverSpec, get_spec
from repro.graphs.generators import erdos_renyi
from repro.graphs.graph import Graph
from repro.graphs.repository import list_empirical_graphs, load_empirical_graph
from repro.parallel.pool import ParallelConfig
from repro.utils.rng import grid_cell_key, paired_seed, spawn_generators
from repro.utils.validation import (
    ValidatedConfig,
    ValidationError,
    check_count,
)

__all__ = [
    "GraphSource",
    "Budget",
    "ExecutionPolicy",
    "WorkloadSpec",
    "resolve_solver_specs",
]

#: Recognised graph-source kinds.
GRAPH_SOURCE_KINDS = ("suite", "repository", "generator", "explicit")

#: Recognised execution-policy modes.
EXECUTION_MODES = ("auto", "engine", "parallel", "sequential")


@dataclass(frozen=True)
class GraphSource(ValidatedConfig):
    """Declarative source of the graphs a workload runs on.

    Four kinds cover every workload in the library:

    ``"suite"``
        A named arena suite (:mod:`repro.arena.suite`) or a
        :class:`~repro.arena.suite.GraphSuite` instance.
    ``"repository"``
        Named graphs from the Table I empirical registry (empty ``names``
        means *all* of them).
    ``"generator"``
        An Erdős–Rényi grid: every (size, probability) cell materialises
        ``per_cell`` graphs, seeded with the paired convention
        ``SeedSequence(seed, spawn_key=(n, key(p), j))``.
    ``"explicit"``
        An in-memory list of :class:`~repro.graphs.graph.Graph` objects
        (not persistable beyond their names).

    Use the classmethod constructors rather than spelling out fields.
    """

    kind: str
    suite: Union[str, object, None] = None
    names: Tuple[str, ...] = ()
    sizes: Tuple[int, ...] = ()
    probabilities: Tuple[float, ...] = ()
    per_cell: int = 1
    graphs: Tuple[Graph, ...] = ()

    def validate(self) -> None:
        if self.kind not in GRAPH_SOURCE_KINDS:
            raise ValidationError(
                f"graph source kind must be one of {GRAPH_SOURCE_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "suite" and self.suite is None:
            raise ValidationError("suite graph sources need a suite key or object")
        if self.kind == "generator":
            if not self.sizes or not self.probabilities:
                raise ValidationError(
                    "generator graph sources need non-empty sizes and probabilities"
                )
            for n in self.sizes:
                check_count(n, "graph sizes", minimum=2)
            for p in self.probabilities:
                if not (0.0 < float(p) <= 1.0):
                    raise ValidationError(
                        f"probabilities must be in (0, 1], got {p}"
                    )
            check_count(self.per_cell, "per_cell")
        if self.kind == "explicit" and not self.graphs:
            raise ValidationError("explicit graph sources need at least one graph")

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_suite(cls, suite: Union[str, object]) -> "GraphSource":
        """A named arena suite (or a ``GraphSuite`` instance)."""
        return cls(kind="suite", suite=suite)

    @classmethod
    def repository(cls, names: Sequence[str] = ()) -> "GraphSource":
        """Empirical Table I graphs by name (empty = all)."""
        return cls(kind="repository", names=tuple(names))

    @classmethod
    def erdos_renyi_grid(
        cls,
        sizes: Sequence[int],
        probabilities: Sequence[float],
        per_cell: int = 1,
    ) -> "GraphSource":
        """An Erdős–Rényi (size x probability) grid, *per_cell* graphs each."""
        return cls(
            kind="generator",
            sizes=tuple(int(n) for n in sizes),
            probabilities=tuple(float(p) for p in probabilities),
            per_cell=int(per_cell),
        )

    @classmethod
    def explicit(cls, graphs: Sequence[Graph]) -> "GraphSource":
        """An in-memory list of graphs."""
        return cls(kind="explicit", graphs=tuple(graphs))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphSource":
        """Rebuild a source from its :meth:`to_dict` form (manifest round-trip).

        Explicit in-memory graph lists are not persistable — their
        ``to_dict`` records names only — so they cannot be rebuilt.
        Problem sources (:class:`repro.problems.source.ProblemSource`
        renderings carry a ``"problems": true`` marker) dispatch to the
        problem-compiler subclass.
        """
        if data.get("problems"):
            from repro.problems.source import ProblemSource

            return ProblemSource.from_dict(data)
        kind = data.get("kind")
        if kind == "suite":
            return cls.from_suite(str(data["suite"]))
        if kind == "repository":
            return cls.repository(tuple(data.get("names", ())))
        if kind == "generator":
            return cls.erdos_renyi_grid(
                data["sizes"], data["probabilities"],
                per_cell=int(data.get("per_cell", 1)),
            )
        raise ValidationError(
            f"graph source kind {kind!r} cannot be rebuilt from a dict "
            f"(explicit graph lists are not persistable)"
        )

    @classmethod
    def coerce(cls, value: Any) -> "GraphSource":
        """Normalise a suite key / ``GraphSuite`` / graph list into a source."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_suite(value)
        if isinstance(value, (list, tuple)) and all(
            isinstance(g, Graph) for g in value
        ):
            return cls.explicit(value)
        # Duck-typed GraphSuite (has key + build) without importing the class.
        if hasattr(value, "build") and hasattr(value, "key"):
            return cls.from_suite(value)
        raise ValidationError(
            "graphs must be a suite key, a GraphSuite, a list of Graph objects, "
            f"or a GraphSource; got {type(value).__name__}"
        )

    # -- behaviour ----------------------------------------------------------

    @property
    def label(self) -> str:
        """Short human label (the suite key where there is one)."""
        if self.kind == "suite":
            return self.suite if isinstance(self.suite, str) else getattr(
                self.suite, "key", "suite"
            )
        if self.kind == "repository":
            return "repository"
        if self.kind == "generator":
            return "er-grid"
        return "custom"

    def build(self, seed: Optional[int]) -> List[Graph]:
        """Materialise the graphs (deterministic in *seed*)."""
        from repro.arena.suite import build_suite

        root = 0 if seed is None else int(seed)
        if self.kind == "suite":
            if isinstance(self.suite, str):
                return build_suite(self.suite, seed=root)
            return list(self.suite.build(root))
        if self.kind == "repository":
            names = list(self.names) or list_empirical_graphs()
            return [load_empirical_graph(name, seed=seed) for name in names]
        if self.kind == "generator":
            graphs: List[Graph] = []
            for n in self.sizes:
                for p in self.probabilities:
                    cell = grid_cell_key(n, p)
                    for j in range(self.per_cell):
                        # First spawned child of the cell-graph sequence —
                        # the same derivation the Figure 3 runner uses for
                        # its graph stream, so "same (seed, n, p, j) → same
                        # graph" holds across all workload paths.
                        rng = spawn_generators(paired_seed(seed, *cell, j), 1)[0]
                        graphs.append(
                            erdos_renyi(n, p, seed=rng, name=f"er-{n}-{p:g}-{j}")
                        )
            return graphs
        return list(self.graphs)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (explicit graphs reduced to their names)."""
        out: Dict[str, Any] = {"kind": self.kind}
        if self.kind == "suite":
            out["suite"] = self.label
        elif self.kind == "repository":
            out["names"] = list(self.names)
        elif self.kind == "generator":
            out.update(
                sizes=list(self.sizes),
                probabilities=list(self.probabilities),
                per_cell=self.per_cell,
            )
        else:
            out["names"] = [graph.name for graph in self.graphs]
        return out


@dataclass(frozen=True)
class Budget(ValidatedConfig):
    """Shared per-(solver, graph) work budget — the one trial-count currency.

    Attributes
    ----------
    n_trials:
        Independent trials for every stochastic solver (deterministic
        solvers always run once).
    n_samples:
        Per-trial ``n_samples`` handed to each solver; interpreted per the
        solver's budget semantics (read-outs, sweeps, restarts, ...).
    max_seconds:
        Optional wall-clock cap per (solver, graph) cell.  The sequential
        path stops launching further trials once exceeded (at least one
        trial always completes, and the trial count is recorded).  The
        engine path forwards the cap as the request's ``deadline_seconds``:
        the batch stops launching further read-out rounds once exceeded (at
        least one round always completes) and returns the partial-but-valid
        bests, with ``budget_truncated`` set in the entry metadata.
        Setting a cap forces capped *sequential* cells onto a serial trial
        loop — ``parallel_map`` cannot cancel in-flight work — so it
        overrides any worker configuration for those cells.
    """

    n_trials: int = 4
    n_samples: int = 256
    max_seconds: Optional[float] = None

    def validate(self) -> None:
        check_count(self.n_trials, "n_trials")
        check_count(self.n_samples, "n_samples")
        if self.max_seconds is not None:
            if (not isinstance(self.max_seconds, (int, float))
                    or isinstance(self.max_seconds, bool)
                    or self.max_seconds <= 0):
                raise ValidationError(
                    f"max_seconds must be a positive number or None, "
                    f"got {self.max_seconds!r}"
                )


@dataclass(frozen=True)
class ExecutionPolicy(ValidatedConfig):
    """How a workload's trials are executed.

    Attributes
    ----------
    mode:
        ``"auto"`` routes batchable circuits through the trial-parallel
        engine and everything else through ``parallel_map``; ``"engine"``
        is ``"auto"`` with the engine requirement made explicit;
        ``"parallel"`` keeps every solver on the per-trial path (engine
        off — reference timings); ``"sequential"`` additionally forces one
        in-process worker.
    backend:
        Engine backend spec for batchable solvers, resolved by
        :func:`repro.engine.xp.resolve_backend`: ``"auto"``, a weight
        backend (``"dense"``/``"sparse"``), an array backend
        (``"numpy"``/``"torch"``/``"cupy"``), or ``"<array>:<weight>"``
        (e.g. ``"torch:dense"``).  An explicit weight name always
        overrides the engine's density heuristic, so ``--backend sparse``
        is honoured even on small graphs.  Validated at policy
        construction (spec syntax and registry names; array availability
        is probed at solve time).
    instance_batch:
        When True (default), the executor fuses same-shape cell units
        into one :class:`repro.engine.instances.InstanceBlock` kernel
        batch (graph-axis batching).  Results are bit-identical either
        way; turn off to force one engine invocation per graph
        (reference timings).
    n_workers:
        Process workers for per-trial execution (``None`` = cpu count).
    """

    mode: str = "auto"
    backend: str = "auto"
    instance_batch: bool = True
    n_workers: Optional[int] = 1

    def validate(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValidationError(
                f"execution mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )
        # Parse-only check: unknown names fail fast here; whether an
        # accelerator is importable is probed when the engine resolves it.
        from repro.engine.xp import parse_backend_spec

        parse_backend_spec(self.backend)
        if self.n_workers is not None and self.n_workers < 0:
            raise ValidationError(
                f"n_workers must be >= 0 or None, got {self.n_workers}"
            )

    @property
    def use_engine(self) -> bool:
        """Whether batchable solvers ride the batched engine under this policy."""
        return self.mode in ("auto", "engine")

    def parallel_config(self) -> ParallelConfig:
        """The :class:`ParallelConfig` for per-trial (non-engine) execution."""
        workers = 1 if self.mode == "sequential" else self.n_workers
        return ParallelConfig(n_workers=workers)


@dataclass(frozen=True)
class WorkloadSpec(ValidatedConfig):
    """One declarative description of a complete run.

    Attributes
    ----------
    workload:
        Workload name (a registry key for registered workloads; any
        identifier for ad-hoc specs run through a bare ``Session``).
    graphs:
        The :class:`GraphSource` to race on.
    solvers:
        Registry keys/aliases from :mod:`repro.algorithms.registry`.
    budget:
        The shared :class:`Budget`.
    policy:
        The :class:`ExecutionPolicy` (default: capability-routed, engine on).
    seed:
        Root seed; trial *i* on graph *g* runs on
        ``SeedSequence(seed, spawn_key=(g, i))`` regardless of execution
        path.  ``None`` draws fresh entropy once per session.
    params:
        Workload-specific extras (JSON-safe), carried verbatim into the
        persisted metadata header.
    """

    workload: str
    graphs: GraphSource
    solvers: Tuple[str, ...]
    budget: Budget = field(default_factory=Budget)
    policy: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    seed: Optional[int] = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ValidationError(
                f"workload must be a non-empty string, got {self.workload!r}"
            )
        if not self.solvers:
            raise ValidationError("solvers must name at least one registered solver")
        if not isinstance(self.graphs, GraphSource):
            raise ValidationError(
                f"graphs must be a GraphSource, got {type(self.graphs).__name__}"
            )
        if not isinstance(self.budget, Budget):
            raise ValidationError(
                f"budget must be a Budget, got {type(self.budget).__name__}"
            )
        if not isinstance(self.policy, ExecutionPolicy):
            raise ValidationError(
                f"policy must be an ExecutionPolicy, got {type(self.policy).__name__}"
            )

    def resolve_solvers(self) -> List[SolverSpec]:
        """Resolve solver names against the registry (dupes after aliasing raise)."""
        return resolve_solver_specs(self.solvers)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from its :meth:`to_dict` form.

        The inverse used by ``repro merge`` to reconstruct a run from a
        checkpoint manifest; ``from_dict(spec.to_dict())`` equals ``spec``
        for every persistable spec (explicit graph lists are not).
        """
        try:
            graphs = GraphSource.from_dict(dict(data["graphs"]))
            budget = Budget(**dict(data.get("budget", {})))
            policy = ExecutionPolicy(**dict(data.get("policy", {})))
            params_raw = dict(data.get("params", {}))
            params = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in params_raw.items()
            }
            return cls(
                workload=str(data["workload"]),
                graphs=graphs,
                solvers=tuple(data.get("solvers", ())),
                budget=budget,
                policy=policy,
                seed=data.get("seed"),
                params=params,
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"cannot rebuild WorkloadSpec: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        from repro.utils.validation import _config_jsonable

        return {
            "workload": self.workload,
            "graphs": self.graphs.to_dict(),
            "solvers": list(self.solvers),
            "budget": self.budget.to_dict(),
            "policy": self.policy.to_dict(),
            "seed": self.seed,
            "params": {str(k): _config_jsonable(v) for k, v in dict(self.params).items()},
        }


def resolve_solver_specs(names: Sequence[str]) -> List[SolverSpec]:
    """Resolve *names* to registry specs, rejecting duplicates after aliasing."""
    specs: List[SolverSpec] = []
    for name in names:
        spec = get_spec(name)
        if any(s.key == spec.key for s in specs):
            raise ValidationError(
                f"solver {spec.key!r} listed more than once (aliases resolve "
                f"to the same method)"
            )
        specs.append(spec)
    return specs
