"""The five paper workloads, registered as declarative specs.

Each of the reproduction's historical entry points — the Figure 3 sweep, the
Figure 4 panels, Table I, the ablations, and the solver arena — is re-cast
here as a :class:`~repro.workloads.registry.Workload`: a defaults table, a
``build_spec`` factory, and (for the figure/table/ablation workloads) a thin
executor that delegates to the existing experiment runners and adapts their
results into the uniform :class:`~repro.workloads.report.WorkloadOutcome`.
The arena needs no executor at all: its spec runs through the generic
capability-routed executor.

Everything here is reachable as ``repro run <name>`` and
``run_workload(<name>, ...)``; the historical CLI subcommands and
:func:`repro.arena.run_arena` are deprecation shims over these definitions.
"""

from __future__ import annotations

import statistics
from typing import Any, Dict, List

from repro.arena.results import ArenaResult
from repro.experiments.ablations import (
    run_device_imperfection_ablation,
    run_learning_rate_ablation,
    run_rank_ablation,
)
from repro.experiments.config import (
    AblationConfig,
    Figure3Config,
    Figure4Config,
    Table1Config,
)
from repro.experiments.figure3 import METHODS, run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.reporting import (
    format_arena_report,
    format_figure3_report,
    format_figure4_report,
    format_table,
    format_table1_report,
)
from repro.experiments.table1 import run_table1
from repro.utils.validation import ValidationError
from repro.workloads.registry import Workload, register_workload
from repro.workloads.report import RunReport, WorkloadOutcome
from repro.workloads.spec import (
    Budget,
    ExecutionPolicy,
    GraphSource,
    WorkloadSpec,
)

__all__ = [
    "arena_result_from_report",
    "ABLATION_KINDS",
    "figure3_outcome",
    "figure4_outcome",
    "table1_outcome",
    "ablation_outcome",
]

#: Ablation sweep kinds accepted by the ``ablation`` workload.
ABLATION_KINDS = ("devices", "rank", "learning-rate")


def arena_result_from_report(report: RunReport) -> ArenaResult:
    """Rebuild the :class:`ArenaResult` view of an arena workload report."""
    meta = report.metadata
    return ArenaResult(
        suite=str(meta.get("suite", "custom")),
        solvers=tuple(meta.get("solvers", ())),
        graph_names=tuple(meta.get("graph_names", ())),
        n_trials=int(meta.get("n_trials", 0)),
        n_samples=int(meta.get("n_samples", 0)),
        seed=report.seed,
        entries=list(report.records),
        elapsed_seconds=float(
            meta.get("arena_elapsed_seconds", report.elapsed_seconds)
        ),
    )


def _ranked(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows.sort(key=lambda row: -row["score"])
    return rows


# -- figure3 ----------------------------------------------------------------


def _figure3_config(params: Dict[str, Any], seed) -> Figure3Config:
    return Figure3Config(
        sizes=tuple(int(n) for n in params["sizes"]),
        probabilities=tuple(float(p) for p in params["probabilities"]),
        n_graphs_per_cell=int(params["trials"]),
        n_samples=int(params["samples"]),
        seed=seed,
    )


def _figure3_spec(params: Dict[str, Any]) -> WorkloadSpec:
    # Validates sizes/probabilities/counts before the spec is built.
    config = _figure3_config(params, params["seed"])
    return WorkloadSpec(
        workload="figure3",
        graphs=GraphSource.erdos_renyi_grid(
            config.sizes, config.probabilities, per_cell=config.n_graphs_per_cell
        ),
        solvers=("lif_gw", "lif_tr", "gw", "random"),
        # The "trials" parameter is graphs-per-cell, already encoded in the
        # graph source; each method then runs once per graph.
        budget=Budget(n_trials=1, n_samples=config.n_samples),
        policy=ExecutionPolicy(mode="parallel", n_workers=params["workers"]),
        seed=params["seed"],
        params=params,
    )


def figure3_outcome(cells, config: Figure3Config) -> WorkloadOutcome:
    """Wrap Figure 3 cells into the uniform outcome (shared with shard merges)."""
    leaderboard = _ranked([
        {
            "solver": method,
            "score": statistics.fmean(float(c.curves[method][-1]) for c in cells),
            "metric": "mean final relative cut",
        }
        for method in METHODS
    ])
    return WorkloadOutcome(
        records=list(cells),
        leaderboard=leaderboard,
        metadata={"config": config.to_dict()},
    )


def _figure3_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    # spec.seed, not params["seed"]: the session resolves None seeds to drawn
    # entropy on spec.seed, and execution must follow that resolution.
    config = _figure3_config(dict(spec.params), spec.seed)
    cells = run_figure3(config=config, parallel=spec.policy.parallel_config())
    return figure3_outcome(cells, config)


# -- figure4 ----------------------------------------------------------------


def _figure4_spec(params: Dict[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(
        workload="figure4",
        graphs=GraphSource.repository(params["graphs"]),
        solvers=("lif_gw", "lif_tr", "gw", "random"),
        budget=Budget(n_trials=1, n_samples=int(params["samples"])),
        policy=ExecutionPolicy(mode="sequential"),
        seed=params["seed"],
        params=params,
    )


def figure4_outcome(panels, config: Figure4Config) -> WorkloadOutcome:
    """Wrap Figure 4 panels into the uniform outcome (shared with shard merges)."""
    leaderboard = _ranked([
        {
            "solver": method,
            "score": statistics.fmean(
                panel.best_weights[method]
                / (panel.solver_best_weight if panel.solver_best_weight > 0 else 1.0)
                for panel in panels
            ),
            "metric": "mean best weight relative to solver",
        }
        for method in ("lif_gw", "lif_tr", "solver", "random")
    ])
    return WorkloadOutcome(
        records=list(panels),
        leaderboard=leaderboard,
        metadata={"config": config.to_dict()},
    )


def _figure4_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    params = dict(spec.params)
    config = Figure4Config(n_samples=int(params["samples"]), seed=spec.seed)
    panels = run_figure4(list(params["graphs"]) or None, config=config)
    return figure4_outcome(panels, config)


# -- table1 -----------------------------------------------------------------


def _table1_spec(params: Dict[str, Any]) -> WorkloadSpec:
    return WorkloadSpec(
        workload="table1",
        graphs=GraphSource.repository(params["graphs"]),
        solvers=("lif_gw", "lif_tr", "gw", "random"),
        budget=Budget(n_trials=1, n_samples=int(params["samples"])),
        policy=ExecutionPolicy(mode="sequential"),
        seed=params["seed"],
        params=params,
    )


def table1_outcome(rows, config: Table1Config) -> WorkloadOutcome:
    """Wrap Table I rows into the uniform outcome (shared with shard merges)."""
    methods = ("lif_gw", "lif_tr", "solver", "random")
    leaderboard = _ranked([
        {
            "solver": method,
            "score": statistics.fmean(
                row.measured[method] / (max(row.measured.values()) or 1.0)
                for row in rows
            ),
            "metric": "mean best cut relative to per-graph best",
        }
        for method in methods
    ])
    return WorkloadOutcome(
        records=list(rows),
        leaderboard=leaderboard,
        metadata={"config": config.to_dict()},
    )


def _table1_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    params = dict(spec.params)
    config = Table1Config(n_samples=int(params["samples"]), seed=spec.seed)
    rows = run_table1(list(params["graphs"]) or None, config=config)
    return table1_outcome(rows, config)


# -- ablation ---------------------------------------------------------------


def _ablation_spec(params: Dict[str, Any]) -> WorkloadSpec:
    kind = params["kind"]
    if kind not in ABLATION_KINDS:
        raise ValidationError(
            f"ablation kind must be one of {ABLATION_KINDS}, got {kind!r}"
        )
    circuit = params["circuit"]
    if circuit not in ("lif_gw", "lif_tr"):
        raise ValidationError(
            f"ablation circuit must be 'lif_gw' or 'lif_tr', got {circuit!r}"
        )
    solvers = {
        "devices": (circuit, "gw"),
        "rank": ("lif_gw", "gw"),
        "learning-rate": ("lif_tr", "gw"),
    }[kind]
    return WorkloadSpec(
        workload="ablation",
        graphs=GraphSource.erdos_renyi_grid(
            (int(params["vertices"]),), (0.25,), per_cell=int(params["n_graphs"])
        ),
        solvers=solvers,
        # n_graphs is the graph count (in the source); one run per setting
        # per graph.
        budget=Budget(n_trials=1, n_samples=int(params["samples"])),
        policy=ExecutionPolicy(mode="sequential"),
        seed=params["seed"],
        params=params,
    )


def _ablation_execute(spec: WorkloadSpec) -> WorkloadOutcome:
    params = dict(spec.params)
    config = AblationConfig(
        n_vertices=int(params["vertices"]),
        n_graphs=int(params["n_graphs"]),
        n_samples=int(params["samples"]),
        seed=spec.seed,
    )
    kind = params["kind"]
    if kind == "devices":
        points = run_device_imperfection_ablation(config=config, circuit=params["circuit"])
    elif kind == "rank":
        points = run_rank_ablation(config=config)
    else:
        points = run_learning_rate_ablation(config=config)
    return ablation_outcome(points, config, kind)


def ablation_outcome(points, config: AblationConfig, kind: str) -> WorkloadOutcome:
    """Wrap ablation points into the uniform outcome (shared with shard merges)."""
    leaderboard = _ranked([
        {
            "solver": point.setting,
            "score": float(point.mean_relative_cut),
            "metric": "mean relative cut",
        }
        for point in points
    ])
    return WorkloadOutcome(
        records=list(points),
        leaderboard=leaderboard,
        metadata={"config": config.to_dict(), "kind": kind},
    )


def _format_ablation(report: RunReport) -> str:
    rows = [
        [p.setting, p.mean_relative_cut, p.sem]
        for p in report.records
    ]
    return format_table(["setting", "relative cut", "sem"], rows)


# -- arena ------------------------------------------------------------------


def _arena_spec(params: Dict[str, Any]) -> WorkloadSpec:
    mode = "auto" if params["use_engine"] else "parallel"
    return WorkloadSpec(
        workload="arena",
        graphs=GraphSource.coerce(params["suite"]),
        solvers=tuple(params["solvers"]),
        budget=Budget(
            n_trials=int(params["trials"]),
            n_samples=int(params["samples"]),
            max_seconds=params["max_seconds"],
        ),
        policy=ExecutionPolicy(
            mode=mode, backend=params["backend"], n_workers=params["workers"]
        ),
        seed=params["seed"],
        params={**params, "suite": GraphSource.coerce(params["suite"]).label},
    )


def _format_arena(report: RunReport) -> str:
    return format_arena_report(arena_result_from_report(report))


def _plot_arena(report: RunReport) -> str:
    from repro.plotting.ascii import render_leaderboard

    return render_leaderboard(arena_result_from_report(report))


def _plot_curves(report: RunReport) -> str:
    from repro.plotting.ascii import render_curves

    sections = []
    for record in report.records:
        title = getattr(record, "graph_name", None)
        if title is None:
            title = f"G({record.n_vertices}, {record.probability:g})"
        sections.append(render_curves(
            record.sample_counts, record.curves,
            title=f"{title} relative cut weight",
        ))
    return "\n\n".join(sections)


for _workload in (
    Workload(
        name="figure3",
        summary="Erdős–Rényi convergence sweep (paper Figure 3)",
        defaults={
            "sizes": (50,), "probabilities": (0.25,), "trials": 3,
            "samples": 512, "workers": 1,
        },
        build_spec=_figure3_spec,
        execute=_figure3_execute,
        formatter=lambda report: format_figure3_report(report.records),
        plotter=_plot_curves,
    ),
    Workload(
        name="figure4",
        summary="empirical-graph convergence curves (paper Figure 4)",
        defaults={"graphs": ("hamming6-2",), "samples": 512},
        build_spec=_figure4_spec,
        execute=_figure4_execute,
        formatter=lambda report: format_figure4_report(report.records),
        plotter=_plot_curves,
    ),
    Workload(
        name="table1",
        summary="maximum cut values per method per empirical graph (Table I)",
        defaults={"graphs": (), "samples": 1024},
        build_spec=_table1_spec,
        execute=_table1_execute,
        formatter=lambda report: format_table1_report(report.records),
    ),
    Workload(
        name="ablation",
        summary="device / rank / learning-rate ablation sweeps",
        defaults={
            "kind": "devices", "circuit": "lif_gw", "vertices": 50,
            "samples": 256, "n_graphs": 3,
        },
        build_spec=_ablation_spec,
        execute=_ablation_execute,
        formatter=_format_ablation,
    ),
    Workload(
        name="arena",
        summary="race registered solvers over a graph suite under one budget",
        defaults={
            "solvers": ("lif_gw", "lif_tr", "gw", "trevisan", "random"),
            "suite": "er-small", "trials": 4, "samples": 256,
            "max_seconds": None, "backend": "auto", "use_engine": True,
            "workers": 1,
        },
        build_spec=_arena_spec,
        formatter=_format_arena,
        plotter=_plot_arena,
    ),
):
    register_workload(_workload)
del _workload
